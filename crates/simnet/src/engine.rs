//! The simulation engine: world state, event dispatch, and the [`Endpoint`]
//! trait through which a communication library (the optimizer under study)
//! plugs into the simulated cluster.
//!
//! # Model
//!
//! A [`Simulation`] hosts *nodes*; each node owns one [`Endpoint`] (the
//! software stack) and any number of NICs attached to *networks*. All
//! interaction is via callbacks driven by the event queue:
//!
//! * [`Endpoint::on_start`] — once, at t = 0;
//! * [`Endpoint::on_tx_done`] — a transmit the endpoint submitted completed;
//! * [`Endpoint::on_nic_idle`] — a NIC's transmit engine **drained**: the
//!   activation signal for the paper's optimizer (§3);
//! * [`Endpoint::on_packet_rx`] — a packet was delivered at this node;
//! * [`Endpoint::on_timer`] — a timer the endpoint armed expired (used for
//!   Nagle-style delayed flushes and workload generation).
//!
//! Within a callback the endpoint acts through [`SimCtx`]: submit transmits,
//! arm/cancel timers, query NIC state. All effects are scheduled through the
//! event queue, so runs are deterministic and endpoints never observe
//! partially-applied state.

use std::collections::HashSet;

use crate::event::{EventKind, EventQueue, TimerId};
use crate::fault::{FaultPlan, FaultState};
use crate::link::NetworkParams;
use crate::nic::NicState;
use crate::packet::{SubmitError, TxRequest, WirePacket};
use crate::rng::SplitMix64;
use crate::time::{transfer_time, SimDuration, SimTime};
use crate::topo::{AdmitOutcome, FabricState, Topology};
use crate::trace::{Trace, TraceEvent};

/// Identifies a node (a host in the cluster).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies a NIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NicId(pub u32);

/// Identifies a network fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkId(pub u32);

/// The software stack running on a node. All methods have empty defaults so
/// simple endpoints implement only what they need.
#[allow(unused_variables)]
pub trait Endpoint {
    /// Called once before the first event is processed.
    fn on_start(&mut self, ctx: &mut SimCtx<'_>) {}
    /// A transmit submitted by this endpoint finished injection; `cookie`
    /// is the value from the [`TxRequest`].
    fn on_tx_done(&mut self, ctx: &mut SimCtx<'_>, nic: NicId, cookie: u64) {}
    /// The NIC's transmit engine drained (busy → idle transition).
    fn on_nic_idle(&mut self, ctx: &mut SimCtx<'_>, nic: NicId) {}
    /// A packet arrived and completed receive processing at this node.
    fn on_packet_rx(&mut self, ctx: &mut SimCtx<'_>, nic: NicId, pkt: WirePacket) {}
    /// A timer armed via [`SimCtx::set_timer`] expired.
    fn on_timer(&mut self, ctx: &mut SimCtx<'_>, timer: TimerId, tag: u64) {}
}

/// A network fabric instance: parameters plus its private jitter/drop RNG
/// and, when installed, a scripted fault plan and/or a switched topology
/// (madnet).
#[derive(Debug)]
struct NetworkState {
    params: NetworkParams,
    rng: SplitMix64,
    fault: Option<FaultState>,
    fabric: Option<FabricState>,
}

/// A node: the set of NICs it hosts.
#[derive(Debug, Default)]
struct NodeState {
    nics: Vec<NicId>,
}

/// Mutable world state shared by the engine and endpoint callbacks.
#[derive(Debug)]
pub(crate) struct World {
    networks: Vec<NetworkState>,
    nics: Vec<NicState>,
    nodes: Vec<NodeState>,
    next_timer: u64,
    cancelled_timers: HashSet<TimerId>,
    pub(crate) trace: Trace,
}

impl World {
    fn new() -> Self {
        World {
            networks: Vec::new(),
            nics: Vec::new(),
            nodes: Vec::new(),
            next_timer: 0,
            cancelled_timers: HashSet::new(),
            trace: Trace::disabled(),
        }
    }

    fn params_of(&self, nic: NicId) -> &NetworkParams {
        &self.networks[self.nics[nic.0 as usize].network.0 as usize].params
    }

    /// Validate, enqueue and (if the engine is idle) start a transmit.
    fn submit(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue,
        nic_id: NicId,
        req: TxRequest,
    ) -> Result<(), SubmitError> {
        let nic_idx = nic_id.0 as usize;
        if nic_idx >= self.nics.len() {
            return Err(SubmitError::NoSuchNic);
        }
        let dst_idx = req.dst_nic.0 as usize;
        if dst_idx >= self.nics.len() {
            return Err(SubmitError::NoSuchNic);
        }
        if self.nics[dst_idx].network != self.nics[nic_idx].network {
            return Err(SubmitError::Unreachable);
        }
        let net = self.nics[nic_idx].network.0 as usize;
        let (mtu, depth) = {
            let p = &self.networks[net].params;
            (p.mtu, p.tx_queue_depth)
        };
        let bytes = req.payload_len();
        let cookie = req.cookie;
        self.nics[nic_idx].enqueue_tx(req, mtu, depth)?;
        self.trace.push(
            now,
            TraceEvent::TxSubmitted {
                nic: nic_id,
                bytes,
                cookie,
            },
        );
        if !self.nics[nic_idx].tx_busy {
            self.start_tx(now, queue, nic_id);
        }
        Ok(())
    }

    /// Begin injecting the packet at the head of the tx queue.
    fn start_tx(&mut self, now: SimTime, queue: &mut EventQueue, nic_id: NicId) {
        let nic_idx = nic_id.0 as usize;
        let net = self.nics[nic_idx].network.0 as usize;
        let busy = {
            let head = self.nics[nic_idx]
                .tx_queue
                .front()
                .expect("start_tx on empty queue");
            let p = &self.networks[net].params;
            let fixed = p.fixed_tx_cost(head.mode, head.payload.len());
            let wire_bytes = head.payload_len() + p.per_packet_overhead_bytes;
            head.host_prep + fixed + transfer_time(wire_bytes, p.effective_bandwidth(head.mode))
        };
        let nic = &mut self.nics[nic_idx];
        nic.tx_busy = true;
        nic.tx_util.set_busy(now);
        queue.push(now + busy, EventKind::TxEngineDone { nic: nic_id });
    }

    fn set_timer(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue,
        node: NodeId,
        delay: SimDuration,
        tag: u64,
    ) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        queue.push(
            now + delay,
            EventKind::Timer {
                node,
                timer: id,
                tag,
            },
        );
        id
    }
}

/// The endpoint's handle onto the simulation during a callback.
pub struct SimCtx<'a> {
    now: SimTime,
    node: NodeId,
    queue: &'a mut EventQueue,
    world: &'a mut World,
}

impl<'a> SimCtx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Submit a transmit request on a local NIC.
    pub fn submit(&mut self, nic: NicId, req: TxRequest) -> Result<(), SubmitError> {
        self.world.submit(self.now, self.queue, nic, req)
    }

    /// NIC state (read-only).
    pub fn nic(&self, nic: NicId) -> &NicState {
        &self.world.nics[nic.0 as usize]
    }

    /// Parameters of the network a NIC is attached to.
    pub fn params_of(&self, nic: NicId) -> &NetworkParams {
        self.world.params_of(nic)
    }

    /// Free slots in a NIC's hardware transmit queue.
    pub fn tx_queue_free(&self, nic: NicId) -> usize {
        let depth = self.params_of(nic).tx_queue_depth;
        self.nic(nic).tx_queue_free(depth)
    }

    /// NICs hosted by a node.
    pub fn node_nics(&self, node: NodeId) -> &[NicId] {
        &self.world.nodes[node.0 as usize].nics
    }

    /// Arm a one-shot timer; `tag` is echoed in [`Endpoint::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.world
            .set_timer(self.now, self.queue, self.node, delay, tag)
    }

    /// Cancel a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.world.cancelled_timers.insert(id);
    }
}

/// A deterministic discrete-event simulation of a cluster.
pub struct Simulation {
    time: SimTime,
    queue: EventQueue,
    world: World,
    endpoints: Vec<Option<Box<dyn Endpoint>>>,
    started: bool,
    events_processed: u64,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Empty simulation at t = 0.
    pub fn new() -> Self {
        Simulation {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            world: World::new(),
            endpoints: Vec::new(),
            started: false,
            events_processed: 0,
        }
    }

    /// Add a network fabric; returns its id.
    pub fn add_network(&mut self, params: NetworkParams) -> NetworkId {
        let id = NetworkId(self.world.networks.len() as u32);
        // Seed each network's RNG from its id so topology construction order
        // does not perturb unrelated networks' jitter streams.
        let rng = SplitMix64::new(0xC0FF_EE00 ^ id.0 as u64);
        self.world.networks.push(NetworkState {
            params,
            rng,
            fault: None,
            fabric: None,
        });
        id
    }

    /// Install a switched topology (madnet) on a network: NICs attached
    /// afterwards occupy host ports in attachment order, packets are
    /// ECMP-routed through the switch graph, and links apply max-min
    /// fair bandwidth sharing, bounded queues and ECN marking.
    ///
    /// # Panics
    /// Panics for an unknown network or when NICs are already attached
    /// (port assignment happens at attach time).
    pub fn install_topology(&mut self, net: NetworkId, topo: Topology) {
        let idx = net.0 as usize;
        assert!(idx < self.world.networks.len(), "unknown network");
        assert!(
            self.world.nics.iter().all(|n| n.network != net),
            "install_topology must run before NICs attach to the network"
        );
        self.world.networks[idx].fabric = Some(FabricState::new(topo));
    }

    /// Runtime fabric state of a network, when a topology is installed.
    pub fn fabric(&self, net: NetworkId) -> Option<&FabricState> {
        self.world.networks[net.0 as usize].fabric.as_ref()
    }

    /// Install (or replace) a deterministic [`FaultPlan`] on a network. The
    /// plan's own seed drives a private RNG stream, independent of the
    /// network's jitter stream, so adding faults does not perturb the
    /// latency jitter of un-faulted packets.
    pub fn set_fault_plan(&mut self, net: NetworkId, plan: FaultPlan) {
        self.world.networks[net.0 as usize].fault = Some(FaultState::new(plan));
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.world.nodes.len() as u32);
        self.world.nodes.push(NodeState::default());
        self.endpoints.push(None);
        id
    }

    /// Attach a NIC on `network` to `node`; returns the NIC id.
    pub fn add_nic(&mut self, node: NodeId, network: NetworkId) -> NicId {
        assert!(
            (network.0 as usize) < self.world.networks.len(),
            "unknown network"
        );
        let id = NicId(self.world.nics.len() as u32);
        if let Some(fabric) = self.world.networks[network.0 as usize].fabric.as_mut() {
            fabric
                .assign_port(id)
                .expect("topology has no free host port for this NIC");
        }
        self.world.nics.push(NicState::new(id, node, network));
        self.world.nodes[node.0 as usize].nics.push(id);
        id
    }

    /// Install the software stack for a node (replaces any previous one).
    pub fn set_endpoint(&mut self, node: NodeId, ep: Box<dyn Endpoint>) {
        self.endpoints[node.0 as usize] = Some(ep);
    }

    /// Enable activity tracing, retaining the most recent `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.world.trace = Trace::with_capacity(capacity);
    }

    /// The activity trace.
    pub fn trace(&self) -> &Trace {
        &self.world.trace
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// NIC state (stats, queue occupancy, utilization).
    pub fn nic(&self, nic: NicId) -> &NicState {
        &self.world.nics[nic.0 as usize]
    }

    /// All NIC ids of a node.
    pub fn node_nics(&self, node: NodeId) -> &[NicId] {
        &self.world.nodes[node.0 as usize].nics
    }

    /// Parameters of a network.
    pub fn network_params(&self, net: NetworkId) -> &NetworkParams {
        &self.world.networks[net.0 as usize].params
    }

    /// Run external code as if it were a callback on `node` (used by
    /// drivers of the simulation — tests, workload bootstrap — to submit
    /// transmits or arm timers from outside the event loop).
    pub fn inject<R>(&mut self, node: NodeId, f: impl FnOnce(&mut SimCtx<'_>) -> R) -> R {
        let mut ctx = SimCtx {
            now: self.time,
            node,
            queue: &mut self.queue,
            world: &mut self.world,
        };
        f(&mut ctx)
    }

    /// Borrow a node's endpoint for inspection (e.g. collecting results
    /// after a run). Panics if the node has no endpoint installed.
    pub fn endpoint(&self, node: NodeId) -> &dyn Endpoint {
        self.endpoints[node.0 as usize]
            .as_deref()
            .expect("node has no endpoint")
    }

    /// Mutably borrow a node's endpoint (outside the event loop).
    pub fn endpoint_mut(&mut self, node: NodeId) -> &mut dyn Endpoint {
        self.endpoints[node.0 as usize]
            .as_deref_mut()
            .expect("node has no endpoint")
    }

    /// Process events until the queue is exhausted or `limit` is reached,
    /// whichever first; returns the final virtual time.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.start_if_needed();
        while let Some(at) = self.queue.peek_time() {
            if at > limit {
                self.time = limit;
                return self.time;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.at >= self.time, "time went backwards");
            // Cancelled timers are discarded without advancing the clock,
            // so a dormant (cancelled) timeout cannot inflate the
            // quiescence time of an otherwise-finished simulation.
            if let EventKind::Timer { timer, .. } = &ev.kind {
                if self.world.cancelled_timers.remove(timer) {
                    continue;
                }
            }
            self.time = ev.at;
            self.events_processed += 1;
            self.dispatch(ev.kind);
        }
        self.time
    }

    /// Process all events up to and including `deadline`; the clock is then
    /// advanced to `deadline` even if the queue still holds later events.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.run_until_quiescent(deadline);
        if self.time < deadline {
            self.time = deadline;
        }
        self.time
    }

    /// True when no events remain.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.endpoints.len() {
            self.with_endpoint(NodeId(i as u32), |ep, ctx| ep.on_start(ctx));
        }
    }

    fn with_endpoint(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Endpoint, &mut SimCtx<'_>)) {
        let slot = match self.endpoints.get_mut(node.0 as usize) {
            Some(s) => s,
            None => return,
        };
        let mut ep = match slot.take() {
            Some(e) => e,
            None => return,
        };
        let mut ctx = SimCtx {
            now: self.time,
            node,
            queue: &mut self.queue,
            world: &mut self.world,
        };
        f(ep.as_mut(), &mut ctx);
        self.endpoints[node.0 as usize] = Some(ep);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TxEngineDone { nic } => self.tx_engine_done(nic),
            EventKind::Arrival { nic, packet } => self.arrival(nic, *packet),
            EventKind::RxEngineDone { nic } => self.rx_engine_done(nic),
            EventKind::Timer { node, timer, tag } => {
                if self.world.cancelled_timers.remove(&timer) {
                    return;
                }
                self.world
                    .trace
                    .push(self.time, TraceEvent::TimerFired { node, tag });
                self.with_endpoint(node, |ep, ctx| ep.on_timer(ctx, timer, tag));
            }
            EventKind::FabricDone {
                network,
                transfer,
                generation,
            } => self.fabric_done(network, transfer, generation),
        }
    }

    /// A fabric fluid transfer finished serializing (madnet). Stale
    /// generations — reschedules superseded by a later join/leave — are
    /// discarded; a live completion releases the packet onto its path's
    /// propagation latency and reschedules the transfers that sped up.
    fn fabric_done(&mut self, network: NetworkId, transfer: u64, generation: u64) {
        let now = self.time;
        let Some(fabric) = self.world.networks[network.0 as usize].fabric.as_mut() else {
            return;
        };
        let Some(d) = fabric.complete(now, transfer, generation) else {
            return;
        };
        let arrive_at = now + d.path_latency + d.extra_delay;
        self.queue.push(
            arrive_at,
            EventKind::Arrival {
                nic: d.dst_nic,
                packet: d.packet,
            },
        );
        if let Some(dup) = d.dup_packet {
            self.queue.push(
                arrive_at + SimDuration::from_nanos(1),
                EventKind::Arrival {
                    nic: d.dst_nic,
                    packet: dup,
                },
            );
        }
        for r in d.resched {
            self.queue.push(
                r.done_at,
                EventKind::FabricDone {
                    network,
                    transfer: r.id,
                    generation: r.generation,
                },
            );
        }
    }

    fn tx_engine_done(&mut self, nic_id: NicId) {
        let now = self.time;
        let nic_idx = nic_id.0 as usize;
        let (req, node, net_idx) = {
            let nic = &mut self.world.nics[nic_idx];
            let req = nic.tx_queue.pop_front().expect("tx done on empty queue");
            (req, nic.node, nic.network.0 as usize)
        };
        let cookie = req.cookie;
        let payload_len = req.payload_len();
        let seg_count = req.payload.len();
        let (latency, jitter, overhead, dropped, fault) = {
            let net = &mut self.world.networks[net_idx];
            let jitter = if net.params.jitter.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(net.rng.next_below(net.params.jitter.as_nanos()))
            };
            let dropped = net.params.drop_rate > 0.0 && net.rng.next_bool(net.params.drop_rate);
            // The scripted fault plan draws from its own RNG stream, and
            // only for packets the legacy drop knob did not already claim,
            // so fault decisions stay a pure function of (seed, tx order).
            let fault = match net.fault.as_mut() {
                Some(f) if !dropped => f.on_tx(now),
                _ => crate::fault::FaultOutcome::default(),
            };
            (
                net.params.wire_latency,
                jitter,
                net.params.per_packet_overhead_bytes,
                dropped || fault.dropped,
                fault,
            )
        };

        // Account the completed transmit.
        {
            let nic = &mut self.world.nics[nic_idx];
            nic.stats.tx_packets += 1;
            nic.stats.tx_payload_bytes += payload_len;
            nic.stats.tx_wire_bytes += payload_len + overhead;
            nic.stats.tx_segments += seg_count as u64;
        }

        // Launch the packet onto the wire (unless fault injection drops it).
        if dropped {
            self.world.nics[nic_idx].stats.wire_drops += 1;
            self.world.trace.push(
                now,
                TraceEvent::WireDrop {
                    nic: nic_id,
                    cookie,
                },
            );
        } else {
            if fault.stalled {
                self.world.nics[nic_idx].stats.wire_stalls += 1;
                self.world.trace.push(
                    now,
                    TraceEvent::WireStall {
                        nic: nic_id,
                        cookie,
                    },
                );
            }
            let seq = {
                let nic = &mut self.world.nics[nic_idx];
                let s = nic.next_seq;
                nic.next_seq += 1;
                s
            };
            let dst_nic = req.dst_nic;
            let dst_node = self.world.nics[dst_nic.0 as usize].node;
            let packet = WirePacket {
                src: node,
                dst: dst_node,
                src_nic: nic_id,
                dst_nic,
                vchan: req.vchan,
                kind: req.kind,
                cookie,
                seq,
                ecn: false,
                payload: req.payload,
            };
            let arrive_at = now + latency + jitter + fault.extra_delay;
            let dup_packet = if fault.duplicate {
                let dup_seq = {
                    let nic = &mut self.world.nics[nic_idx];
                    let s = nic.next_seq;
                    nic.next_seq += 1;
                    s
                };
                self.world.nics[nic_idx].stats.wire_dups += 1;
                self.world.trace.push(
                    now,
                    TraceEvent::WireDup {
                        nic: nic_id,
                        cookie,
                    },
                );
                let mut dup = packet.clone();
                dup.seq = dup_seq;
                Some(Box::new(dup))
            } else {
                None
            };
            if self.world.networks[net_idx].fabric.is_some() {
                // madnet: the packet becomes a fluid transfer serialized
                // at its max-min fair share; propagation latency comes
                // from the routed path, while jitter and fault delays
                // stay with the packet.
                let wire_bytes = payload_len + overhead;
                let extra = jitter + fault.extra_delay;
                let network = self.world.nics[nic_idx].network;
                let fabric = self.world.networks[net_idx]
                    .fabric
                    .as_mut()
                    .expect("checked above");
                match fabric.admit(
                    now,
                    Box::new(packet),
                    dup_packet,
                    dst_nic,
                    wire_bytes,
                    extra,
                ) {
                    AdmitOutcome::Local { packet, dup_packet } => {
                        if let Some(dup) = dup_packet {
                            self.queue.push(
                                arrive_at + SimDuration::from_nanos(1),
                                EventKind::Arrival {
                                    nic: dst_nic,
                                    packet: dup,
                                },
                            );
                        }
                        self.queue.push(
                            arrive_at,
                            EventKind::Arrival {
                                nic: dst_nic,
                                packet,
                            },
                        );
                    }
                    AdmitOutcome::NoRoute | AdmitOutcome::Dropped => {
                        self.world.nics[nic_idx].stats.fabric_drops += 1;
                        self.world.trace.push(
                            now,
                            TraceEvent::FabricDrop {
                                nic: nic_id,
                                cookie,
                            },
                        );
                    }
                    AdmitOutcome::Queued { marked, .. } => {
                        if marked {
                            self.world.nics[nic_idx].stats.ecn_marked += 1;
                            self.world.trace.push(
                                now,
                                TraceEvent::EcnMark {
                                    nic: nic_id,
                                    cookie,
                                },
                            );
                        }
                        let fabric = self.world.networks[net_idx]
                            .fabric
                            .as_ref()
                            .expect("checked above");
                        for r in fabric.reschedules(now) {
                            self.queue.push(
                                r.done_at,
                                EventKind::FabricDone {
                                    network,
                                    transfer: r.id,
                                    generation: r.generation,
                                },
                            );
                        }
                    }
                }
            } else {
                if let Some(dup) = dup_packet {
                    self.queue.push(
                        arrive_at + SimDuration::from_nanos(1),
                        EventKind::Arrival {
                            nic: dst_nic,
                            packet: dup,
                        },
                    );
                }
                self.queue.push(
                    arrive_at,
                    EventKind::Arrival {
                        nic: dst_nic,
                        packet: Box::new(packet),
                    },
                );
            }
        }

        // Keep the engine busy if more work is queued; otherwise note
        // idleness (announced after the completion callback).
        let has_more = !self.world.nics[nic_idx].tx_queue.is_empty();
        if has_more {
            self.world.start_tx(now, &mut self.queue, nic_id);
        } else {
            let nic = &mut self.world.nics[nic_idx];
            nic.tx_busy = false;
            nic.tx_util.set_idle(now);
        }

        self.world.trace.push(
            now,
            TraceEvent::TxDone {
                nic: nic_id,
                cookie,
            },
        );
        self.with_endpoint(node, |ep, ctx| ep.on_tx_done(ctx, nic_id, cookie));

        // The completion handler may have refilled the queue; only announce
        // idle if the engine is genuinely drained.
        if self.world.nics[nic_idx].is_tx_idle() {
            self.world.nics[nic_idx].stats.idle_transitions += 1;
            self.world
                .trace
                .push(now, TraceEvent::NicIdle { nic: nic_id });
            self.with_endpoint(node, |ep, ctx| ep.on_nic_idle(ctx, nic_id));
        }
    }

    fn arrival(&mut self, nic_id: NicId, packet: WirePacket) {
        let now = self.time;
        let nic_idx = nic_id.0 as usize;
        let net_idx = self.world.nics[nic_idx].network.0 as usize;
        let rx_cost = {
            let p = &self.world.networks[net_idx].params;
            p.rx_setup + transfer_time(packet.payload_len(), p.rx_bandwidth)
        };
        let nic = &mut self.world.nics[nic_idx];
        nic.rx_queue.push_back(packet);
        if !nic.rx_busy {
            nic.rx_busy = true;
            self.queue
                .push(now + rx_cost, EventKind::RxEngineDone { nic: nic_id });
        }
    }

    fn rx_engine_done(&mut self, nic_id: NicId) {
        let now = self.time;
        let nic_idx = nic_id.0 as usize;
        let (pkt, node) = {
            let nic = &mut self.world.nics[nic_idx];
            let pkt = nic.rx_queue.pop_front().expect("rx done on empty queue");
            nic.stats.rx_packets += 1;
            nic.stats.rx_payload_bytes += pkt.payload_len();
            (pkt, nic.node)
        };
        // Schedule processing of the next queued packet before delivering, so
        // the rx engine models a pipeline rather than stalling on the stack.
        let next_cost = {
            let nic = &self.world.nics[nic_idx];
            nic.rx_queue.front().map(|next| {
                let p = &self.world.networks[nic.network.0 as usize].params;
                p.rx_setup + transfer_time(next.payload_len(), p.rx_bandwidth)
            })
        };
        match next_cost {
            Some(cost) => {
                self.queue
                    .push(now + cost, EventKind::RxEngineDone { nic: nic_id });
            }
            None => self.world.nics[nic_idx].rx_busy = false,
        }
        self.world.trace.push(
            now,
            TraceEvent::RxDelivered {
                nic: nic_id,
                bytes: pkt.payload_len(),
                kind: pkt.kind,
            },
        );
        self.with_endpoint(node, |ep, ctx| ep.on_packet_rx(ctx, nic_id, pkt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TxMode;
    use bytes::Bytes;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Two-node fixture on a synthetic network.
    fn two_nodes() -> (Simulation, NodeId, NodeId, NicId, NicId) {
        let mut sim = Simulation::new();
        let net = sim.add_network(NetworkParams::synthetic());
        let a = sim.add_node();
        let b = sim.add_node();
        let na = sim.add_nic(a, net);
        let nb = sim.add_nic(b, net);
        (sim, a, b, na, nb)
    }

    type RxLog = Rc<RefCell<Vec<(u16, Vec<u8>)>>>;

    #[derive(Default)]
    struct Recorder {
        rx: RxLog,
        tx_done: Rc<RefCell<Vec<u64>>>,
        idles: Rc<RefCell<u32>>,
    }

    impl Endpoint for Recorder {
        fn on_tx_done(&mut self, _ctx: &mut SimCtx<'_>, _nic: NicId, cookie: u64) {
            self.tx_done.borrow_mut().push(cookie);
        }
        fn on_nic_idle(&mut self, _ctx: &mut SimCtx<'_>, _nic: NicId) {
            *self.idles.borrow_mut() += 1;
        }
        fn on_packet_rx(&mut self, _ctx: &mut SimCtx<'_>, _nic: NicId, pkt: WirePacket) {
            self.rx.borrow_mut().push((pkt.kind, pkt.contiguous()));
        }
    }

    fn req_to(dst: NicId, kind: u16, cookie: u64, data: &[u8]) -> TxRequest {
        TxRequest {
            dst_nic: dst,
            vchan: 0,
            kind,
            cookie,
            mode: TxMode::Pio,
            host_prep: SimDuration::ZERO,
            payload: vec![Bytes::copy_from_slice(data)],
        }
    }

    #[test]
    fn packet_delivered_with_content_intact() {
        let (mut sim, a, b, na, nb) = two_nodes();
        let rx = Rc::new(RefCell::new(Vec::new()));
        let rec = Recorder {
            rx: rx.clone(),
            ..Default::default()
        };
        sim.set_endpoint(b, Box::new(rec));
        sim.set_endpoint(a, Box::new(Recorder::default()));
        sim.inject(a, |ctx| {
            ctx.submit(na, req_to(nb, 42, 7, b"hello")).unwrap()
        });
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        let got = rx.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 42);
        assert_eq!(got[0].1, b"hello");
        assert_eq!(sim.nic(na).stats.tx_packets, 1);
        assert_eq!(sim.nic(nb).stats.rx_packets, 1);
    }

    #[test]
    fn latency_matches_analytic_model() {
        let (mut sim, a, b, na, nb) = two_nodes();
        let rx = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                rx: rx.clone(),
                ..Default::default()
            }),
        );
        let len: u64 = 1000;
        sim.inject(a, |ctx| {
            ctx.submit(na, req_to(nb, 0, 0, &vec![0u8; len as usize]))
                .unwrap()
        });
        let end = sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        // PIO: 100ns setup + (1000+16)B at 0.5GB/s = 2032ns inject,
        // + 1µs wire latency, + rx 200ns setup + 1000B at 2GB/s = 500ns.
        let expect = 100 + 2032 + 1000 + 200 + 500;
        assert_eq!(end.as_nanos(), expect);
    }

    #[test]
    fn idle_fires_once_after_queue_drains() {
        let (mut sim, a, _b, na, nb) = two_nodes();
        let idles = Rc::new(RefCell::new(0));
        sim.set_endpoint(
            a,
            Box::new(Recorder {
                idles: idles.clone(),
                ..Default::default()
            }),
        );
        sim.inject(a, |ctx| {
            for i in 0..3 {
                ctx.submit(na, req_to(nb, 0, i, b"x")).unwrap();
            }
        });
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        // Three back-to-back packets: the engine drains once.
        assert_eq!(*idles.borrow(), 1);
        assert_eq!(sim.nic(na).stats.idle_transitions, 1);
    }

    #[test]
    fn tx_done_callbacks_in_submission_order() {
        let (mut sim, a, _b, na, nb) = two_nodes();
        let done = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            a,
            Box::new(Recorder {
                tx_done: done.clone(),
                ..Default::default()
            }),
        );
        sim.inject(a, |ctx| {
            for i in 10..14 {
                ctx.submit(na, req_to(nb, 0, i, b"abc")).unwrap();
            }
        });
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(*done.borrow(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn queue_full_backpressure() {
        let (mut sim, a, _b, na, nb) = two_nodes();
        sim.set_endpoint(a, Box::new(Recorder::default()));
        let results: Vec<Result<(), SubmitError>> = sim.inject(a, |ctx| {
            (0..6)
                .map(|i| ctx.submit(na, req_to(nb, 0, i, b"y")))
                .collect()
        });
        // Synthetic depth is 4.
        assert!(results[..4].iter().all(|r| r.is_ok()));
        assert_eq!(results[4], Err(SubmitError::QueueFull));
        assert_eq!(results[5], Err(SubmitError::QueueFull));
        assert_eq!(sim.nic(na).stats.queue_full_rejections, 2);
    }

    #[test]
    fn cross_network_submit_rejected() {
        let mut sim = Simulation::new();
        let n1 = sim.add_network(NetworkParams::synthetic());
        let n2 = sim.add_network(NetworkParams::synthetic());
        let a = sim.add_node();
        let b = sim.add_node();
        let na = sim.add_nic(a, n1);
        let nb = sim.add_nic(b, n2);
        sim.set_endpoint(a, Box::new(Recorder::default()));
        let r = sim.inject(a, |ctx| ctx.submit(na, req_to(nb, 0, 0, b"z")));
        assert_eq!(r, Err(SubmitError::Unreachable));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerEp {
            fired: Rc<RefCell<Vec<u64>>>,
            cancel_me: Option<TimerId>,
        }
        impl Endpoint for TimerEp {
            fn on_start(&mut self, ctx: &mut SimCtx<'_>) {
                ctx.set_timer(SimDuration::from_nanos(100), 1);
                let t = ctx.set_timer(SimDuration::from_nanos(200), 2);
                ctx.set_timer(SimDuration::from_nanos(300), 3);
                self.cancel_me = Some(t);
            }
            fn on_timer(&mut self, ctx: &mut SimCtx<'_>, _id: TimerId, tag: u64) {
                self.fired.borrow_mut().push(tag);
                if tag == 1 {
                    if let Some(t) = self.cancel_me.take() {
                        ctx.cancel_timer(t);
                    }
                }
            }
        }
        let mut sim = Simulation::new();
        let n = sim.add_node();
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            n,
            Box::new(TimerEp {
                fired: fired.clone(),
                cancel_me: None,
            }),
        );
        sim.run_until_quiescent(SimTime::from_nanos(1_000_000));
        assert_eq!(*fired.borrow(), vec![1, 3]);
    }

    #[test]
    fn drop_rate_discards_packets() {
        let mut sim = Simulation::new();
        let mut p = NetworkParams::synthetic();
        p.drop_rate = 1.0;
        let net = sim.add_network(p);
        let a = sim.add_node();
        let b = sim.add_node();
        let na = sim.add_nic(a, net);
        let nb = sim.add_nic(b, net);
        let rx = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                rx: rx.clone(),
                ..Default::default()
            }),
        );
        sim.set_endpoint(a, Box::new(Recorder::default()));
        sim.inject(a, |ctx| {
            ctx.submit(na, req_to(nb, 0, 0, b"doomed")).unwrap()
        });
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert!(rx.borrow().is_empty());
        assert_eq!(sim.nic(na).stats.wire_drops, 1);
    }

    #[test]
    fn fault_plan_duplicates_and_counts() {
        let (mut sim, a, b, na, nb) = two_nodes();
        let net = NetworkId(0);
        sim.set_fault_plan(net, crate::fault::FaultPlan::new(5).with_dup(1.0));
        let rx = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                rx: rx.clone(),
                ..Default::default()
            }),
        );
        sim.set_endpoint(a, Box::new(Recorder::default()));
        sim.inject(a, |ctx| ctx.submit(na, req_to(nb, 1, 9, b"twice")).unwrap());
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(rx.borrow().len(), 2, "duplicate copy must arrive too");
        assert_eq!(sim.nic(na).stats.wire_dups, 1);
        assert_eq!(sim.nic(nb).stats.rx_packets, 2);
    }

    #[test]
    fn fault_plan_death_discards_everything_after() {
        let (mut sim, a, b, na, nb) = two_nodes();
        sim.set_fault_plan(
            NetworkId(0),
            crate::fault::FaultPlan::new(5).with_death(SimTime::ZERO),
        );
        let rx = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                rx: rx.clone(),
                ..Default::default()
            }),
        );
        sim.set_endpoint(a, Box::new(Recorder::default()));
        sim.inject(a, |ctx| {
            for i in 0..3 {
                ctx.submit(na, req_to(nb, 0, i, b"rip")).unwrap();
            }
        });
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert!(rx.borrow().is_empty());
        assert_eq!(sim.nic(na).stats.wire_drops, 3);
    }

    #[test]
    fn fault_plan_stall_delays_delivery() {
        let (mut sim, a, b, na, nb) = two_nodes();
        // Stall everything sent in the first 10µs until the window closes.
        sim.set_fault_plan(
            NetworkId(0),
            crate::fault::FaultPlan::new(5)
                .with_stall(SimTime::ZERO, SimTime::from_nanos(1_000_000)),
        );
        let rx = Rc::new(RefCell::new(Vec::new()));
        sim.set_endpoint(
            b,
            Box::new(Recorder {
                rx: rx.clone(),
                ..Default::default()
            }),
        );
        sim.set_endpoint(a, Box::new(Recorder::default()));
        sim.inject(a, |ctx| ctx.submit(na, req_to(nb, 0, 0, b"late")).unwrap());
        let end = sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(rx.borrow().len(), 1);
        assert!(end.as_nanos() > 1_000_000, "delivery held past the stall");
        assert_eq!(sim.nic(na).stats.wire_stalls, 1);
    }

    #[test]
    fn fault_plan_runs_are_deterministic() {
        let run = || {
            let (mut sim, a, b, na, nb) = two_nodes();
            sim.set_fault_plan(
                NetworkId(0),
                crate::fault::FaultPlan::new(77)
                    .with_loss(0.3)
                    .with_dup(0.2),
            );
            let rx = Rc::new(RefCell::new(Vec::new()));
            sim.set_endpoint(
                b,
                Box::new(Recorder {
                    rx: rx.clone(),
                    ..Default::default()
                }),
            );
            sim.set_endpoint(a, Box::new(Recorder::default()));
            sim.inject(a, |ctx| {
                for i in 0..4u8 {
                    ctx.submit(na, req_to(nb, i as u16, i as u64, &[i; 40]))
                        .unwrap();
                }
            });
            let end = sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
            let received = rx.borrow().clone();
            (end, received, sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let (mut sim, _a, _b, _na, _nb) = two_nodes();
        let end = sim.run_until(SimTime::from_nanos(5_000));
        assert_eq!(end.as_nanos(), 5_000);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn deterministic_repeat_runs() {
        let run = || {
            let (mut sim, a, b, na, nb) = two_nodes();
            let rx = Rc::new(RefCell::new(Vec::new()));
            sim.set_endpoint(
                b,
                Box::new(Recorder {
                    rx: rx.clone(),
                    ..Default::default()
                }),
            );
            sim.set_endpoint(a, Box::new(Recorder::default()));
            sim.inject(a, |ctx| {
                for i in 0..4u8 {
                    ctx.submit(na, req_to(nb, i as u16, i as u64, &[i; 33]))
                        .unwrap();
                }
            });
            let end = sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
            let received = rx.borrow().clone();
            (end, received, sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    /// Dumbbell fixture: `senders` left-side nodes all transmitting to a
    /// single right-side receiver across a shared core link.
    fn incast_sim(senders: u32, core: crate::topo::LinkProfile) -> (Simulation, Vec<NicId>, NicId) {
        let mut sim = Simulation::new();
        let net = sim.add_network(NetworkParams::synthetic());
        let edge = crate::topo::LinkProfile {
            bandwidth: 1_000_000_000,
            latency: SimDuration::from_nanos(500),
            queue_capacity: 1 << 20,
            ecn_threshold: 1 << 18,
        };
        sim.install_topology(net, Topology::dumbbell(senders, 1, edge, core));
        let mut src_nics = Vec::new();
        for _ in 0..senders {
            let n = sim.add_node();
            src_nics.push(sim.add_nic(n, net));
            sim.set_endpoint(n, Box::new(Recorder::default()));
        }
        let r = sim.add_node();
        let rnic = sim.add_nic(r, net);
        sim.set_endpoint(r, Box::new(Recorder::default()));
        (sim, src_nics, rnic)
    }

    #[test]
    fn fabric_contention_shares_the_core() {
        // One sender finishes a 100 KB transfer across the core in some
        // time T; four senders sharing the same core at max-min fair
        // rates need materially longer than T (but far less than 4 T of
        // serial pipes would allow them to hide).
        let time_for = |senders: u32| {
            let core = crate::topo::LinkProfile {
                bandwidth: 1_000_000_000,
                latency: SimDuration::from_nanos(500),
                queue_capacity: 1 << 22,
                ecn_threshold: 1 << 21,
            };
            let (mut sim, src_nics, rnic) = incast_sim(senders, core);
            for (i, &nic) in src_nics.iter().enumerate() {
                let node = sim.nic(nic).node;
                sim.inject(node, |ctx| {
                    ctx.submit(nic, req_to(rnic, 1, i as u64, &vec![0u8; 100_000]))
                        .unwrap();
                });
            }
            let end = sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
            assert_eq!(sim.nic(rnic).stats.rx_packets, u64::from(senders));
            end.as_nanos()
        };
        let solo = time_for(1);
        let contended = time_for(4);
        assert!(
            contended > solo * 3 / 2,
            "4-way sharing should slow the core well past solo ({solo} ns \
             vs {contended} ns)"
        );
    }

    #[test]
    fn fabric_bounded_queue_drops_and_marks() {
        // A starved core (1% of edge bandwidth, tiny queue) under a
        // burst from every sender must both ECN-mark and drop.
        let core = crate::topo::LinkProfile {
            bandwidth: 10_000_000,
            latency: SimDuration::from_nanos(500),
            queue_capacity: 40_000,
            ecn_threshold: 8_000,
        };
        let (mut sim, src_nics, rnic) = incast_sim(4, core);
        for &nic in &src_nics {
            let node = sim.nic(nic).node;
            sim.inject(node, |ctx| {
                for c in 0..4u64 {
                    ctx.submit(nic, req_to(rnic, 1, c, &vec![0u8; 16_000]))
                        .unwrap();
                }
            });
        }
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        let marked: u64 = src_nics.iter().map(|&n| sim.nic(n).stats.ecn_marked).sum();
        let dropped: u64 = src_nics
            .iter()
            .map(|&n| sim.nic(n).stats.fabric_drops)
            .sum();
        assert!(marked > 0, "congested core must ECN-mark");
        assert!(dropped > 0, "overflowing queue must drop");
        let net = NetworkId(0);
        let fabric = sim.fabric(net).expect("topology installed");
        assert_eq!(fabric.active_transfers(), 0, "fabric drained");
        let stats = fabric.link_stats();
        assert_eq!(
            stats.iter().map(|s| s.queue_drops).sum::<u64>(),
            dropped,
            "per-link drop counters agree with per-NIC ones"
        );
        assert!(stats.iter().any(|s| s.ecn_marks > 0));
        assert!(stats.iter().any(|s| s.busy_ns > 0));
    }

    #[test]
    fn fabric_runs_are_deterministic() {
        let run = || {
            let core = crate::topo::LinkProfile {
                bandwidth: 100_000_000,
                latency: SimDuration::from_nanos(500),
                queue_capacity: 1 << 18,
                ecn_threshold: 1 << 14,
            };
            let (mut sim, src_nics, rnic) = incast_sim(3, core);
            sim.enable_trace(4096);
            for (i, &nic) in src_nics.iter().enumerate() {
                let node = sim.nic(nic).node;
                sim.inject(node, |ctx| {
                    for c in 0..3u64 {
                        ctx.submit(nic, req_to(rnic, 1, c, &vec![i as u8; 9_000]))
                            .unwrap();
                    }
                });
            }
            let end = sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
            let trace: Vec<(u64, String)> = sim
                .trace()
                .iter()
                .map(|r| (r.at.as_nanos(), format!("{:?}", r.event)))
                .collect();
            (end, sim.events_processed(), trace)
        };
        assert_eq!(run(), run());
    }
}
