//! Wire-level packet representation.
//!
//! Packets carry **real payload bytes** (as cheaply-cloneable [`bytes::Bytes`]
//! segments) end to end. Higher layers verify delivered content against
//! ground truth, so correctness of the optimizer's reorderings is established
//! against actual data movement, not a model of it.

use bytes::Bytes;

use crate::engine::{NicId, NodeId};

/// Identifies a virtual channel (multiplexing unit) within a NIC. Modern
/// NICs expose several virtualized endpoints over one physical port (§1 of
/// the paper); the scheduler treats them as pooled resources.
pub type VChannel = u8;

/// A packet as submitted to and delivered by a simulated NIC.
///
/// The `kind` and `cookie` fields are opaque to the simulator; the
/// communication library uses them for protocol discrimination and
/// completion matching.
#[derive(Clone, Debug)]
pub struct WirePacket {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// NIC the packet left from.
    pub src_nic: NicId,
    /// NIC the packet arrives at.
    pub dst_nic: NicId,
    /// Virtual channel within the destination NIC.
    pub vchan: VChannel,
    /// Library-defined packet discriminator (e.g. eager data vs rndv request).
    pub kind: u16,
    /// Library-defined cookie echoed in the sender's tx-completion callback.
    pub cookie: u64,
    /// Per-source-NIC monotone sequence number stamped by the simulator.
    pub seq: u64,
    /// ECN congestion-experienced mark: set by the fabric (madnet) when
    /// the packet crossed a link whose queue was past its ECN threshold.
    /// Always `false` on private point-to-point networks.
    pub ecn: bool,
    /// Payload segments (gather list). Total length is the wire payload size.
    pub payload: Vec<Bytes>,
}

impl WirePacket {
    /// Total payload bytes across all segments.
    pub fn payload_len(&self) -> u64 {
        self.payload.iter().map(|s| s.len() as u64).sum()
    }

    /// Number of gather segments.
    pub fn segment_count(&self) -> usize {
        self.payload.len()
    }

    /// Concatenate all segments into one contiguous buffer (test helper;
    /// allocates).
    pub fn contiguous(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_len() as usize);
        for seg in &self.payload {
            out.extend_from_slice(seg);
        }
        out
    }
}

/// Host-side injection mode for a transmit request (§1: "PIO and DMA
/// transfer modes").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxMode {
    /// Programmed I/O: the host CPU writes payload bytes directly into NIC
    /// buffers. Low setup cost, low bandwidth; best for small packets.
    Pio,
    /// DMA: the host posts a descriptor (one per gather segment) and the NIC
    /// pulls payload from host memory. Higher setup cost, full bandwidth.
    Dma,
}

/// A transmit request handed to a simulated NIC.
#[derive(Clone, Debug)]
pub struct TxRequest {
    /// Destination NIC (must be on the same network).
    pub dst_nic: NicId,
    /// Virtual channel at the destination.
    pub vchan: VChannel,
    /// Library-defined packet discriminator.
    pub kind: u16,
    /// Cookie echoed back in `on_tx_done`.
    pub cookie: u64,
    /// Injection mode.
    pub mode: TxMode,
    /// Extra host-side preparation time charged before injection begins
    /// (e.g. a by-copy aggregation memcpy performed by the library).
    pub host_prep: crate::time::SimDuration,
    /// Payload gather list.
    pub payload: Vec<Bytes>,
}

impl TxRequest {
    /// Total payload bytes.
    pub fn payload_len(&self) -> u64 {
        self.payload.iter().map(|s| s.len() as u64).sum()
    }
}

/// Why a transmit submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The NIC's hardware transmit queue is full; resubmit on a later
    /// idle/completion callback.
    QueueFull,
    /// Payload exceeds the network MTU.
    PacketTooLarge {
        /// Requested payload length.
        len: u64,
        /// The network's MTU.
        mtu: u64,
    },
    /// Destination NIC is not attached to the same network as the source.
    Unreachable,
    /// The referenced NIC id does not exist.
    NoSuchNic,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "NIC transmit queue full"),
            SubmitError::PacketTooLarge { len, mtu } => {
                write!(f, "packet of {len} bytes exceeds MTU {mtu}")
            }
            SubmitError::Unreachable => write!(f, "destination NIC on a different network"),
            SubmitError::NoSuchNic => write!(f, "no such NIC"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(segs: &[&[u8]]) -> WirePacket {
        WirePacket {
            src: NodeId(0),
            dst: NodeId(1),
            src_nic: NicId(0),
            dst_nic: NicId(1),
            vchan: 0,
            kind: 7,
            cookie: 99,
            seq: 1,
            ecn: false,
            payload: segs.iter().map(|s| Bytes::copy_from_slice(s)).collect(),
        }
    }

    #[test]
    fn payload_len_sums_segments() {
        let p = pkt(&[b"abc", b"", b"defg"]);
        assert_eq!(p.payload_len(), 7);
        assert_eq!(p.segment_count(), 3);
    }

    #[test]
    fn contiguous_preserves_order() {
        let p = pkt(&[b"abc", b"defg"]);
        assert_eq!(p.contiguous(), b"abcdefg");
    }

    #[test]
    fn submit_error_messages() {
        let e = SubmitError::PacketTooLarge { len: 10, mtu: 4 };
        assert!(e.to_string().contains("exceeds MTU"));
        assert!(SubmitError::QueueFull.to_string().contains("queue full"));
    }
}
