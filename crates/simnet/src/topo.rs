//! madnet — switched topologies with shared-bandwidth contention.
//!
//! The seed simulator connects NICs by private point-to-point pipes: a
//! packet's transit time depends only on its own size, never on what the
//! rest of the cluster is doing. That cannot express the phenomena the
//! optimizer most needs to survive — incast at a receiver's downlink,
//! elephants starving mice across a shared core, path diversity in a
//! Clos fabric. This module adds an opt-in *topology* per network:
//!
//! * a directed graph of host ports and switches ([`Topology`]) with
//!   [`Topology::dumbbell`] and [`Topology::fat_tree`] constructors;
//! * deterministic ECMP — among equal-cost shortest paths the next hop
//!   is chosen by a pure hash of the flow identity ([`flow_hash`]), so
//!   the same seed always routes the same way;
//! * per-link **max-min fair sharing** ([`max_min_rates`]): every packet
//!   in transit is a fluid transfer whose serialization rate is
//!   recomputed on each join/leave, in the style of dslab-network's
//!   shared-bandwidth throughput model;
//! * bounded switch queues: a packet whose wire bytes would overflow a
//!   link's queue is dropped, and occupancy past an ECN threshold marks
//!   the packet so the receiver can echo congestion back to the sender.
//!
//! Everything here is integer arithmetic over ordered containers: same
//! seed → same routes, same rates, same marks, byte-identical traces.

// madlint: file: hot-path
// madlint: file: deterministic-output

use std::collections::BTreeMap;

use crate::engine::NicId;
use crate::packet::WirePacket;
use crate::time::{SimDuration, SimTime};

/// A vertex in the fabric graph: a host attachment port or a switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Vertex {
    /// Host port `n` (one NIC attaches per port, in attachment order).
    Host(u32),
    /// Switch `n`.
    Switch(u32),
}

impl Vertex {
    /// Short label used in reports: `h3`, `s12`.
    pub fn label(self) -> String {
        match self {
            Vertex::Host(h) => format!("h{h}"),
            Vertex::Switch(s) => format!("s{s}"),
        }
    }

    fn index(self, hosts: u32) -> usize {
        match self {
            Vertex::Host(h) => h as usize,
            Vertex::Switch(s) => (hosts + s) as usize,
        }
    }
}

/// Capacity and queue parameters of one directed link.
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Serialization bandwidth in bytes/s.
    pub bandwidth: u64,
    /// Per-hop propagation + switching latency.
    pub latency: SimDuration,
    /// Bound on queued wire bytes; a packet that would overflow is dropped.
    pub queue_capacity: u64,
    /// Occupancy (wire bytes) above which packets are ECN-marked.
    pub ecn_threshold: u64,
}

impl LinkProfile {
    /// Round-number profile for unit tests: 1 GB/s, 500 ns per hop,
    /// 256 KiB queues marking at 64 KiB.
    pub fn synthetic() -> Self {
        LinkProfile {
            bandwidth: 1_000_000_000,
            latency: SimDuration::from_nanos(500),
            queue_capacity: 1 << 18,
            ecn_threshold: 1 << 16,
        }
    }
}

/// One directed link in the fabric.
#[derive(Clone, Debug)]
pub struct Link {
    /// Transmitting vertex.
    pub from: Vertex,
    /// Receiving vertex.
    pub to: Vertex,
    /// Capacity and queue parameters.
    pub profile: LinkProfile,
}

/// An immutable switched-fabric graph with precomputed shortest-path
/// distances for ECMP routing.
#[derive(Clone, Debug)]
pub struct Topology {
    name: &'static str,
    hosts: u32,
    switches: u32,
    links: Vec<Link>,
    /// Flat vertex index → outgoing link indices, in insertion order.
    adj: Vec<Vec<usize>>,
    /// `dist[dst_host][vertex]` = hop count from vertex to that host
    /// (`u32::MAX` when unreachable).
    dist: Vec<Vec<u32>>,
    oversub_milli: u64,
}

impl Topology {
    fn build(
        name: &'static str,
        hosts: u32,
        switches: u32,
        links: Vec<Link>,
        oversub_milli: u64,
    ) -> Self {
        let n = (hosts + switches) as usize;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            adj[l.from.index(hosts)].push(i);
            radj[l.to.index(hosts)].push(i);
        }
        // BFS from each host over reversed edges: dist[h][v] is the hop
        // count of the shortest v → h path in the forward graph.
        let mut dist = vec![vec![u32::MAX; n]; hosts as usize];
        for h in 0..hosts as usize {
            let d = &mut dist[h];
            d[h] = 0;
            let mut frontier = vec![h];
            while let Some(v) = frontier.pop() {
                let dv = d[v];
                // Depth-ordered expansion keeps this a proper BFS even
                // with the vec-as-stack: all edges have weight 1, so a
                // vertex is finalized the first time it is labelled.
                for &li in &radj[v] {
                    let u = links[li].from.index(hosts);
                    if d[u] == u32::MAX {
                        d[u] = dv + 1;
                        frontier.insert(0, u);
                    }
                }
            }
        }
        Topology {
            name,
            hosts,
            switches,
            links,
            adj,
            dist,
            oversub_milli,
        }
    }

    /// Dumbbell: `left` hosts on switch 0, `right` hosts on switch 1, and
    /// a single shared core link between the switches — the canonical
    /// shared-bottleneck topology. Host links use `edge`, the core uses
    /// `core`. Host ports `0..left` sit left, `left..left+right` right.
    ///
    /// # Panics
    /// Panics when either side is empty.
    pub fn dumbbell(left: u32, right: u32, edge: LinkProfile, core: LinkProfile) -> Self {
        assert!(left > 0 && right > 0, "dumbbell needs hosts on both sides");
        let mut links = Vec::new();
        let mut duplex = |a: Vertex, b: Vertex, p: LinkProfile| {
            links.push(Link {
                from: a,
                to: b,
                profile: p,
            });
            links.push(Link {
                from: b,
                to: a,
                profile: p,
            });
        };
        for h in 0..left {
            duplex(Vertex::Host(h), Vertex::Switch(0), edge);
        }
        for h in left..left + right {
            duplex(Vertex::Host(h), Vertex::Switch(1), edge);
        }
        duplex(Vertex::Switch(0), Vertex::Switch(1), core);
        // Worst-case offered load into the core over its capacity: the
        // larger side can source `side × edge` bytes/s against one core
        // link.
        let oversub = (u128::from(left.max(right)) * u128::from(edge.bandwidth) * 1000
            / u128::from(core.bandwidth.max(1))) as u64;
        Topology::build("dumbbell", left + right, 2, links, oversub)
    }

    /// Three-tier fat-tree with `k` ports per switch (`k` even): `k` pods
    /// of `k/2` edge and `k/2` aggregation switches, `(k/2)²` core
    /// switches, `k³/4` hosts. Built full-bisection (every link uses
    /// `link`), so the oversubscription ratio is 1.000. `k = 4` gives the
    /// classic 16-host, 20-switch fabric with 4-way ECMP between pods.
    ///
    /// # Panics
    /// Panics when `k` is odd or less than 2.
    pub fn fat_tree(k: u32, link: LinkProfile) -> Self {
        assert!(k >= 2 && k % 2 == 0, "fat-tree arity must be even, got {k}");
        let half = k / 2;
        let hosts = k * half * half;
        let edge_of = |pod: u32, i: u32| Vertex::Switch(pod * half + i);
        let agg_of = |pod: u32, j: u32| Vertex::Switch(k * half + pod * half + j);
        let core_of = |j: u32, m: u32| Vertex::Switch(2 * k * half + j * half + m);
        let mut links = Vec::new();
        let mut duplex = |a: Vertex, b: Vertex| {
            links.push(Link {
                from: a,
                to: b,
                profile: link,
            });
            links.push(Link {
                from: b,
                to: a,
                profile: link,
            });
        };
        for pod in 0..k {
            for i in 0..half {
                for m in 0..half {
                    let host = pod * half * half + i * half + m;
                    duplex(Vertex::Host(host), edge_of(pod, i));
                }
                for j in 0..half {
                    duplex(edge_of(pod, i), agg_of(pod, j));
                }
            }
            for j in 0..half {
                for m in 0..half {
                    duplex(agg_of(pod, j), core_of(j, m));
                }
            }
        }
        let switches = 2 * k * half + half * half;
        Topology::build("fat-tree", hosts, switches, links, 1000)
    }

    /// Topology family name (`dumbbell`, `fat-tree`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of host attachment ports.
    pub fn hosts(&self) -> u32 {
        self.hosts
    }

    /// Number of switches.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Worst-case oversubscription ratio ×1000 (1000 = full bisection).
    pub fn oversubscription_milli(&self) -> u64 {
        self.oversub_milli
    }

    /// Resolve the ECMP route from host `src` to host `dst` as a list of
    /// link indices. Among the outgoing links that stay on a shortest
    /// path, hop `i` picks deterministically by `hash`: equal hashes take
    /// equal paths, different flows spread across the fabric. Returns an
    /// empty path when `src == dst` and `None` when unreachable.
    pub fn route(&self, src: u32, dst: u32, hash: u64) -> Option<Vec<usize>> {
        if src >= self.hosts || dst >= self.hosts {
            return None;
        }
        let d = &self.dist[dst as usize];
        let target = Vertex::Host(dst).index(self.hosts);
        let mut v = Vertex::Host(src).index(self.hosts);
        if d[v] == u32::MAX {
            return None;
        }
        let mut path = Vec::with_capacity(d[v] as usize);
        let mut hop = 0u64;
        while v != target {
            let need = d[v] - 1;
            let mut chosen = None;
            let mut count = 0u64;
            // Count the equal-cost candidates, then pick by hash without
            // allocating: two passes over a handful of adjacent links.
            for &li in &self.adj[v] {
                if d[self.links[li].to.index(self.hosts)] == need {
                    count += 1;
                }
            }
            debug_assert!(count > 0, "distance field inconsistent");
            let pick = mix64(hash.wrapping_add(hop.wrapping_mul(0x9E37_79B9_7F4A_7C15))) % count;
            let mut seen = 0u64;
            for &li in &self.adj[v] {
                if d[self.links[li].to.index(self.hosts)] == need {
                    if seen == pick {
                        chosen = Some(li);
                        break;
                    }
                    seen += 1;
                }
            }
            let li = chosen?;
            path.push(li);
            v = self.links[li].to.index(self.hosts);
            hop += 1;
        }
        Some(path)
    }

    /// Sum of per-hop latencies along a route.
    pub fn path_latency(&self, path: &[usize]) -> SimDuration {
        path.iter().fold(SimDuration::ZERO, |acc, &li| {
            acc + self.links[li].profile.latency
        })
    }
}

/// `splitmix64` finalizer: a well-mixed pure hash for ECMP decisions.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic flow identity hash for ECMP: every packet of the same
/// (src port, dst port, virtual channel) triple takes the same path.
pub fn flow_hash(src: u32, dst: u32, vchan: u16) -> u64 {
    mix64((u64::from(src) << 32) | (u64::from(dst) << 16) | u64::from(vchan))
}

/// Progressive-filling max-min fair allocation. `capacities[l]` is link
/// `l`'s bandwidth in bytes/s; `flows[f]` lists the links flow `f`
/// crosses. Returns each flow's rate. Pure integer water-filling: the
/// tightest link (smallest `remaining / unfrozen`) freezes its flows at
/// the equal share, capacity is debited everywhere, repeat. Rates are
/// clamped to ≥ 1 B/s so every admitted transfer makes progress; a flow
/// crossing no links is unconstrained and gets `u64::MAX`.
///
/// Deterministic and order-independent: permuting the flow list permutes
/// the result the same way (ties freeze at identical shares).
pub fn max_min_rates(capacities: &[u64], flows: &[Vec<usize>]) -> Vec<u64> {
    let mut rates = vec![0u64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    let mut remaining: Vec<u64> = capacities.to_vec();
    let mut unfrozen_on: Vec<u64> = vec![0; capacities.len()];
    let mut left = 0usize;
    for (f, path) in flows.iter().enumerate() {
        if path.is_empty() {
            rates[f] = u64::MAX;
            frozen[f] = true;
        } else {
            left += 1;
            for &l in path {
                unfrozen_on[l] += 1;
            }
        }
    }
    while left > 0 {
        // Bottleneck link: the smallest equal share among links that
        // still carry unfrozen flows (ties: lowest link index).
        let mut best: Option<(u64, usize)> = None;
        for (l, &n) in unfrozen_on.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let share = remaining[l] / n;
            if best.is_none_or(|(s, _)| share < s) {
                best = Some((share, l));
            }
        }
        let Some((share, bottleneck)) = best else {
            break;
        };
        let rate = share.max(1);
        for f in 0..flows.len() {
            if frozen[f] || !flows[f].contains(&bottleneck) {
                continue;
            }
            rates[f] = rate;
            frozen[f] = true;
            left -= 1;
            for &l in &flows[f] {
                remaining[l] = remaining[l].saturating_sub(share);
                unfrozen_on[l] -= 1;
            }
        }
    }
    rates
}

/// Outcome of offering a packet to the fabric.
#[derive(Debug)]
pub(crate) enum AdmitOutcome {
    /// Source and destination share a host port: no fabric links crossed,
    /// deliver directly like a private pipe.
    Local {
        packet: Box<WirePacket>,
        dup_packet: Option<Box<WirePacket>>,
    },
    /// No route between the ports, or a sender/receiver without a port:
    /// the packet is gone (a topology misconfiguration, surfaced as a
    /// fabric drop).
    NoRoute,
    /// A link's queue would overflow: the packet is gone (the offending
    /// link's `queue_drops` counter records which).
    Dropped,
    /// Admitted as a fluid transfer; `marked` reports ECN.
    Queued {
        /// Whether any crossed link was past its ECN threshold.
        marked: bool,
    },
}

/// A completion event tag: schedule delivery of transfer `id` unless
/// `generation` is stale (the transfer was resheduled since).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Resched {
    pub id: u64,
    pub generation: u64,
    pub done_at: SimTime,
}

/// The packet and metadata released when a fabric transfer completes.
pub(crate) struct FabricDelivery {
    pub packet: Box<WirePacket>,
    pub dup_packet: Option<Box<WirePacket>>,
    pub dst_nic: NicId,
    /// Propagation latency along the route (sum of hop latencies).
    pub path_latency: SimDuration,
    /// Jitter + fault-plan delay drawn at injection time.
    pub extra_delay: SimDuration,
    /// Reschedules for the transfers that sped up on this leave.
    pub resched: Vec<Resched>,
}

/// One in-flight fluid transfer.
#[derive(Debug)]
struct Transfer {
    path: Vec<usize>,
    remaining: u64,
    rate: u64,
    generation: u64,
    wire_bytes: u64,
    packet: Box<WirePacket>,
    dup_packet: Option<Box<WirePacket>>,
    dst_nic: NicId,
    extra_delay: SimDuration,
}

/// Cumulative per-link counters, exposed to experiments and metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Packets ECN-marked while crossing this link.
    pub ecn_marks: u64,
    /// Packets dropped because this link's queue was full.
    pub queue_drops: u64,
    /// High-water mark of queued wire bytes.
    pub peak_queue_bytes: u64,
    /// Wire bytes fully serialized across this link.
    pub bytes_carried: u64,
    /// Integral of utilization over virtual time: nanoseconds of
    /// equivalent 100 %-busy wire.
    pub busy_ns: u64,
}

/// Runtime fabric state of one network: the topology plus every packet
/// currently in flight as a max-min-shared fluid transfer.
#[derive(Debug)]
pub struct FabricState {
    topo: Topology,
    ports: BTreeMap<NicId, u32>,
    transfers: BTreeMap<u64, Transfer>,
    next_transfer: u64,
    generation: u64,
    last_advance: SimTime,
    occupancy: Vec<u64>,
    link_rate: Vec<u64>,
    stats: Vec<LinkStats>,
}

impl FabricState {
    pub(crate) fn new(topo: Topology) -> Self {
        let n = topo.links().len();
        FabricState {
            topo,
            ports: BTreeMap::new(),
            transfers: BTreeMap::new(),
            next_transfer: 0,
            generation: 0,
            last_advance: SimTime::ZERO,
            occupancy: vec![0; n],
            link_rate: vec![0; n],
            stats: vec![LinkStats::default(); n],
        }
    }

    /// The static graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Cumulative per-link counters (indexed like [`Topology::links`]).
    pub fn link_stats(&self) -> &[LinkStats] {
        &self.stats
    }

    /// Currently queued wire bytes per link.
    pub fn queue_bytes(&self) -> &[u64] {
        &self.occupancy
    }

    /// Packets currently in flight through the fabric.
    pub fn active_transfers(&self) -> usize {
        self.transfers.len()
    }

    /// Host port assigned to a NIC, if attached.
    pub fn port_of(&self, nic: NicId) -> Option<u32> {
        self.ports.get(&nic).copied()
    }

    /// Attach the next free host port to `nic` (ports fill in attachment
    /// order). Returns `None` when the topology is out of ports.
    pub(crate) fn assign_port(&mut self, nic: NicId) -> Option<u32> {
        let port = self.ports.len() as u32;
        if port >= self.topo.hosts() {
            return None;
        }
        self.ports.insert(nic, port);
        Some(port)
    }

    /// Advance every transfer's progress to `now` and accrue per-link
    /// utilization integrals.
    fn advance(&mut self, now: SimTime) {
        let elapsed = now.since(self.last_advance).as_nanos();
        self.last_advance = now;
        if elapsed == 0 {
            return;
        }
        for (l, &rate) in self.link_rate.iter().enumerate() {
            let cap = self.topo.links()[l].profile.bandwidth;
            if rate > 0 && cap > 0 {
                self.stats[l].busy_ns +=
                    (u128::from(elapsed) * u128::from(rate.min(cap)) / u128::from(cap)) as u64;
            }
        }
        for t in self.transfers.values_mut() {
            let sent_fluid = u128::from(t.rate) * u128::from(elapsed) / 1_000_000_000u128;
            let sent = (sent_fluid as u64).min(t.remaining);
            t.remaining -= sent;
            for &l in &t.path {
                self.stats[l].bytes_carried += sent;
            }
        }
    }

    /// Offer a packet to the fabric: route it, enforce bounded queues,
    /// apply ECN marking, and register it as a fluid transfer. On
    /// `Queued` the caller must schedule the reschedules returned by
    /// [`FabricState::reschedules`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn admit(
        &mut self,
        now: SimTime,
        mut packet: Box<WirePacket>,
        dup_packet: Option<Box<WirePacket>>,
        dst_nic: NicId,
        wire_bytes: u64,
        extra_delay: SimDuration,
    ) -> AdmitOutcome {
        self.advance(now);
        let (Some(src), Some(dst)) = (
            self.ports.get(&packet.src_nic).copied(),
            self.ports.get(&dst_nic).copied(),
        ) else {
            return AdmitOutcome::NoRoute;
        };
        if src == dst {
            return AdmitOutcome::Local { packet, dup_packet };
        }
        let hash = flow_hash(src, dst, packet.vchan.into());
        let Some(path) = self.topo.route(src, dst, hash) else {
            return AdmitOutcome::NoRoute;
        };
        let wire = wire_bytes.max(1);
        for &l in &path {
            if self.occupancy[l] + wire > self.topo.links()[l].profile.queue_capacity {
                self.stats[l].queue_drops += 1;
                return AdmitOutcome::Dropped;
            }
        }
        let mut marked = false;
        for &l in &path {
            self.occupancy[l] += wire;
            if self.occupancy[l] > self.stats[l].peak_queue_bytes {
                self.stats[l].peak_queue_bytes = self.occupancy[l];
            }
            if self.occupancy[l] > self.topo.links()[l].profile.ecn_threshold {
                self.stats[l].ecn_marks += 1;
                marked = true;
            }
        }
        packet.ecn = packet.ecn || marked;
        let mut dup_packet = dup_packet;
        if let Some(d) = dup_packet.as_mut() {
            d.ecn = d.ecn || marked;
        }
        let id = self.next_transfer;
        self.next_transfer += 1;
        self.transfers.insert(
            id,
            Transfer {
                path,
                remaining: wire,
                rate: 0,
                generation: 0,
                wire_bytes: wire,
                packet,
                dup_packet,
                dst_nic,
                extra_delay,
            },
        );
        self.recompute(now);
        AdmitOutcome::Queued { marked }
    }

    /// Completion reschedules for every live transfer under the current
    /// allocation (valid until the next join/leave).
    pub(crate) fn reschedules(&self, now: SimTime) -> Vec<Resched> {
        self.transfers
            .iter()
            .map(|(&id, t)| {
                let ns = (u128::from(t.remaining) * 1_000_000_000u128)
                    .div_ceil(u128::from(t.rate.max(1)));
                Resched {
                    id,
                    generation: t.generation,
                    done_at: now + SimDuration::from_nanos(ns as u64),
                }
            })
            .collect()
    }

    /// Handle a completion event. Returns `None` when the tag is stale
    /// (the transfer was rescheduled after the event was posted) and the
    /// delivery payload otherwise.
    pub(crate) fn complete(
        &mut self,
        now: SimTime,
        id: u64,
        generation: u64,
    ) -> Option<FabricDelivery> {
        if self
            .transfers
            .get(&id)
            .is_none_or(|t| t.generation != generation)
        {
            return None;
        }
        self.advance(now);
        let t = self.transfers.remove(&id).expect("checked above");
        for &l in &t.path {
            // Fluid progress rounds down; credit the residual so
            // carried-bytes accounting telescopes to the packet size.
            self.stats[l].bytes_carried += t.remaining;
            self.occupancy[l] = self.occupancy[l].saturating_sub(t.wire_bytes);
        }
        self.recompute(now);
        Some(FabricDelivery {
            packet: t.packet,
            dup_packet: t.dup_packet,
            dst_nic: t.dst_nic,
            path_latency: self.topo.path_latency(&t.path),
            extra_delay: t.extra_delay,
            resched: self.reschedules(now),
        })
    }

    /// Recompute the max-min fair allocation after a join/leave and stamp
    /// a fresh generation on every live transfer (invalidating any
    /// completion events posted under the old allocation).
    fn recompute(&mut self, _now: SimTime) {
        self.generation += 1;
        let caps: Vec<u64> = self
            .topo
            .links()
            .iter()
            .map(|l| l.profile.bandwidth)
            .collect();
        let flows: Vec<Vec<usize>> = self.transfers.values().map(|t| t.path.clone()).collect();
        let rates = max_min_rates(&caps, &flows);
        self.link_rate = vec![0; caps.len()];
        for (t, &rate) in self.transfers.values_mut().zip(rates.iter()) {
            t.rate = rate;
            t.generation = self.generation;
            for &l in &t.path {
                self.link_rate[l] = self.link_rate[l].saturating_add(rate.min(caps[l]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> LinkProfile {
        LinkProfile::synthetic()
    }

    #[test]
    fn dumbbell_routes_cross_the_core() {
        let t = Topology::dumbbell(2, 2, p(), p());
        assert_eq!(t.hosts(), 4);
        assert_eq!(t.switches(), 2);
        let path = t.route(0, 2, flow_hash(0, 2, 0)).expect("route");
        assert_eq!(path.len(), 3, "host→sw0→sw1→host");
        // Same-side traffic stays off the core.
        let local = t.route(0, 1, flow_hash(0, 1, 0)).expect("route");
        assert_eq!(local.len(), 2);
        assert!(t.route(0, 0, 7).expect("self route").is_empty());
        assert_eq!(t.oversubscription_milli(), 2000);
    }

    #[test]
    fn fat_tree_k4_shape_and_ecmp() {
        let t = Topology::fat_tree(4, p());
        assert_eq!(t.hosts(), 16);
        assert_eq!(t.switches(), 20);
        // 16 host links + 16 edge↔agg + 16 agg↔core, each duplex.
        assert_eq!(t.links().len(), (16 + 16 + 16) * 2);
        assert_eq!(t.oversubscription_milli(), 1000);
        // Inter-pod routes are 4 hops (edge, agg, core, agg, edge = 5
        // switches → 6 links host-to-host).
        let path = t.route(0, 15, flow_hash(0, 15, 0)).expect("route");
        assert_eq!(path.len(), 6);
        // ECMP actually spreads: different flow identities must not all
        // take one path between pods.
        let mut distinct = std::collections::BTreeSet::new();
        for vc in 0..8u16 {
            distinct.insert(t.route(0, 15, flow_hash(0, 15, vc)).unwrap());
        }
        assert!(distinct.len() > 1, "ECMP collapsed to a single path");
        // Same hash, same path: routing is a pure function.
        assert_eq!(
            t.route(3, 12, flow_hash(3, 12, 1)),
            t.route(3, 12, flow_hash(3, 12, 1))
        );
    }

    #[test]
    fn max_min_single_bottleneck_splits_evenly() {
        // Three flows across one 999-byte/s link: 333 each.
        let rates = max_min_rates(&[999], &[vec![0], vec![0], vec![0]]);
        assert_eq!(rates, vec![333, 333, 333]);
    }

    #[test]
    fn max_min_waterfills_across_links() {
        // Link 0: 100 B/s shared by flows A and B; link 1: 1000 B/s
        // shared by B and C. A and B freeze at 50; C then gets the rest
        // of link 1.
        let rates = max_min_rates(&[100, 1000], &[vec![0], vec![0, 1], vec![1]]);
        assert_eq!(rates, vec![50, 50, 950]);
    }

    #[test]
    fn max_min_conserves_capacity_and_clamps() {
        let rates = max_min_rates(&[10], &(0..40).map(|_| vec![0]).collect::<Vec<_>>());
        assert!(rates.iter().all(|&r| r == 1), "min-rate clamp");
        let rates = max_min_rates(&[1_000], &[vec![], vec![0]]);
        assert_eq!(rates[0], u64::MAX, "linkless flow is unconstrained");
        assert_eq!(rates[1], 1_000);
    }

    #[test]
    fn max_min_is_order_independent() {
        let caps = [997, 1003, 499];
        let flows = vec![vec![0], vec![0, 1], vec![1, 2], vec![2], vec![0, 2]];
        let base = max_min_rates(&caps, &flows);
        let perm = [4usize, 2, 0, 3, 1];
        let shuffled: Vec<Vec<usize>> = perm.iter().map(|&i| flows[i].clone()).collect();
        let got = max_min_rates(&caps, &shuffled);
        for (slot, &orig) in perm.iter().enumerate() {
            assert_eq!(got[slot], base[orig], "permutation changed flow {orig}");
        }
    }
}
