//! Bounded in-memory trace of simulator activity, for debugging and for
//! behavioural assertions in tests (e.g. "the optimizer was activated only
//! on NIC-idle events" — the Figure 1 test).
//!
//! Tracing is off by default; enabling it costs one enum push per traced
//! action.

use crate::engine::{NicId, NodeId};
use crate::time::SimTime;

/// One traced simulator action.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given on the variants
pub enum TraceEvent {
    /// A transmit request was accepted into a NIC's hardware queue.
    TxSubmitted { nic: NicId, bytes: u64, cookie: u64 },
    /// The tx engine finished a packet.
    TxDone { nic: NicId, cookie: u64 },
    /// The tx engine drained and the NIC reported idle.
    NicIdle { nic: NicId },
    /// A packet was delivered to the destination endpoint.
    RxDelivered { nic: NicId, bytes: u64, kind: u16 },
    /// A packet was dropped on the wire (fault injection).
    WireDrop { nic: NicId, cookie: u64 },
    /// A packet was duplicated on the wire (fault injection).
    WireDup { nic: NicId, cookie: u64 },
    /// A packet was delayed by a fault-plan stall window.
    WireStall { nic: NicId, cookie: u64 },
    /// A timer fired on a node.
    TimerFired { node: NodeId, tag: u64 },
    /// madnet: a packet was ECN-marked crossing a congested fabric link.
    EcnMark { nic: NicId, cookie: u64 },
    /// madnet: a packet was dropped by a full switch queue.
    FabricDrop { nic: NicId, cookie: u64 },
}

impl TraceEvent {
    /// Stable event name, for unified exports (e.g. Chrome trace-event
    /// `name` fields) and log lines.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TxSubmitted { .. } => "TxSubmitted",
            TraceEvent::TxDone { .. } => "TxDone",
            TraceEvent::NicIdle { .. } => "NicIdle",
            TraceEvent::RxDelivered { .. } => "RxDelivered",
            TraceEvent::WireDrop { .. } => "WireDrop",
            TraceEvent::WireDup { .. } => "WireDup",
            TraceEvent::WireStall { .. } => "WireStall",
            TraceEvent::TimerFired { .. } => "TimerFired",
            TraceEvent::EcnMark { .. } => "EcnMark",
            TraceEvent::FabricDrop { .. } => "FabricDrop",
        }
    }

    /// The NIC the event happened on, when it is NIC-scoped
    /// (`TimerFired` is node-scoped and returns `None`). Lets consumers
    /// merging this trace with higher-layer timelines route events to the
    /// owning (node, rail) track without matching every variant.
    pub fn nic(&self) -> Option<NicId> {
        match self {
            TraceEvent::TxSubmitted { nic, .. }
            | TraceEvent::TxDone { nic, .. }
            | TraceEvent::NicIdle { nic }
            | TraceEvent::RxDelivered { nic, .. }
            | TraceEvent::WireDrop { nic, .. }
            | TraceEvent::WireDup { nic, .. }
            | TraceEvent::WireStall { nic, .. }
            | TraceEvent::EcnMark { nic, .. }
            | TraceEvent::FabricDrop { nic, .. } => Some(*nic),
            TraceEvent::TimerFired { .. } => None,
        }
    }
}

/// A timestamped trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of the action.
    pub at: SimTime,
    /// The action.
    pub event: TraceEvent,
}

/// Bounded trace buffer. When full, the oldest records are discarded (it is
/// a ring), so long runs can keep tracing the recent window.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: Vec<TraceRecord>,
    head: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            capacity: 0,
            records: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// An enabled trace retaining the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity: capacity.max(1),
            records: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        let rec = TraceRecord { at, event };
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records in chronological order (oldest retained first).
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (newer, older) = self.records.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records discarded due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count retained records matching a predicate.
    pub fn count_matching(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.iter().filter(|r| pred(&r.event)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(SimTime::ZERO, TraceEvent::NicIdle { nic: NicId(0) });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5u64 {
            t.push(
                SimTime::from_nanos(i),
                TraceEvent::TimerFired {
                    node: NodeId(0),
                    tag: i,
                },
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let tags: Vec<u64> = t
            .iter()
            .map(|r| match r.event {
                TraceEvent::TimerFired { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![2, 3, 4]);
    }

    #[test]
    fn names_and_nic_scoping_are_stable() {
        let tx = TraceEvent::TxSubmitted {
            nic: NicId(3),
            bytes: 64,
            cookie: 7,
        };
        assert_eq!(tx.name(), "TxSubmitted");
        assert_eq!(tx.nic(), Some(NicId(3)));
        let timer = TraceEvent::TimerFired {
            node: NodeId(1),
            tag: 9,
        };
        assert_eq!(timer.name(), "TimerFired");
        assert_eq!(timer.nic(), None);
    }

    #[test]
    fn count_matching_filters() {
        let mut t = Trace::with_capacity(10);
        t.push(SimTime::ZERO, TraceEvent::NicIdle { nic: NicId(1) });
        t.push(SimTime::ZERO, TraceEvent::NicIdle { nic: NicId(2) });
        t.push(
            SimTime::ZERO,
            TraceEvent::TxDone {
                nic: NicId(1),
                cookie: 0,
            },
        );
        assert_eq!(
            t.count_matching(|e| matches!(e, TraceEvent::NicIdle { .. })),
            2
        );
    }
}
