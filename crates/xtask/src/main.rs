//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `analyze` — run the source lints, then the madcheck static conformance
//!   analyzer over every registered strategy × every driver capability
//!   profile. Exits non-zero (printing a minimized counterexample) if any
//!   strategy can emit a plan that violates the plan constraints or a
//!   driver capability bound, then checks the madscope metrics export
//!   (unique sample keys, no silent drops). Finishes with a madtrace
//!   smoke test: a small
//!   traced workload is exported to Chrome trace-event JSON, re-parsed,
//!   and the event count must round-trip (bit-identically across runs).
//! * `lint` — run only the source lints (determinism and hot-path
//!   hygiene), plus `cargo fmt --check` when rustfmt is installed.
//! * `bench` — run the madscope smoke suite (one point each of E1, E2,
//!   E7 and E12 plus a sampler-instrumented replay) and write the
//!   schema-versioned `BENCH_<label>.json` gate document and the sampler
//!   CSV; `--check <baseline>` compares the fresh run against a committed
//!   baseline and exits non-zero on regression.
//!
//! No external dependencies: argument parsing is by hand and the analyzer
//! runs in-process.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use madcheck::AnalyzeOptions;
use madeleine::strategy::StrategyRegistry;
use madeleine::EngineConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("lint") => {
            if lint(repo_root().as_path(), true) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  analyze   source lints + static conformance analysis of all registered
            strategies against every driver capability profile, plus the
            madflow flow-index, retransmit and metrics-export rules
              --broken-fixture   also register the deliberately broken
                                 fixture strategies (expected to fail)
              --seed <u64>       corpus seed (default: stable)
              --samples <n>      sampled backlogs per profile (default 64)
              --skip-lints       conformance analysis only
  bench     madscope regression gate: run the E1/E2/E7/E12 smoke suite
            plus a sampler replay, write BENCH_<label>.json and
            BENCH_<label>_sampler.csv
              --label <name>     document label / file stem (default: baseline)
              --out <dir>        output directory (default: repo root)
              --check <file>     compare against a baseline BENCH_*.json
                                 and exit non-zero on any regression
              --threshold <f>    per-metric regression budget as a
                                 fraction of the baseline (default 0.05)
  lint      source lints only (+ cargo fmt --check when available)
  help      this text
";

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

fn analyze(args: &[String]) -> ExitCode {
    let mut opts = AnalyzeOptions::default();
    let mut broken = false;
    let mut skip_lints = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--broken-fixture" => broken = true,
            "--skip-lints" => skip_lints = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return flag_error("--seed expects an unsigned integer"),
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.samples = v,
                None => return flag_error("--samples expects an unsigned integer"),
            },
            other => return flag_error(&format!("unknown flag `{other}`")),
        }
    }

    let mut ok = true;
    if !skip_lints {
        ok &= lint(repo_root().as_path(), false);
    }

    let mut registry = StrategyRegistry::standard(&EngineConfig::default());
    if broken {
        registry.register(Box::new(madcheck::fixtures::SkewedOffset));
        registry.register(Box::new(madcheck::fixtures::GatherHog));
        registry.register(Box::new(madcheck::fixtures::EagerRequester));
    }
    let report = madcheck::analyze(&registry, &opts);
    print!("{report}");
    ok &= report.is_clean();

    let retx = madcheck::retx_sweep(opts.seed, opts.samples);
    print!("{retx}");
    ok &= retx.is_clean();

    let metrics = madcheck::metrics_check();
    print!("{metrics}");
    ok &= metrics.is_clean();

    let flow = madcheck::flow_check(opts.seed, opts.samples);
    print!("{flow}");
    ok &= flow.is_clean();

    ok &= trace_smoke();

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn flag_error(msg: &str) -> ExitCode {
    eprintln!("xtask analyze: {msg}");
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// bench (madscope regression gate)
// ---------------------------------------------------------------------------

fn bench(args: &[String]) -> ExitCode {
    use mad_bench::regression::{self, BenchDoc, Direction};

    let mut label = String::from("baseline");
    let mut out_dir = repo_root();
    let mut check_path: Option<PathBuf> = None;
    let mut threshold = regression::DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => match it.next() {
                Some(v)
                    if !v.is_empty()
                        && v.chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') =>
                {
                    label = v.clone();
                }
                _ => return bench_error("--label expects [A-Za-z0-9_-]+"),
            },
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return bench_error("--out expects a directory"),
            },
            "--check" => match it.next() {
                Some(v) => check_path = Some(PathBuf::from(v)),
                None => return bench_error("--check expects a baseline file"),
            },
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 && v.is_finite() => threshold = v,
                _ => return bench_error("--threshold expects a non-negative fraction"),
            },
            other => return bench_error(&format!("unknown flag `{other}`")),
        }
    }

    println!("xtask bench: running madscope smoke suite (label `{label}`)");
    let suite = regression::run_suite(&label);
    for m in &suite.doc.metrics {
        println!(
            "  {:<28} {:>14.3}  [{}]",
            m.name,
            m.value,
            m.direction.label()
        );
    }

    if let Err(e) = fs::create_dir_all(&out_dir) {
        return bench_error(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let json_path = out_dir.join(format!("BENCH_{label}.json"));
    let csv_path = out_dir.join(format!("BENCH_{label}_sampler.csv"));
    let mut doc_text = suite.doc.render();
    doc_text.push('\n');
    if let Err(e) = fs::write(&json_path, &doc_text) {
        return bench_error(&format!("cannot write {}: {e}", json_path.display()));
    }
    if let Err(e) = fs::write(&csv_path, &suite.sampler_csv) {
        return bench_error(&format!("cannot write {}: {e}", csv_path.display()));
    }
    println!(
        "xtask bench: wrote {} and {}",
        json_path.display(),
        csv_path.display()
    );

    let Some(base_path) = check_path else {
        return ExitCode::SUCCESS;
    };
    let base_text = match fs::read_to_string(&base_path) {
        Ok(t) => t,
        Err(e) => return bench_error(&format!("cannot read {}: {e}", base_path.display())),
    };
    let base = match BenchDoc::parse(&base_text) {
        Ok(d) => d,
        Err(e) => return bench_error(&format!("{}: {e}", base_path.display())),
    };
    let violations = regression::check(&base, &suite.doc, threshold);
    if violations.is_empty() {
        let gated = base
            .metrics
            .iter()
            .filter(|m| m.direction != Direction::Info)
            .count();
        println!(
            "xtask bench: gate passed vs {} ({gated} gated metrics within {:.1}%)",
            base_path.display(),
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask bench: gate FAILED vs {} ({} violations):",
            base_path.display(),
            violations.len()
        );
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn bench_error(msg: &str) -> ExitCode {
    eprintln!("xtask bench: {msg}");
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// trace-export smoke test
// ---------------------------------------------------------------------------

/// Madtrace round-trip check: run a small traced workload twice, export the
/// merged Chrome timeline, re-parse the JSON and verify the event count
/// matches what the exporter reported — and that the repeat run is
/// byte-identical (the export must be deterministic).
fn trace_smoke() -> bool {
    let first = trace_export_once();
    let second = trace_export_once();
    if first.json != second.json {
        println!(
            "xtask analyze: trace smoke FAILED: repeat export differs (nondeterministic export)"
        );
        return false;
    }
    match madeleine::chrome_event_count(&first.json) {
        Ok(n) if n == first.events => {
            println!("xtask analyze: trace smoke passed ({n} Chrome events round-tripped)");
            true
        }
        Ok(n) => {
            println!(
                "xtask analyze: trace smoke FAILED: exporter reported {} events, JSON parse found {n}",
                first.events
            );
            false
        }
        Err(e) => {
            println!("xtask analyze: trace smoke FAILED: export is not valid JSON: {e}");
            false
        }
    }
}

fn trace_export_once() -> madeleine::ChromeExport {
    use madeleine::{Cluster, ClusterSpec, MessageBuilder, TrafficClass};
    let mut c = Cluster::build(&ClusterSpec::mx_pair().with_tracing(4096), vec![]);
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let flow = h.open_flow(dst, TrafficClass::DEFAULT);
    for i in 0..8u8 {
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new().pack_cheaper(&[i; 96]).build_parts(),
            )
        });
    }
    c.drain();
    c.export_chrome_trace()
}

// ---------------------------------------------------------------------------
// source lints
// ---------------------------------------------------------------------------

/// Calls that would make the simulation depend on the host instead of the
/// virtual clock / seeded generators. The whole point of the harness is
/// bit-reproducible runs, so these are banned from every library crate.
const DETERMINISM_BANNED: &[(&str, &str)] = &[
    ("Instant::now", "host wall-clock; use simnet::SimTime"),
    ("SystemTime::now", "host wall-clock; use simnet::SimTime"),
    ("thread_rng", "unseeded RNG; use simnet::SplitMix64"),
    ("rand::random", "unseeded RNG; use simnet::SplitMix64"),
];

/// Hot-path files in the core crate where `.unwrap()` is banned outside
/// tests: a poisoned scheduler should surface a typed error or a message
/// via `.expect`, not an anonymous panic.
const UNWRAP_BANNED_FILES: &[&str] = &[
    "crates/core/src/collect.rs",
    // madflow: the flow index runs on every submit/commit/complete; an
    // anonymous panic there is indistinguishable from index corruption.
    "crates/core/src/flowmgr.rs",
    "crates/core/src/optimizer.rs",
    "crates/core/src/constraints.rs",
    "crates/core/src/cost.rs",
    "crates/core/src/proto.rs",
    // madrel: retransmission and fault-injection paths run inside the
    // drain loop; a panic there masquerades as a reliability bug.
    "crates/core/src/reliability.rs",
    "crates/simnet/src/fault.rs",
];

/// Marker that suppresses source lints on the line carrying it.
const ALLOW_MARKER: &str = "xtask: allow";

fn lint(root: &Path, with_fmt: bool) -> bool {
    let mut violations = 0usize;
    let mut files = 0usize;
    for crate_dir in list_dir(&root.join("crates")) {
        // xtask names the banned patterns literally; skip self-scanning.
        if crate_dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        for file in rust_sources(&crate_dir.join("src")) {
            files += 1;
            violations += lint_file(root, &file);
        }
    }
    let mut ok = violations == 0;
    println!("xtask lint: {files} files scanned, {violations} violations");

    if with_fmt {
        match std::process::Command::new("cargo")
            .args(["fmt", "--check"])
            .current_dir(root)
            .status()
        {
            Ok(st) if st.success() => println!("xtask lint: cargo fmt --check passed"),
            Ok(_) => {
                println!("xtask lint: cargo fmt --check FAILED (run `cargo fmt`)");
                ok = false;
            }
            Err(_) => println!("xtask lint: rustfmt unavailable, skipping format check"),
        }
    }
    ok
}

fn lint_file(root: &Path, path: &Path) -> usize {
    let Ok(text) = fs::read_to_string(path) else {
        return 0;
    };
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let unwrap_banned = UNWRAP_BANNED_FILES.contains(&rel_str.as_str())
        || rel_str.starts_with("crates/core/src/strategy/");
    // The core library must never write to stdio: observability goes
    // through madtrace sinks / debug_report, not ad-hoc prints.
    let print_banned = rel_str.starts_with("crates/core/src/");

    let mut violations = 0;
    for (lineno, line) in text.lines().enumerate() {
        // Only lint code above the unit-test module.
        if line.contains("#[cfg(test)]") {
            break;
        }
        if line.contains(ALLOW_MARKER) {
            continue;
        }
        for (pattern, why) in DETERMINISM_BANNED {
            if line.contains(pattern) {
                println!("{}:{}: `{pattern}` is banned: {why}", rel_str, lineno + 1);
                violations += 1;
            }
        }
        if unwrap_banned && line.contains(".unwrap()") {
            println!(
                "{}:{}: `.unwrap()` is banned in scheduler hot paths; use `.expect(..)` \
                 with an invariant message or return an error",
                rel_str,
                lineno + 1
            );
            violations += 1;
        }
        if print_banned && (line.contains("println!") || line.contains("eprintln!")) {
            println!(
                "{}:{}: stdio printing is banned in the core library; record a \
                 madtrace event or extend `debug_report()` instead",
                rel_str,
                lineno + 1
            );
            violations += 1;
        }
    }
    violations
}

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = fs::read_dir(&d) else { continue };
        let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out
}
