//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `analyze` — run the madlint AST analyzer, then the madcheck static
//!   conformance analyzer over every registered strategy × every driver
//!   capability profile. Exits non-zero (printing a minimized
//!   counterexample) if any strategy can emit a plan that violates the
//!   plan constraints or a driver capability bound, checks the per-driver
//!   strategy applicability masks against the sweep, then checks the
//!   madscope metrics export (unique sample keys, no silent drops) and
//!   the madprof attribution partition (phase durations telescope
//!   exactly to each message's lifetime over a seeded traced corpus) and
//!   the maddiff comparison rules (same-seed self-diffs exactly zero,
//!   per-phase deltas partition each latency delta, byte-stable
//!   reports). Finishes with a madtrace smoke test: a small
//!   traced workload is exported to Chrome trace-event JSON, re-parsed,
//!   and the event count must round-trip (bit-identically across runs).
//! * `lint` — run the madlint AST pass (determinism, panic hygiene,
//!   concurrency readiness, trace coverage; see `crates/madlint`), plus
//!   `cargo fmt --check` when rustfmt is installed. `--json` emits the
//!   machine-readable diagnostics document; the exit code is stable per
//!   failure class (see `madlint::diag`).
//! * `bench` — run the madscope smoke suite (one point each of E1, E2,
//!   E7 and E12 plus a sampler-instrumented replay) and write the
//!   schema-versioned `BENCH_<label>.json` gate document, the sampler
//!   CSV and the `BENCH_<label>_diffseeds.json` maddiff seed bundle;
//!   `--check <baseline>` compares the fresh run against a committed
//!   baseline and exits non-zero on regression. On a gate failure, each
//!   violated metric's diff cell is re-run against the committed seed
//!   bundle next to the baseline and a `BENCH_diff_<metric>.md`
//!   root-cause report (phase share deltas, rail/strategy migrations,
//!   first divergent decision) is written to the output directory.
//!
//! No external dependencies: argument parsing is by hand and the analyzer
//! runs in-process.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use madcheck::AnalyzeOptions;
use madeleine::strategy::StrategyRegistry;
use madeleine::EngineConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("lint") => lint_cmd(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  analyze   madlint AST lints + static conformance analysis of all
            registered strategies against every driver capability
            profile, plus the strategy-mask, madflow flow-index,
            retransmit, metrics-export, madprof-attribution and
            maddiff-comparison rules
              --broken-fixture   also register the deliberately broken
                                 fixture strategies (expected to fail)
              --seed <u64>       corpus seed (default: stable)
              --samples <n>      sampled backlogs per profile (default 64)
              --skip-lints       conformance analysis only
  bench     madscope regression gate: run the E1/E2/E7/E12 smoke suite
            plus a sampler replay, write BENCH_<label>.json,
            BENCH_<label>_sampler.csv and the maddiff seed bundle
            BENCH_<label>_diffseeds.json
              --label <name>     document label / file stem (default: baseline)
              --out <dir>        output directory (default: repo root)
              --check <file>     compare against a baseline BENCH_*.json
                                 and exit non-zero on any regression;
                                 on failure, re-run each violated
                                 metric's maddiff cell against the
                                 committed <file stem>_diffseeds.json
                                 and write BENCH_diff_<metric>.md
              --threshold <f>    per-metric regression budget as a
                                 fraction of the baseline (default 0.05)
  lint      madlint AST pass only (+ cargo fmt --check when available)
              --json             machine-readable diagnostics on stdout
            exit codes: 0 clean, 2 determinism, 3 panic-hygiene,
            4 concurrency, 5 trace-coverage, 1 mixed classes, 64 error
  help      this text
";

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

fn analyze(args: &[String]) -> ExitCode {
    let mut opts = AnalyzeOptions::default();
    let mut broken = false;
    let mut skip_lints = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--broken-fixture" => broken = true,
            "--skip-lints" => skip_lints = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return flag_error("--seed expects an unsigned integer"),
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.samples = v,
                None => return flag_error("--samples expects an unsigned integer"),
            },
            other => return flag_error(&format!("unknown flag `{other}`")),
        }
    }

    let mut ok = true;
    if !skip_lints {
        ok &= lint_for_analyze();
    }

    let mut registry = StrategyRegistry::standard(&EngineConfig::default());
    if broken {
        registry.register(Box::new(madcheck::fixtures::SkewedOffset));
        registry.register(Box::new(madcheck::fixtures::GatherHog));
        registry.register(Box::new(madcheck::fixtures::EagerRequester));
    }
    let report = madcheck::analyze(&registry, &opts);
    print!("{report}");
    ok &= report.is_clean();

    let mask = madcheck::mask_check(&registry, &opts);
    print!("{mask}");
    ok &= mask.is_clean();

    let retx = madcheck::retx_sweep(opts.seed, opts.samples);
    print!("{retx}");
    ok &= retx.is_clean();

    let metrics = madcheck::metrics_check();
    print!("{metrics}");
    ok &= metrics.is_clean();

    let flow = madcheck::flow_check(opts.seed, opts.samples);
    print!("{flow}");
    ok &= flow.is_clean();

    // madnet topology sweep: routed paths + fair-share conservation
    // over the seeded topology corpus.
    let net = madcheck::net_check(opts.seed, opts.samples.max(4));
    print!("{net}");
    ok &= net.is_clean();

    // madprof partition sweep: bounded corpus (each sample is a full
    // traced simulation, so the count is fixed rather than tied to
    // --samples).
    let prof = madcheck::prof_check(opts.seed, 8);
    print!("{prof}");
    ok &= prof.is_clean();

    // madcoll schedule sweep: every collective plan in the seeded corpus
    // (and every auto-selected plan per capability profile) must be an
    // acyclic, member-spanning, byte-exact round-gated DAG.
    let coll = madcheck::coll_check(opts.seed, opts.samples.max(8));
    print!("{coll}");
    ok &= coll.is_clean();

    // maddiff sweep: self-diffs must be exactly zero, perturbed diffs
    // must keep the delta-partition invariant, and reports must be
    // byte-stable (each sample is two full traced simulations plus a
    // perturbed third, so the count is fixed like prof's).
    let diffr = madcheck::diff_check(opts.seed, 6);
    print!("{diffr}");
    ok &= diffr.is_clean();

    ok &= trace_smoke();

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn flag_error(msg: &str) -> ExitCode {
    eprintln!("xtask analyze: {msg}");
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// bench (madscope regression gate)
// ---------------------------------------------------------------------------

fn bench(args: &[String]) -> ExitCode {
    use mad_bench::regression::{self, BenchDoc, Direction};

    let mut label = String::from("baseline");
    let mut out_dir = repo_root();
    let mut check_path: Option<PathBuf> = None;
    let mut threshold = regression::DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => match it.next() {
                Some(v)
                    if !v.is_empty()
                        && v.chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') =>
                {
                    label = v.clone();
                }
                _ => return bench_error("--label expects [A-Za-z0-9_-]+"),
            },
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return bench_error("--out expects a directory"),
            },
            "--check" => match it.next() {
                Some(v) => check_path = Some(PathBuf::from(v)),
                None => return bench_error("--check expects a baseline file"),
            },
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 && v.is_finite() => threshold = v,
                _ => return bench_error("--threshold expects a non-negative fraction"),
            },
            other => return bench_error(&format!("unknown flag `{other}`")),
        }
    }

    println!("xtask bench: running madscope smoke suite (label `{label}`)");
    let suite = regression::run_suite(&label);
    for m in &suite.doc.metrics {
        println!(
            "  {:<28} {:>14.3}  [{}]",
            m.name,
            m.value,
            m.direction.label()
        );
    }

    if let Err(e) = fs::create_dir_all(&out_dir) {
        return bench_error(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let json_path = out_dir.join(format!("BENCH_{label}.json"));
    let csv_path = out_dir.join(format!("BENCH_{label}_sampler.csv"));
    let mut doc_text = suite.doc.render();
    doc_text.push('\n');
    if let Err(e) = fs::write(&json_path, &doc_text) {
        return bench_error(&format!("cannot write {}: {e}", json_path.display()));
    }
    if let Err(e) = fs::write(&csv_path, &suite.sampler_csv) {
        return bench_error(&format!("cannot write {}: {e}", csv_path.display()));
    }
    let seeds_path = out_dir.join(format!("BENCH_{label}_diffseeds.json"));
    let mut seeds_text = mad_bench::diffcells::write_seeds(&label);
    seeds_text.push('\n');
    if let Err(e) = fs::write(&seeds_path, &seeds_text) {
        return bench_error(&format!("cannot write {}: {e}", seeds_path.display()));
    }
    println!(
        "xtask bench: wrote {}, {} and {}",
        json_path.display(),
        csv_path.display(),
        seeds_path.display()
    );

    let Some(base_path) = check_path else {
        return ExitCode::SUCCESS;
    };
    let base_text = match fs::read_to_string(&base_path) {
        Ok(t) => t,
        Err(e) => return bench_error(&format!("cannot read {}: {e}", base_path.display())),
    };
    let base = match BenchDoc::parse(&base_text) {
        Ok(d) => d,
        Err(e) => return bench_error(&format!("{}: {e}", base_path.display())),
    };
    let violations = regression::check(&base, &suite.doc, threshold);
    if violations.is_empty() {
        let gated = base
            .metrics
            .iter()
            .filter(|m| m.direction != Direction::Info)
            .count();
        println!(
            "xtask bench: gate passed vs {} ({gated} gated metrics within {:.1}%)",
            base_path.display(),
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask bench: gate FAILED vs {} ({} violations):",
            base_path.display(),
            violations.len()
        );
        for v in &violations {
            println!("  {v}");
        }
        bench_diff_reports(&base_path, &out_dir, &violations);
        ExitCode::FAILURE
    }
}

/// maddiff root-cause attribution for a failed gate: re-run each
/// violated metric's traced diff cell on the current code, align it
/// against the committed seed bundle next to the baseline document, and
/// write one `BENCH_diff_<metric>.md` per violated metric. Missing or
/// unparseable seed bundles degrade to a note — the gate verdict never
/// depends on this path.
fn bench_diff_reports(base_path: &Path, out_dir: &Path, violations: &[String]) {
    use mad_bench::diffcells;

    let seeds_path = match base_path.file_name().and_then(|n| n.to_str()) {
        Some(name) => match name.strip_suffix(".json") {
            Some(stem) => base_path.with_file_name(format!("{stem}_diffseeds.json")),
            None => base_path.with_file_name(format!("{name}_diffseeds.json")),
        },
        None => return,
    };
    let seeds_text = match fs::read_to_string(&seeds_path) {
        Ok(t) => t,
        Err(e) => {
            println!(
                "xtask bench: no maddiff seed bundle at {} ({e}); skipping root-cause reports",
                seeds_path.display()
            );
            return;
        }
    };
    let seeds = match diffcells::parse_seeds(&seeds_text) {
        Ok(s) => s,
        Err(e) => {
            println!(
                "xtask bench: cannot parse {}: {e}; skipping root-cause reports",
                seeds_path.display()
            );
            return;
        }
    };

    // Several violations usually map to one cell; re-run each cell once.
    let mut fresh: std::collections::BTreeMap<&str, madeleine::RunSnapshot> =
        std::collections::BTreeMap::new();
    for v in violations {
        let metric = v.split(':').next().unwrap_or(v).trim();
        let Some(cell) = diffcells::cell_for_metric(metric) else {
            println!("xtask bench: no maddiff cell maps to `{metric}`; skipping");
            continue;
        };
        let Some(baseline) = seeds.get(cell.name) else {
            println!(
                "xtask bench: seed bundle {} has no cell `{}`; skipping `{metric}`",
                seeds_path.display(),
                cell.name
            );
            continue;
        };
        let snap = fresh
            .entry(cell.name)
            .or_insert_with(|| (cell.build)(0).run_snapshot(cell.name));
        let report = diffcells::root_cause_report(metric, v, baseline, snap);
        let path = out_dir.join(format!("BENCH_diff_{metric}.md"));
        match fs::write(&path, report) {
            Ok(()) => println!("xtask bench: wrote root-cause report {}", path.display()),
            Err(e) => println!("xtask bench: cannot write {}: {e}", path.display()),
        }
    }
}

fn bench_error(msg: &str) -> ExitCode {
    eprintln!("xtask bench: {msg}");
    ExitCode::FAILURE
}

// ---------------------------------------------------------------------------
// trace-export smoke test
// ---------------------------------------------------------------------------

/// Madtrace round-trip check: run a small traced workload twice, export the
/// merged Chrome timeline, re-parse the JSON and verify the event count
/// matches what the exporter reported — and that the repeat run is
/// byte-identical (the export must be deterministic).
fn trace_smoke() -> bool {
    let first = trace_export_once();
    let second = trace_export_once();
    if first.json != second.json {
        println!(
            "xtask analyze: trace smoke FAILED: repeat export differs (nondeterministic export)"
        );
        return false;
    }
    match madeleine::chrome_event_count(&first.json) {
        Ok(n) if n == first.events => {
            println!("xtask analyze: trace smoke passed ({n} Chrome events round-tripped)");
            true
        }
        Ok(n) => {
            println!(
                "xtask analyze: trace smoke FAILED: exporter reported {} events, JSON parse found {n}",
                first.events
            );
            false
        }
        Err(e) => {
            println!("xtask analyze: trace smoke FAILED: export is not valid JSON: {e}");
            false
        }
    }
}

fn trace_export_once() -> madeleine::ChromeExport {
    use madeleine::{Cluster, ClusterSpec, MessageBuilder, TrafficClass};
    let mut c = Cluster::build(&ClusterSpec::mx_pair().with_tracing(4096), vec![]);
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let flow = h.open_flow(dst, TrafficClass::DEFAULT);
    for i in 0..8u8 {
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new().pack_cheaper(&[i; 96]).build_parts(),
            )
        });
    }
    c.drain();
    c.export_chrome_trace()
}

// ---------------------------------------------------------------------------
// madlint (the AST source analyzer; replaced the old substring lints)
// ---------------------------------------------------------------------------

/// `cargo xtask lint [--json]`: run the madlint AST pass over the
/// workspace. Text mode also runs `cargo fmt --check` when rustfmt is
/// available; `--json` prints only the machine-readable document so CI
/// can parse stdout. Exit codes are stable per failure class
/// (`madlint::FailureClass`), `1` for mixed classes, `64` for analyzer
/// errors, and `101` is reserved for format failures so they cannot be
/// confused with a lint class.
fn lint_cmd(args: &[String]) -> ExitCode {
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("xtask lint: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = madlint::lint_workspace(repo_root().as_path());
    if json {
        print!("{}", report.render_json());
        return ExitCode::from(report.exit_code());
    }
    print!("{}", report.render_text());
    if report.exit_code() != 0 {
        return ExitCode::from(report.exit_code());
    }
    match std::process::Command::new("cargo")
        .args(["fmt", "--check"])
        .current_dir(repo_root())
        .status()
    {
        Ok(st) if st.success() => {
            println!("xtask lint: cargo fmt --check passed");
            ExitCode::SUCCESS
        }
        Ok(_) => {
            println!("xtask lint: cargo fmt --check FAILED (run `cargo fmt`)");
            ExitCode::from(101)
        }
        Err(_) => {
            println!("xtask lint: rustfmt unavailable, skipping format check");
            ExitCode::SUCCESS
        }
    }
}

/// In-process madlint run for `analyze`: prints findings (text) and
/// returns cleanliness.
fn lint_for_analyze() -> bool {
    let report = madlint::lint_workspace(repo_root().as_path());
    print!("{}", report.render_text());
    report.is_clean()
}
