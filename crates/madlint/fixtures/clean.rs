//! Fixture: compliant code under every marker at once. Must be silent.
// madlint: file: hot-path
// madlint: file: deterministic-output
// madlint: file: scoring
// madlint: file: trace-covered
// madlint: file: lock-order: registry before per-flow state

use std::collections::BTreeMap;

pub struct EngineEvent;

pub struct Trace {
    events: Vec<EngineEvent>,
}

impl Trace {
    pub fn push(&mut self, e: EngineEvent) {
        self.events.push(e);
    }
}

pub struct Backlog;

impl Backlog {
    pub fn shed_oldest(&mut self) {}
}

/// Ordered iteration: BTreeMap is deterministic.
pub fn export_counters(counters: &BTreeMap<u32, u64>) -> Vec<(u32, u64)> {
    counters.iter().map(|(k, v)| (*k, *v)).collect()
}

/// Named invariant instead of an anonymous panic.
pub fn pick_rail(best: Option<usize>) -> usize {
    best.expect("policy guarantees at least one live rail")
}

/// Total order on scores.
pub fn better(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Greater
}

/// Lifecycle mutation with the matching trace emission.
pub fn relieve_pressure(b: &mut Backlog, trace: &mut Trace) {
    b.shed_oldest();
    trace.push(EngineEvent);
}

/// A documented lock (see the file-level lock-order directive).
pub static REGISTRY: std::sync::Mutex<Vec<u32>> = std::sync::Mutex::new(Vec::new());
