//! Fixture: raw float ordering in a scoring scope. Must trip
//! `float-ord` and nothing else.
// madlint: file: scoring

pub struct Candidate {
    pub score: f64,
}

/// Raw `>` on scores: NaN poisons the comparison silently.
pub fn better(a: &Candidate, b: &Candidate) -> bool {
    a.score > b.score
}

/// `partial_cmp` is not a total order.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
