//! Fixture: a lifecycle mutation invisible to madtrace. Must trip
//! `trace-coverage` and nothing else.
// madlint: file: trace-covered

pub struct Backlog;

impl Backlog {
    pub fn shed_oldest(&mut self) {}
}

/// Sheds backlog without pushing an EngineEvent — the flight recorder
/// goes blind for this transition.
pub fn relieve_pressure(b: &mut Backlog) {
    b.shed_oldest();
}
