//! Fixture: hash-order iteration inside a deterministic-output scope.
//! Must trip `nondet-iter` and nothing else.
// madlint: file: deterministic-output

use std::collections::HashMap;

/// Exports per-flow counters — iteration order reaches the output.
pub fn export_counters(counters: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    for (flow, count) in counters {
        out.push((*flow, *count));
    }
    out
}

/// Sums values through an explicit `.values()` walk.
pub fn total(counters: &HashMap<u32, u64>) -> u64 {
    counters.values().sum()
}
