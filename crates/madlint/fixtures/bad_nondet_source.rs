//! Fixture: host clock, unseeded RNG and environment reads in library
//! code. Must trip `nondet-source` (always on — no marker needed) and
//! nothing else.

use std::time::Instant;

/// Reads the host clock instead of the simulation clock.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Seeds from the OS entropy pool instead of the simnet RNG.
pub fn roll() -> u64 {
    let mut rng = rand::rngs::StdRng::from_entropy();
    rng.next_u64()
}

/// Reads the environment outside an entrypoint.
pub fn configured_mtu() -> Option<String> {
    std::env::var("MAD_MTU").ok()
}
