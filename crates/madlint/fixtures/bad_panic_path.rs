//! Fixture: anonymous panics in a hot-path scope. Must trip
//! `panic-path` and nothing else.
// madlint: file: hot-path

/// `.unwrap()` dies without naming the violated invariant.
pub fn pick_rail(best: Option<usize>) -> usize {
    best.unwrap()
}

/// `unreachable!` in a dispatch arm that faults will eventually reach.
pub fn dispatch(kind: u16) -> &'static str {
    match kind {
        0 => "data",
        1 => "ctrl",
        _ => unreachable!(),
    }
}
