//! Fixture: shared mutable state that blocks sharding. Must trip
//! `shared-state` and nothing else.

/// Process-global mutable counter: a data race once madpar shards.
pub static mut PACKETS_SENT: u64 = 0;

/// An undocumented lock: no `// madlint: lock-order:` directive in scope.
pub static REGISTRY: std::sync::Mutex<Vec<u32>> = std::sync::Mutex::new(Vec::new());

/// A type that must shard across threads but holds interior mutability.
// madlint: send-sync
pub struct RailTable {
    pub scores: std::cell::RefCell<Vec<f64>>,
}
