//! Fixture-corpus contract: every shipped rule has a bad file that trips
//! exactly that rule, the clean file is silent under every marker, and
//! the machine-readable `--json` rendering matches a golden snapshot.
//!
//! Regenerate the snapshot after an intentional rule change with
//! `MADLINT_BLESS=1 cargo test -p madlint --test fixtures`.

use std::fs;
use std::path::{Path, PathBuf};

use madlint::{lint_files, RuleId};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Lint one fixture, reporting paths relative to the crate root
/// (`fixtures/<name>`), so diagnostics are machine-stable.
fn lint_fixture(name: &str) -> madlint::LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    lint_files(root, &[fixture_dir().join(name)])
}

/// Each bad file must produce at least one finding, all of them for the
/// rule the file is named after.
#[test]
fn each_bad_fixture_trips_exactly_its_rule() {
    let cases = [
        ("bad_nondet_iter.rs", RuleId::NondetIter),
        ("bad_nondet_source.rs", RuleId::NondetSource),
        ("bad_panic_path.rs", RuleId::PanicPath),
        ("bad_float_ord.rs", RuleId::FloatOrd),
        ("bad_shared_state.rs", RuleId::SharedState),
        ("bad_trace_coverage.rs", RuleId::TraceCoverage),
    ];
    for (file, rule) in cases {
        let report = lint_fixture(file);
        assert!(report.errors.is_empty(), "{file}: {:?}", report.errors);
        assert!(
            !report.diagnostics.is_empty(),
            "{file}: expected {} to fire",
            rule.name()
        );
        for d in &report.diagnostics {
            assert_eq!(
                d.rule,
                rule,
                "{file}: stray {} finding at line {}: {}",
                d.rule.name(),
                d.line,
                d.message
            );
        }
        assert_eq!(
            report.exit_code(),
            rule.class().exit_code(),
            "{file}: wrong exit code for class {}",
            rule.class().name()
        );
    }
}

/// The clean fixture opts into every marker and must stay silent.
#[test]
fn clean_fixture_is_silent() {
    let report = lint_fixture("clean.rs");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.diagnostics.is_empty(),
        "clean.rs should be silent:\n{}",
        report.render_text()
    );
    assert_eq!(report.exit_code(), 0);
}

/// The whole corpus rendered as `--json` must match the golden snapshot
/// byte for byte — this pins the schema, the canonical sort order, the
/// per-rule counts and every message/hint string.
#[test]
fn json_rendering_matches_golden_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("fixtures directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    let report = lint_files(root, &files);
    let actual = report.render_json();

    let golden_path = fixture_dir().join("golden_diagnostics.json");
    if std::env::var_os("MADLINT_BLESS").is_some() {
        fs::write(&golden_path, &actual).expect("write golden snapshot");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("golden snapshot exists (bless with MADLINT_BLESS=1)");
    assert_eq!(
        actual, golden,
        "madlint --json output drifted from the golden snapshot; if the \
         change is intentional, re-bless with MADLINT_BLESS=1"
    );
}

/// Exit codes stay mixed-class stable across the corpus: the combined
/// report spans all four failure classes, so it must exit 1.
#[test]
fn combined_corpus_is_mixed_class() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files: Vec<PathBuf> = [
        "bad_nondet_iter.rs",
        "bad_panic_path.rs",
        "bad_shared_state.rs",
        "bad_trace_coverage.rs",
    ]
    .iter()
    .map(|f| fixture_dir().join(f))
    .collect();
    let report = lint_files(root, &files);
    assert_eq!(report.exit_code(), madlint::EXIT_MIXED);
}
