//! madlint — AST-level determinism and concurrency-readiness analyzer.
//!
//! Supersedes the old per-line substring lints in `xtask`: source is
//! lexed ([`lexer`]) and parsed into an item tree with `#[cfg(test)]` and
//! directive scoping ([`parse`]), then a pluggable ruleset ([`rules`])
//! matches *token sequences* inside the scopes each rule applies to.
//! Diagnostics are span-accurate and machine-readable ([`diag`]), render
//! as text or deterministic JSON, and map to stable per-class exit codes
//! for CI.
//!
//! In this offline environment `syn` is not available, so madlint ships
//! its own minimal lexer and item-tree parser — the same philosophy as
//! the workspace's vendored dependency shims. The parser resolves what
//! the rules need (items, nesting, test scoping, local container types)
//! and nothing more; it is permissive and never fails on odd input.
//!
//! Entry points: [`lint_workspace`] for `cargo xtask lint`,
//! [`lint_source`] for one in-memory file (fixtures, tests).

pub mod diag;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use diag::{Diagnostic, FailureClass, LintReport, RuleId, EXIT_ERROR, EXIT_MIXED};
pub use parse::{Directive, SourceFile};

/// Lint one source text under a repo-relative label. Returns the
/// (unsorted) diagnostics plus any directive-syntax errors.
pub fn lint_source(path_label: &str, src: &str) -> (Vec<Diagnostic>, Vec<String>) {
    let file = SourceFile::parse(path_label, src);
    let diags = rules::check_file(&file);
    (diags, file.errors)
}

/// All workspace sources the analyzer covers: `crates/*/src/**/*.rs`,
/// in sorted (deterministic) order. Vendored shims are out of scope —
/// they mirror external APIs and never run in the simulation hot path.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut crates: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crates.sort();
    let mut files = Vec::new();
    for c in crates {
        collect_rs(&c.join("src"), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lint an explicit file list; paths are reported relative to `root`.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> LintReport {
    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(src) => {
                let (diags, errors) = lint_source(&rel, &src);
                report.files_scanned += 1;
                report.diagnostics.extend(diags);
                report.errors.extend(errors);
            }
            Err(e) => report.errors.push(format!("{rel}: unreadable: {e}")),
        }
    }
    report.finish();
    report
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> LintReport {
    let files = workspace_sources(root);
    lint_files(root, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nondet_source_fires_outside_tests_only() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { let t = Instant::now(); }\n}\n";
        let (diags, errors) = lint_source("crates/x/src/lib.rs", src);
        assert!(errors.is_empty());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::NondetSource);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "fn f() {\n    let s = \"Instant::now thread_rng\"; // Instant::now\n}\n";
        let (diags, _) = lint_source("crates/x/src/lib.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn marker_rules_are_opt_in() {
        let src = "fn f(m: &HashMap<u32, u32>) { for v in m.values() { let _ = v; } }\n";
        let (diags, _) = lint_source("crates/x/src/lib.rs", src);
        assert!(
            diags.is_empty(),
            "not a deterministic-output scope: {diags:?}"
        );
        let marked = format!("// madlint: deterministic-output\n{src}");
        let (diags, _) = lint_source("crates/x/src/lib.rs", &marked);
        assert!(
            diags.iter().any(|d| d.rule == RuleId::NondetIter),
            "{diags:?}"
        );
    }

    #[test]
    fn item_allow_suppresses_whole_function() {
        let src = "// madlint: file: hot-path\n\
                   // madlint: allow(panic-path) — exercised by the driver contract\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (diags, _) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn env_reads_allowed_in_entrypoints() {
        let src = "fn main() { let a: Vec<String> = std::env::args().collect(); }\n";
        let (diags, _) = lint_source("crates/x/src/main.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        let (diags, _) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
    }
}
