//! Item-tree parser and scoping directives.
//!
//! Builds a nested item tree (modules, impls, functions, type
//! definitions) from the token stream, tracking for every item whether it
//! lives under `#[cfg(test)]` / `#[test]` and which madlint directives
//! apply to it. This is the scope-resolution half of the offline `syn`
//! stand-in: rules never see test code, and allows/markers attach to the
//! exact item they annotate instead of whole files or single lines.
//!
//! ## Directive grammar
//!
//! Directives ride in ordinary comments so they survive stable `rustc`
//! (a true `#[allow(madlint::rule)]` tool attribute would not compile):
//!
//! ```text
//! // madlint: file: hot-path                 file-wide marker
//! // madlint: hot-path                       marker for the next item
//! // madlint: allow(rule-a, rule-b) — why    suppression (item or line)
//! // madlint: lock-order: A before B         documents lock ordering
//! ```
//!
//! An own-line `allow` immediately above an item suppresses the rule for
//! the whole item; a trailing `allow` on a code line suppresses it for
//! that line only. Marker directives (`hot-path`, `deterministic-output`,
//! `scoring`, `send-sync`, `trace-covered`, `emits-trace`) opt a scope
//! *into* a rule; nothing is linted by default except the always-on rules
//! (`nondet-source`, `shared-state`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{Tok, TokKind};

/// One madlint scoping directive, parsed from a comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    /// Suppress the named rules in this scope.
    Allow(Vec<String>),
    /// Engine hot path: panic-path hygiene applies.
    HotPath,
    /// Scope feeds deterministic output (traces, exports, registries):
    /// nondet-iter applies.
    DeterministicOutput,
    /// Plan-scoring code: float-ord applies.
    Scoring,
    /// Type must become `Send`/`Sync` for madpar: shared-state audits its
    /// fields.
    SendSync,
    /// Scope mutates flow lifecycle state: trace-coverage applies.
    TraceCovered,
    /// Declares that this scope emits its trace events indirectly
    /// (satisfies trace-coverage without a literal `trace.push`).
    EmitsTrace,
    /// Documents the lock acquisition order for the file, discharging the
    /// shared-state lock audit.
    LockOrder(String),
}

/// Kind of a parsed item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function, method, or default trait method).
    Fn,
    /// `mod` with a body.
    Mod,
    /// `impl` block.
    Impl,
    /// `trait` definition.
    Trait,
    /// `struct`, `enum` or `union` definition.
    Type,
    /// `static` or `const` item.
    Static,
    /// Anything else we skip over structurally (`use`, `type`, macros).
    Other,
}

/// One node of the item tree.
#[derive(Clone, Debug)]
pub struct Item {
    /// What kind of item.
    pub kind: ItemKind,
    /// Declared name (type name for impls), or empty when anonymous.
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// True when the item is test-only (`#[cfg(test)]`, `#[test]`, or any
    /// ancestor is).
    pub is_test: bool,
    /// Directives attached directly to this item.
    pub directives: Vec<Directive>,
    /// Full token range of the item (keyword through closing brace or
    /// semicolon), comments included.
    pub span: Range<usize>,
    /// Token range strictly inside the body braces, when there is one.
    pub body: Option<Range<usize>>,
    /// Nested items (for `mod`, `impl`, `trait`).
    pub children: Vec<Item>,
}

/// A fully parsed source file, ready for the rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (diagnostic label).
    pub path: String,
    /// Raw source lines, for snippets.
    pub lines: Vec<String>,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// Top-level item tree.
    pub items: Vec<Item>,
    /// File-wide directives (`madlint: file: ...`, anywhere in the file).
    pub file_directives: Vec<Directive>,
    /// Line → rules allowed on exactly that line.
    pub line_allows: BTreeMap<u32, Vec<String>>,
    /// Identifiers declared in this file with `HashMap`/`HashSet` type.
    pub hash_locals: Vec<String>,
    /// True for binary entry points (`main.rs`, `src/bin/**`), where
    /// `std::env` argument access is legitimate.
    pub is_entrypoint: bool,
    /// Directive-syntax problems (unknown markers, malformed allows).
    pub errors: Vec<String>,
}

impl SourceFile {
    /// Parse `src` into tokens, items and directives.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let toks = crate::lexer::lex(src);
        let mut errors = Vec::new();
        let mut file_directives = Vec::new();
        let mut line_allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();

        // Directive pass: classify every madlint comment up front.
        for t in &toks {
            if t.kind != TokKind::Comment {
                continue;
            }
            match parse_directive_comment(&t.text) {
                DirectiveParse::None => {}
                DirectiveParse::Err(e) => errors.push(format!("{path}:{}: {e}", t.line)),
                DirectiveParse::File(d) => file_directives.push(d),
                DirectiveParse::Scoped(Directive::Allow(rules)) if !t.own_line => {
                    line_allows.entry(t.line).or_default().extend(rules);
                }
                DirectiveParse::Scoped(_) => {
                    // Own-line item directives are consumed by the item
                    // parser below; trailing non-allow markers are inert.
                }
            }
        }

        let mut parser = Parser { toks: &toks };
        let items = parser.items_in(0..toks.len(), false);

        let hash_locals = collect_hash_locals(&toks);
        let fname = path.rsplit('/').next().unwrap_or(path);
        let is_entrypoint = fname == "main.rs" || path.contains("/src/bin/");

        SourceFile {
            path: path.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            toks,
            items,
            file_directives,
            line_allows,
            hash_locals,
            is_entrypoint,
            errors,
        }
    }

    /// Trimmed source text of `line` (1-based), for diagnostics.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Outcome of inspecting one comment for a directive.
enum DirectiveParse {
    /// Not a madlint comment.
    None,
    /// `madlint: file: ...`.
    File(Directive),
    /// Item- or line-scoped directive.
    Scoped(Directive),
    /// Malformed or unknown directive — surfaced as an analyzer error so
    /// a typo cannot silently disable a rule.
    Err(String),
}

/// Recognize `// madlint: ...` (or block-comment equivalent).
fn parse_directive_comment(text: &str) -> DirectiveParse {
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_end_matches('/')
        .trim_end_matches('*')
        .trim();
    let Some(rest) = body.strip_prefix("madlint:") else {
        return DirectiveParse::None;
    };
    let rest = rest.trim();
    let (file_scope, rest) = match rest.strip_prefix("file:") {
        Some(r) => (true, r.trim()),
        None => (false, rest),
    };
    match parse_directive_spec(rest) {
        Ok(d) if file_scope => DirectiveParse::File(d),
        Ok(d) => DirectiveParse::Scoped(d),
        Err(e) => DirectiveParse::Err(e),
    }
}

fn parse_directive_spec(spec: &str) -> Result<Directive, String> {
    if let Some(rest) = spec.strip_prefix("allow(") {
        let Some(end) = rest.find(')') else {
            return Err("malformed madlint allow: missing `)`".into());
        };
        let rules: Vec<String> = rest[..end]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            return Err("malformed madlint allow: no rules listed".into());
        }
        for r in &rules {
            if !crate::diag::RuleId::ALL.iter().any(|id| id.name() == r) {
                return Err(format!("madlint allow names unknown rule `{r}`"));
            }
        }
        return Ok(Directive::Allow(rules));
    }
    if let Some(rest) = spec.strip_prefix("lock-order:") {
        return Ok(Directive::LockOrder(rest.trim().to_string()));
    }
    // Marker word, optionally followed by free-text rationale.
    let word = spec.split_whitespace().next().unwrap_or("");
    match word {
        "hot-path" => Ok(Directive::HotPath),
        "deterministic-output" => Ok(Directive::DeterministicOutput),
        "scoring" => Ok(Directive::Scoring),
        "send-sync" => Ok(Directive::SendSync),
        "trace-covered" => Ok(Directive::TraceCovered),
        "emits-trace" => Ok(Directive::EmitsTrace),
        other => Err(format!("unknown madlint directive `{other}`")),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
}

impl Parser<'_> {
    /// Parse the items in `range` (the inside of a block, or the whole
    /// file). `in_test` marks an enclosing test scope.
    fn items_in(&mut self, range: Range<usize>, in_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut pending_dirs: Vec<Directive> = Vec::new();
        let mut pending_test = false;
        let mut i = range.start;
        while i < range.end {
            let t = &self.toks[i];
            match t.kind {
                TokKind::Comment => {
                    if t.own_line {
                        if let DirectiveParse::Scoped(d) = parse_directive_comment(&t.text) {
                            pending_dirs.push(d);
                        }
                    }
                    i += 1;
                }
                TokKind::Punct if t.text == "#" => {
                    let (attr_toks, next) = self.attr(i, range.end);
                    if attr_is_test(attr_toks) {
                        pending_test = true;
                    }
                    i = next;
                }
                TokKind::Ident => {
                    let start = i;
                    match t.text.as_str() {
                        "pub" => {
                            i += 1;
                            // pub(crate) / pub(in path)
                            if self.toks.get(i).is_some_and(|t| t.is_punct("(")) {
                                i = self.matching(i, range.end, "(", ")");
                            }
                            continue; // modifiers keep pending state
                        }
                        "unsafe" | "async" | "default" => {
                            i += 1;
                            continue;
                        }
                        "extern" => {
                            i += 1;
                            if self.toks.get(i).is_some_and(|t| t.kind == TokKind::Literal) {
                                i += 1;
                            }
                            // `extern "C" { ... }` block: treat as opaque.
                            if self.toks.get(i).is_some_and(|t| t.is_punct("{")) {
                                i = self.matching(i, range.end, "{", "}");
                                pending_dirs.clear();
                                pending_test = false;
                            }
                            continue;
                        }
                        "const" if self.toks.get(i + 1).is_some_and(|t| t.is_ident("fn")) => {
                            i += 1;
                            continue;
                        }
                        kw @ ("fn" | "mod" | "struct" | "enum" | "union" | "trait" | "impl"
                        | "static" | "const") => {
                            let is_test = in_test || pending_test;
                            let dirs = std::mem::take(&mut pending_dirs);
                            pending_test = false;
                            let item = self.item(kw, start, range.end, is_test, dirs);
                            i = item.span.end;
                            items.push(item);
                        }
                        _ => {
                            // use/type/macro invocations/stray tokens: skip
                            // to the end of the statement.
                            i = self.skip_stmt(i, range.end);
                            pending_dirs.clear();
                            pending_test = false;
                        }
                    }
                }
                _ => {
                    i += 1;
                    pending_dirs.clear();
                    pending_test = false;
                }
            }
        }
        items
    }

    /// Parse one item whose keyword sits at `start`.
    fn item(
        &mut self,
        kw: &str,
        start: usize,
        limit: usize,
        is_test: bool,
        directives: Vec<Directive>,
    ) -> Item {
        let line = self.toks[start].line;
        let (kind, recurse) = match kw {
            "fn" => (ItemKind::Fn, false),
            "mod" => (ItemKind::Mod, true),
            "impl" => (ItemKind::Impl, true),
            "trait" => (ItemKind::Trait, true),
            "struct" | "enum" | "union" => (ItemKind::Type, false),
            "static" | "const" => (ItemKind::Static, false),
            _ => (ItemKind::Other, false),
        };
        let name = self.item_name(kw, start, limit);

        // Find the end: first `;` or a balanced `{ ... }` at bracket
        // depth 0 (parens and square brackets tracked; `<` is not, which
        // is safe because generics cannot contain braces or semicolons).
        let mut depth = 0i32;
        let mut j = start + 1;
        let mut body: Option<Range<usize>> = None;
        while j < limit {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        let close = self.matching(j, limit, "{", "}");
                        body = Some(j + 1..close.saturating_sub(1));
                        j = close;
                        break;
                    }
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }

        let children = match (&body, recurse) {
            (Some(b), true) => self.items_in(b.clone(), is_test),
            _ => Vec::new(),
        };

        Item {
            kind,
            name,
            line,
            is_test,
            directives,
            span: start..j.min(limit),
            body,
            children,
        }
    }

    /// Resolve the display name for an item.
    fn item_name(&self, kw: &str, start: usize, limit: usize) -> String {
        match kw {
            "impl" => {
                // `impl<G> Trait for Type {` → Type; `impl Type {` → Type.
                let mut for_seen = false;
                let mut name = String::new();
                let mut j = start + 1;
                while j < limit {
                    let t = &self.toks[j];
                    if t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    if t.is_ident("for") {
                        for_seen = true;
                        name.clear();
                    } else if t.kind == TokKind::Ident && name.is_empty() {
                        name = t.text.clone();
                        if for_seen {
                            break;
                        }
                    }
                    j += 1;
                }
                name
            }
            "static" | "const" => {
                // Optional `mut`, then the name.
                let mut j = start + 1;
                while j < limit {
                    let t = &self.toks[j];
                    if t.kind == TokKind::Ident && t.text != "mut" {
                        return t.text.clone();
                    }
                    if t.kind != TokKind::Comment && !t.is_ident("mut") {
                        break;
                    }
                    j += 1;
                }
                String::new()
            }
            _ => self
                .sig_after(start)
                .map(|t| t.text.clone())
                .unwrap_or_default(),
        }
    }

    /// First significant token after `start`.
    fn sig_after(&self, start: usize) -> Option<&Tok> {
        self.toks[start + 1..]
            .iter()
            .find(|t| t.kind != TokKind::Comment)
    }

    /// Given `open` at an opening bracket, return the index just past its
    /// matching close (clamped to `limit`).
    fn matching(&self, open: usize, limit: usize, ob: &str, cb: &str) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < limit {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                if t.text == ob {
                    depth += 1;
                } else if t.text == cb {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        limit
    }

    /// Skip a non-item statement: to `;` at depth 0, or past one balanced
    /// brace block (macro invocations like `macro_rules!` / `thread_local!`).
    fn skip_stmt(&self, start: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        let mut j = start;
        while j < limit {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => return self.matching(j, limit, "{", "}"),
                    ";" if depth == 0 => return j + 1,
                    _ => {}
                }
            }
            j += 1;
        }
        limit
    }

    /// Parse an attribute starting at the `#`; returns its inner token
    /// slice and the index after the closing `]`.
    fn attr(&self, hash: usize, limit: usize) -> (&[Tok], usize) {
        let mut j = hash + 1;
        // Inner attribute `#![...]`.
        if self.toks.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| t.is_punct("[")) {
            return (&[], hash + 1);
        }
        let close = self.matching(j, limit, "[", "]");
        (&self.toks[j + 1..close.saturating_sub(1)], close)
    }
}

/// True when an attribute body marks test-only code: `test`, `cfg(test)`,
/// or any `cfg(...)` whose argument list mentions `test`.
fn attr_is_test(inner: &[Tok]) -> bool {
    let sig: Vec<&Tok> = inner
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();
    match sig.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => sig.iter().skip(1).any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Collect identifiers that this file declares with a `HashMap`/`HashSet`
/// type: `name: [path::]HashMap<..>` annotations (fields, params, lets)
/// and `let name = HashMap::new()`-style constructions. Purely local, by
/// design: cross-file type resolution is out of scope for the offline
/// parser and the rule documents that limitation.
fn collect_hash_locals(toks: &[Tok]) -> Vec<String> {
    let sig: Vec<&Tok> = toks.iter().filter(|t| t.kind != TokKind::Comment).collect();
    let mut names = Vec::new();
    let is_hash = |t: &Tok| t.is_ident("HashMap") || t.is_ident("HashSet");
    for w in 0..sig.len() {
        // `name : [idents and colons only] HashMap` — a `<` before the
        // HashMap means it is nested inside another generic (`Vec<HashMap>`),
        // where iterating `name` itself is fine.
        if sig[w].kind == TokKind::Ident && w + 2 < sig.len() && sig[w + 1].is_punct(":") {
            let mut k = w + 2;
            let mut steps = 0;
            while k < sig.len() && steps < 8 {
                if is_hash(sig[k]) {
                    names.push(sig[w].text.clone());
                    break;
                }
                let path_tok = sig[k].kind == TokKind::Ident
                    || sig[k].kind == TokKind::Lifetime
                    || sig[k].is_punct(":")
                    || sig[k].is_punct("&");
                if !path_tok {
                    break;
                }
                k += 1;
                steps += 1;
            }
        }
        // `let [mut] name = ... HashMap :: ctor ... ;`
        if sig[w].is_ident("let") {
            let mut k = w + 1;
            if sig.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name_tok) = sig.get(k) else { continue };
            if name_tok.kind != TokKind::Ident || !sig.get(k + 1).is_some_and(|t| t.is_punct("=")) {
                continue;
            }
            let mut j = k + 2;
            let mut steps = 0;
            while j + 1 < sig.len() && steps < 24 && !sig[j].is_punct(";") {
                if is_hash(sig[j]) && sig[j + 1].is_punct(":") {
                    names.push(name_tok.text.clone());
                    break;
                }
                j += 1;
                steps += 1;
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn nested_items_and_test_scoping() {
        let f = parse(
            "pub fn top() {}\n\
             pub struct S { x: u32 }\n\
             impl S {\n    pub fn method(&self) {}\n}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn check() {}\n}\n",
        );
        assert_eq!(f.items.len(), 4);
        assert_eq!(f.items[0].kind, ItemKind::Fn);
        assert_eq!(f.items[0].name, "top");
        assert!(!f.items[0].is_test);
        assert_eq!(f.items[2].kind, ItemKind::Impl);
        assert_eq!(f.items[2].name, "S");
        assert_eq!(f.items[2].children.len(), 1);
        assert_eq!(f.items[2].children[0].name, "method");
        let tests = &f.items[3];
        assert!(tests.is_test);
        assert!(tests.children.iter().all(|c| c.is_test));
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let f = parse("impl<T: Clone> Strategy for Bulk<T> { fn go(&self) {} }\n");
        assert_eq!(f.items[0].name, "Bulk");
    }

    #[test]
    fn directives_attach_to_items_and_files() {
        let f = parse(
            "// madlint: file: hot-path\n\
             // madlint: deterministic-output\npub fn export() {}\n\
             pub fn other() {}\n",
        );
        assert_eq!(f.file_directives, vec![Directive::HotPath]);
        assert_eq!(f.items[0].directives, vec![Directive::DeterministicOutput]);
        assert!(f.items[1].directives.is_empty());
    }

    #[test]
    fn trailing_allow_is_line_scoped() {
        let f = parse("fn f() {\n    let x = 1; // madlint: allow(panic-path) — fixture\n}\n");
        assert_eq!(
            f.line_allows.get(&2).map(Vec::as_slice),
            Some(&["panic-path".to_string()][..])
        );
    }

    #[test]
    fn unknown_directives_are_errors() {
        let f = parse("// madlint: hotpath\nfn f() {}\n");
        assert_eq!(f.errors.len(), 1, "{:?}", f.errors);
        let f = parse("// madlint: allow(no-such-rule)\nfn f() {}\n");
        assert_eq!(f.errors.len(), 1, "{:?}", f.errors);
    }

    #[test]
    fn hash_locals_found_by_annotation_and_ctor() {
        let f = parse(
            "struct S { table: HashMap<u32, u32>, list: Vec<HashMap<u32, u32>> }\n\
             fn f(seen: &mut HashSet<u64>) {\n    let by_id = HashMap::new();\n}\n",
        );
        assert_eq!(f.hash_locals, vec!["by_id", "seen", "table"]);
    }

    #[test]
    fn entrypoints_detected() {
        assert!(SourceFile::parse("crates/x/src/main.rs", "fn main() {}").is_entrypoint);
        assert!(SourceFile::parse("crates/x/src/bin/t.rs", "fn main() {}").is_entrypoint);
        assert!(!SourceFile::parse("crates/x/src/lib.rs", "").is_entrypoint);
    }
}
