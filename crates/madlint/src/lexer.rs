//! A minimal Rust lexer with source spans.
//!
//! This is the foundation of madlint's offline stand-in for `syn`: it
//! tokenizes Rust source into identifiers, punctuation, literals,
//! lifetimes and comments, each carrying a 1-based line/column span.
//! Comments are kept as first-class tokens because madlint's scoping
//! directives (`// madlint: ...`) live in them. String and character
//! literals are opaque single tokens, which is what makes the rule
//! matchers immune to the classic substring-lint failure mode: a banned
//! name inside a string or comment never produces an identifier token.
//!
//! The lexer is deliberately permissive — it never fails. Input that is
//! not valid Rust still tokenizes into *something*, and the item parser
//! degrades gracefully; the analyzer must not crash on the code it is
//! trying to criticize.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String / char / byte / numeric literal, kept opaque.
    Literal,
    /// Lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Line or block comment, full text retained.
    Comment,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
    /// For comments: true when nothing but whitespace precedes the
    /// comment on its line (an "own line" comment, eligible to carry an
    /// item-scoped directive). Always false for non-comments.
    pub own_line: bool,
}

impl Tok {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
    /// Whether a non-comment token has been produced on the current line.
    line_has_code: bool,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
            line_has_code: false,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32, own_line: bool) {
        if kind != TokKind::Comment {
            self.line_has_code = true;
        }
        self.out.push(Tok {
            kind,
            text,
            line,
            col,
            own_line,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (line, col) = (self.line, self.col);
            let own_line = !self.line_has_code;
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col, own_line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col, own_line),
                '"' => self.string_literal(line, col),
                'r' if self.raw_string_ahead(0) => self.raw_string(line, col),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line, col);
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string(line, col);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#name.
                    self.bump();
                    self.bump();
                    self.ident(line, col, "r#");
                }
                '\'' => self.quote(line, col),
                c if is_ident_start(c) => self.ident(line, col, ""),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col, false);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32, own_line: bool) {
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text = self.slice(start, self.i);
        self.push(TokKind::Comment, text, line, col, own_line);
    }

    fn block_comment(&mut self, line: u32, col: u32, own_line: bool) {
        let start = self.i;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = self.slice(start, self.i);
        self.push(TokKind::Comment, text, line, col, own_line);
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        let start = self.i;
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
                continue;
            }
            self.bump();
            if c == '"' {
                break;
            }
        }
        let text = self.slice(start, self.i);
        self.push(TokKind::Literal, text, line, col, false);
    }

    /// True when an `r` (plus `offset`) begins a raw string: `r"` or `r#...#"`.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut j = 1 + offset;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        j > 1 + offset && self.peek(j) == Some('"') || self.peek(1 + offset) == Some('"')
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        let start = self.i;
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.peek(0) {
            self.bump();
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = self.slice(start, self.i);
        self.push(TokKind::Literal, text, line, col, false);
    }

    fn char_literal(&mut self, line: u32, col: u32) {
        let start = self.i;
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
                continue;
            }
            self.bump();
            if c == '\'' {
                break;
            }
        }
        let text = self.slice(start, self.i);
        self.push(TokKind::Literal, text, line, col, false);
    }

    /// Disambiguate `'a` (lifetime) from `'x'` (char literal).
    fn quote(&mut self, line: u32, col: u32) {
        if self.peek(1) == Some('\\') {
            self.char_literal(line, col);
            return;
        }
        if self.peek(1).is_some_and(is_ident_start) {
            // Scan the ident run; a closing quote right after means char.
            let mut j = 2;
            while self.peek(j).is_some_and(is_ident_continue) {
                j += 1;
            }
            if self.peek(j) == Some('\'') {
                self.char_literal(line, col);
            } else {
                let start = self.i;
                self.bump(); // quote
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text = self.slice(start, self.i);
                self.push(TokKind::Lifetime, text, line, col, false);
            }
            return;
        }
        // `'('`-style char literal (or stray quote at EOF).
        self.char_literal(line, col);
    }

    fn ident(&mut self, line: u32, col: u32, prefix: &str) {
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = format!("{prefix}{}", self.slice(start, self.i));
        self.push(TokKind::Ident, text, line, col, false);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.i;
        self.bump();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let is_exp = matches!(c, 'e' | 'E');
                self.bump();
                // Exponent sign directly after e/E.
                if is_exp {
                    if let Some('+' | '-') = self.peek(0) {
                        // Only when the token started with a digit and the
                        // char after the sign is a digit (so `1e-3` lexes
                        // whole while `x-3` does not arise here).
                        if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                            self.bump();
                        }
                    }
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fractional part; leaves `0..n` as digit + two puncts.
                self.bump();
            } else {
                break;
            }
        }
        let text = self.slice(start, self.i);
        self.push(TokKind::Literal, text, line, col, false);
    }

    fn slice(&self, start: usize, end: usize) -> String {
        // `chars` indexes are character counts; rebuild from the chars to
        // stay correct for multi-byte input.
        if self.src.is_ascii() {
            self.src[start..end].to_string()
        } else {
            self.chars[start..end].iter().collect()
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails; unrecognized bytes become punct tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_spans() {
        let toks = lex("fn foo(x: u32) {}\n    bar();");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("foo"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        let bar = toks.iter().find(|t| t.is_ident("bar")).expect("bar lexed");
        assert_eq!((bar.line, bar.col), (2, 5));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let s = "Instant::now inside a string";"#);
        assert!(
            !toks
                .iter()
                .any(|(k, t)| *k == TokKind::Ident && t == "Instant"),
            "identifier leaked out of a string literal: {toks:?}"
        );
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let toks = kinds("r#\"thread_rng \" inside\"# /* outer /* inner */ thread_rng */ x");
        let idents: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Ident).collect();
        assert_eq!(idents.len(), 1);
        assert_eq!(idents[0].1, "x");
    }

    #[test]
    fn comments_track_own_line() {
        let toks = lex("let a = 1; // trailing\n// own line\nlet b = 2;");
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].own_line);
        assert!(comments[1].own_line);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "'z'"));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 0..10 { let f = 1.5e-3; }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Literal && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "1.5e-3"));
    }
}
