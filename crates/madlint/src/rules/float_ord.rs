//! float-ord: raw float ordering in scoring code.
//!
//! Plan selection must impose a *total* order on scores or NaN (and
//! platform-dependent comparison of near-ties after FMA contraction)
//! silently changes which plan wins. Scopes marked
//! `// madlint: scoring` may only order floats through `f64::total_cmp`
//! or after the fixed-point `encode_score` guard; `partial_cmp` and raw
//! `.score` comparisons are flagged.

use crate::diag::{Diagnostic, RuleId};
use crate::parse::SourceFile;
use crate::rules::{emit, ScopeFlags, Sig};

/// Scan one scoring scope.
pub fn check(f: &SourceFile, ctx: &ScopeFlags, sig: &Sig<'_>, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::FloatOrd;
    for i in 0..sig.toks.len() {
        let at = sig.toks[i];
        if at.is_ident("partial_cmp") {
            emit(
                out,
                f,
                ctx,
                rule,
                at,
                "`partial_cmp` on floats is not a total order (NaN compares as equal)".to_string(),
                "use `f64::total_cmp`, or compare through the fixed-point \
                 `encode_score` encoding",
            );
        }
        // `<lhs>.score <op> <rhs>.score` with a raw comparison operator.
        if at.is_punct(".") && sig.get(i + 1).is_some_and(|t| t.is_ident("score")) {
            for j in i + 2..(i + 8).min(sig.toks.len()) {
                let t = sig.toks[j];
                if t.is_ident("total_cmp") || t.is_ident("encode_score") {
                    break; // guarded comparison
                }
                if t.is_punct("<") || t.is_punct(">") {
                    let rhs_scored =
                        (j + 1..(j + 8).min(sig.toks.len().saturating_sub(1))).any(|k| {
                            sig.toks[k].is_punct(".")
                                && sig.get(k + 1).is_some_and(|t| t.is_ident("score"))
                        });
                    if rhs_scored {
                        emit(
                            out,
                            f,
                            ctx,
                            rule,
                            t,
                            "raw float comparison of plan scores".to_string(),
                            "order scores with `f64::total_cmp` (see `ScoredPlan::beats`) \
                             or the fixed-point `encode_score` encoding",
                        );
                    }
                    break;
                }
            }
        }
    }
}
