//! trace-coverage: lifecycle mutations must be visible to madtrace.
//!
//! In scopes marked `// madlint: trace-covered` (the engine core), any
//! function that calls a flow-lifecycle mutator — submit, shed, rendezvous
//! grant, chunk commit/complete, receiver delivery — must also emit at
//! least one `EngineEvent`, or the flight recorder and the Chrome export
//! go blind for that transition. Functions whose events are pushed by a
//! callee can declare it with `// madlint: emits-trace`.
//!
//! Marker reference (all written as `// madlint:` comments):
//!
//! * `trace-covered` — scope marker; every mutator-calling function in
//!   the scope is held to the rule below.
//! * `emits-trace` — function marker: its events are pushed by a callee,
//!   so the local scan would be a false positive.
//! * `allow(trace-coverage)` — suppression of last resort; the comment
//!   must say where the transition *is* recorded.
//! * `file: deterministic-output` — not a coverage marker, but the
//!   companion contract consumers of the ring rely on: the file's
//!   exports are byte-stable for a given event stream (`trace.rs`,
//!   `prof.rs`).
//!
//! Since madprof, coverage is load-bearing beyond debugging: the
//! profiler's phase attribution telescopes over exactly these events
//! (`Admitted`, `RndvGranted`, `ChunkBound`, `Retransmit`, `Delivered`),
//! so a silent mutator doesn't just blind the flight recorder — it moves
//! nanoseconds into the wrong phase of every attribution downstream.

use crate::diag::{Diagnostic, RuleId};
use crate::parse::{Item, SourceFile};
use crate::rules::{emit, ScopeFlags, Sig};

/// Calls that change flow-lifecycle state.
const MUTATORS: &[&str] = &[
    "submit",
    "shed_oldest",
    "grant_rndv",
    "mark_rndv_requested",
    "commit_chunk",
    "complete_chunk",
    "on_chunk",
    "on_cancel",
];

/// Calls (or constructions) that put an event on the ring.
const EMITTER_METHODS: &[&str] = &["trace_admitted", "note_deliveries", "kill_rail"];

/// Scan one function in a trace-covered scope.
pub fn check(
    f: &SourceFile,
    ctx: &ScopeFlags,
    item: &Item,
    sig: &Sig<'_>,
    out: &mut Vec<Diagnostic>,
) {
    let mut first_mutator: Option<(usize, &str)> = None;
    let mut emits = false;
    for i in 0..sig.toks.len() {
        let at = sig.toks[i];
        if at.is_ident("EngineEvent") {
            emits = true;
            break;
        }
        if at.is_ident("trace")
            && sig.get(i + 1).is_some_and(|t| t.is_punct("."))
            && sig.get(i + 2).is_some_and(|t| t.is_ident("push"))
        {
            emits = true;
            break;
        }
        if EMITTER_METHODS.iter().any(|m| sig.method(i, m)) {
            emits = true;
            break;
        }
        if first_mutator.is_none() {
            if let Some(m) = MUTATORS.iter().find(|m| sig.method(i, m)) {
                first_mutator = Some((i + 1, m));
            }
        }
    }
    if emits {
        return;
    }
    if let Some((i, m)) = first_mutator {
        emit(
            out,
            f,
            ctx,
            RuleId::TraceCoverage,
            sig.toks[i],
            format!(
                "`{}` mutates flow lifecycle state but `{}` emits no EngineEvent",
                m, item.name
            ),
            "push a madtrace event for the transition, or mark the function \
             `// madlint: emits-trace` / `allow(trace-coverage)` with the \
             reason it is covered elsewhere",
        );
    }
}
