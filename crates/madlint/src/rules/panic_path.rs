//! panic-path: anonymous panics in engine hot paths.
//!
//! Applies to scopes marked `// madlint: hot-path` (the attribute-driven
//! successor of the old hard-coded file allowlist). `.unwrap()` and the
//! `unreachable!`/`todo!`/`unimplemented!` macros are flagged:
//! a poisoned scheduler must surface a typed error or at least an
//! invariant message. `.expect("...")`, `assert!` and documented
//! `panic!`s remain the sanctioned forms — they name the invariant they
//! protect.

use crate::diag::{Diagnostic, RuleId};
use crate::parse::SourceFile;
use crate::rules::{emit, ScopeFlags, Sig};

const PANIC_MACROS: &[&str] = &["unreachable", "todo", "unimplemented"];

/// Scan one hot-path scope.
pub fn check(f: &SourceFile, ctx: &ScopeFlags, sig: &Sig<'_>, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::PanicPath;
    for i in 0..sig.toks.len() {
        let at = sig.toks[i];
        if sig.method(i, "unwrap") {
            emit(
                out,
                f,
                ctx,
                // Point at the method name, not the dot.
                rule,
                sig.toks[i + 1],
                "`.unwrap()` in a hot path panics without naming its invariant".to_string(),
                "use `.expect(\"<invariant>\")` or propagate a typed error; \
                 `// madlint: allow(panic-path) — <why>` for documented contracts",
            );
        }
        if at.kind == crate::lexer::TokKind::Ident
            && PANIC_MACROS.iter().any(|m| at.text == *m)
            && sig.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            emit(
                out,
                f,
                ctx,
                rule,
                at,
                format!("`{}!` in a hot path", at.text),
                "handle the case or panic with a message naming the violated invariant",
            );
        }
    }
}
