//! nondet-source: host clock, unseeded RNG and environment access.
//!
//! The scope-aware replacement for the old substring bans: a run is only
//! reproducible if every timestamp comes from the simulated clock and
//! every random draw from the seeded generator. Always on in non-test
//! code; `std::env` argument access is additionally tolerated in binary
//! entry points (`main.rs`, `src/bin/**`), where CLI parsing is the whole
//! point.

use crate::diag::{Diagnostic, RuleId};
use crate::parse::SourceFile;
use crate::rules::{emit, ScopeFlags, Sig};

const ENV_READS: &[&str] = &["var", "vars", "var_os", "vars_os", "args", "args_os"];

/// Scan one scope.
pub fn check(f: &SourceFile, ctx: &ScopeFlags, sig: &Sig<'_>, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::NondetSource;
    for i in 0..sig.toks.len() {
        let at = sig.toks[i];
        if sig.path2(i, "Instant", "now") || sig.path2(i, "SystemTime", "now") {
            emit(
                out,
                f,
                ctx,
                rule,
                at,
                format!("host wall-clock read (`{}::now`)", at.text),
                "use the simulated clock: `simnet::SimTime` carried by the engine context",
            );
        } else if at.is_ident("thread_rng") || at.is_ident("from_entropy") {
            emit(
                out,
                f,
                ctx,
                rule,
                at,
                format!("unseeded OS randomness (`{}`)", at.text),
                "use `simnet::SplitMix64` derived from the run seed",
            );
        } else if sig.path2(i, "rand", "random") {
            emit(
                out,
                f,
                ctx,
                rule,
                at,
                "unseeded OS randomness (`rand::random`)".to_string(),
                "use `simnet::SplitMix64` derived from the run seed",
            );
        }
        if !f.is_entrypoint
            && at.is_ident("env")
            && sig.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && sig.get(i + 2).is_some_and(|t| t.is_punct(":"))
        {
            if let Some(call) = sig.get(i + 3) {
                if ENV_READS.iter().any(|m| call.is_ident(m)) {
                    emit(
                        out,
                        f,
                        ctx,
                        rule,
                        at,
                        format!("process environment read (`env::{}`)", call.text),
                        "thread configuration through `EngineConfig`; \
                         environment access belongs in binary entry points only",
                    );
                }
            }
        }
    }
}
