//! The pluggable ruleset and the scope walker that drives it.
//!
//! [`check_file`] walks the item tree of one [`SourceFile`], maintaining
//! the effective scope flags (inherited file → module → item directives),
//! skipping test-only code entirely, and dispatching each rule over the
//! scopes it applies to:
//!
//! | rule           | trigger scope                         |
//! |----------------|---------------------------------------|
//! | nondet-source  | always on (all non-test code)         |
//! | shared-state   | always on + `send-sync` type audits   |
//! | panic-path     | `hot-path` scopes                     |
//! | nondet-iter    | `deterministic-output` scopes         |
//! | float-ord      | `scoring` scopes                      |
//! | trace-coverage | `trace-covered` scopes                |
//!
//! Adding a rule: add a `RuleId` variant, a module here implementing a
//! `check(...)` over a [`Sig`] token view, dispatch it from [`walk`], and
//! drop a bad fixture under `fixtures/` so the corpus test proves it
//! fires. Rules match token sequences, never raw text, so banned names
//! inside strings, comments or unrelated identifiers cannot trip them.

pub mod float_ord;
pub mod nondet_iter;
pub mod nondet_source;
pub mod panic_path;
pub mod shared_state;
pub mod trace_coverage;

use std::collections::BTreeSet;
use std::ops::Range;

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Tok, TokKind};
use crate::parse::{Directive, Item, ItemKind, SourceFile};

/// Effective scope context at one point of the item tree.
#[derive(Clone, Debug, Default)]
pub struct ScopeFlags {
    /// panic-path applies.
    pub hot_path: bool,
    /// nondet-iter applies.
    pub det_output: bool,
    /// float-ord applies.
    pub scoring: bool,
    /// shared-state audits type fields.
    pub send_sync: bool,
    /// trace-coverage applies.
    pub trace_covered: bool,
    /// Scope declares indirect trace emission.
    pub emits_trace: bool,
    /// File documents its lock acquisition order.
    pub lock_order: bool,
    /// Rules suppressed in this scope.
    pub allows: BTreeSet<String>,
}

impl ScopeFlags {
    /// Fold `directives` into a copy of `self`.
    pub fn with(&self, directives: &[Directive]) -> ScopeFlags {
        let mut f = self.clone();
        for d in directives {
            match d {
                Directive::Allow(rules) => f.allows.extend(rules.iter().cloned()),
                Directive::HotPath => f.hot_path = true,
                Directive::DeterministicOutput => f.det_output = true,
                Directive::Scoring => f.scoring = true,
                Directive::SendSync => f.send_sync = true,
                Directive::TraceCovered => f.trace_covered = true,
                Directive::EmitsTrace => f.emits_trace = true,
                Directive::LockOrder(_) => f.lock_order = true,
            }
        }
        f
    }

    /// True when `rule` is suppressed here.
    pub fn allowed(&self, rule: RuleId) -> bool {
        self.allows.contains(rule.name())
    }
}

/// A comment-free view over a token range, the unit rules match on.
pub struct Sig<'a> {
    /// Significant tokens in source order.
    pub toks: Vec<&'a Tok>,
}

impl<'a> Sig<'a> {
    /// Build the view for `range` of `f`'s token stream.
    pub fn of(f: &'a SourceFile, range: Range<usize>) -> Sig<'a> {
        Sig {
            toks: f.toks[range.start.min(f.toks.len())..range.end.min(f.toks.len())]
                .iter()
                .filter(|t| t.kind != TokKind::Comment)
                .collect(),
        }
    }

    /// Token at `i`, if any.
    pub fn get(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i).copied()
    }

    /// True when the tokens at `i..` spell the path `a::b`.
    pub fn path2(&self, i: usize, a: &str, b: &str) -> bool {
        self.get(i).is_some_and(|t| t.is_ident(a))
            && self.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && self.get(i + 2).is_some_and(|t| t.is_punct(":"))
            && self.get(i + 3).is_some_and(|t| t.is_ident(b))
    }

    /// True when the tokens at `i..` spell a method call `.name(`.
    pub fn method(&self, i: usize, name: &str) -> bool {
        self.get(i).is_some_and(|t| t.is_punct("."))
            && self.get(i + 1).is_some_and(|t| t.is_ident(name))
            && self.get(i + 2).is_some_and(|t| t.is_punct("("))
    }
}

/// Push a diagnostic unless the scope suppresses the rule. (Line-level
/// allows are filtered afterwards in [`check_file`].)
pub fn emit(
    out: &mut Vec<Diagnostic>,
    f: &SourceFile,
    ctx: &ScopeFlags,
    rule: RuleId,
    at: &Tok,
    message: String,
    hint: &str,
) {
    if ctx.allowed(rule) {
        return;
    }
    out.push(Diagnostic {
        rule,
        file: f.path.clone(),
        line: at.line,
        col: at.col,
        snippet: f.snippet(at.line),
        message,
        hint: hint.to_string(),
    });
}

/// Run every applicable rule over `f`; returns unsorted diagnostics.
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let base = ScopeFlags::default().with(&f.file_directives);

    // File-wide concurrency scan, skipping test item spans.
    let mut test_spans: Vec<Range<usize>> = Vec::new();
    collect_test_spans(&f.items, &mut test_spans);
    shared_state::check_file(f, &base, &test_spans, &mut out);

    for item in &f.items {
        walk(f, item, &base, &mut out);
    }

    out.retain(|d| {
        f.line_allows
            .get(&d.line)
            .is_none_or(|rules| !rules.iter().any(|r| r == d.rule.name()))
    });
    out
}

fn collect_test_spans(items: &[Item], out: &mut Vec<Range<usize>>) {
    for it in items {
        if it.is_test {
            out.push(it.span.clone());
        } else {
            collect_test_spans(&it.children, out);
        }
    }
}

fn walk(f: &SourceFile, item: &Item, parent: &ScopeFlags, out: &mut Vec<Diagnostic>) {
    if item.is_test {
        return;
    }
    let ctx = parent.with(&item.directives);
    match item.kind {
        ItemKind::Fn | ItemKind::Static => {
            let range = item.body.clone().unwrap_or_else(|| item.span.clone());
            let sig = Sig::of(f, range);
            nondet_source::check(f, &ctx, &sig, out);
            if ctx.hot_path {
                panic_path::check(f, &ctx, &sig, out);
            }
            if ctx.det_output {
                nondet_iter::check(f, &ctx, &sig, out);
            }
            if ctx.scoring {
                float_ord::check(f, &ctx, &sig, out);
            }
            if item.kind == ItemKind::Fn && ctx.trace_covered && !ctx.emits_trace {
                trace_coverage::check(f, &ctx, item, &sig, out);
            }
        }
        ItemKind::Type => {
            if ctx.send_sync {
                shared_state::check_type(f, &ctx, item, out);
            }
        }
        ItemKind::Mod | ItemKind::Impl | ItemKind::Trait => {
            for child in &item.children {
                walk(f, child, &ctx, out);
            }
        }
        ItemKind::Other => {}
    }
}
