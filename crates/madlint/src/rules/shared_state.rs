//! shared-state: the concurrency-readiness audit for madpar sharding.
//!
//! Three checks:
//!
//! * `static mut` anywhere in non-test code — unsynchronized process
//!   globals cannot shard.
//! * `Mutex`/`RwLock` mentions in a file with no documented lock order
//!   (`// madlint: file: lock-order: <A before B>`) — undocumented lock
//!   hierarchies are how sharded deadlocks are born.
//! * `Rc`/`RefCell`/`Cell`/`UnsafeCell` fields inside types marked
//!   `// madlint: send-sync` — those types must become `Send`/`Sync`
//!   before madpar can move them across shard threads.

use std::ops::Range;

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokKind;
use crate::parse::{Item, SourceFile};
use crate::rules::{emit, ScopeFlags, Sig};

const UNSHARDABLE: &[&str] = &["Rc", "RefCell", "Cell", "UnsafeCell"];

/// File-wide scan (statics and locks), skipping test spans.
pub fn check_file(
    f: &SourceFile,
    ctx: &ScopeFlags,
    test_spans: &[Range<usize>],
    out: &mut Vec<Diagnostic>,
) {
    let rule = RuleId::SharedState;
    let in_test = |idx: usize| test_spans.iter().any(|r| r.contains(&idx));
    for (idx, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(idx) {
            continue;
        }
        let next_sig = f.toks[idx + 1..]
            .iter()
            .find(|t| t.kind != TokKind::Comment);
        if t.text == "static" && next_sig.is_some_and(|n| n.is_ident("mut")) {
            emit(
                out,
                f,
                ctx,
                rule,
                t,
                "`static mut` is unsynchronized shared state".to_string(),
                "pass the state through the engine explicitly, or use an \
                 atomic/synchronized cell; madpar shards cannot share this",
            );
        }
        if !ctx.lock_order
            && (t.text == "Mutex" || t.text == "RwLock")
            && next_sig.is_some_and(|n| n.is_punct("<"))
        {
            emit(
                out,
                f,
                ctx,
                rule,
                t,
                format!("`{}` without a documented acquisition order", t.text),
                "add `// madlint: file: lock-order: <which lock before which>` \
                 once the ordering is designed and documented",
            );
        }
    }
}

/// Audit one type marked `send-sync`.
pub fn check_type(f: &SourceFile, ctx: &ScopeFlags, item: &Item, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::SharedState;
    let sig = Sig::of(f, item.span.clone());
    for i in 0..sig.toks.len() {
        let at = sig.toks[i];
        if at.kind == TokKind::Ident
            && UNSHARDABLE.iter().any(|u| at.text == *u)
            && sig.get(i + 1).is_some_and(|t| t.is_punct("<"))
        {
            emit(
                out,
                f,
                ctx,
                rule,
                at,
                format!(
                    "`{}` field in `{}`, which is marked send-sync for madpar",
                    at.text, item.name
                ),
                "replace with an owned/atomic/synchronized equivalent; this type \
                 must become Send + Sync before the simulation can shard",
            );
        }
    }
}
