//! nondet-iter: hash-order iteration feeding deterministic output.
//!
//! `HashMap`/`HashSet` iteration order varies run to run (and will vary
//! *thread to thread* under madpar), so any scope marked
//! `// madlint: deterministic-output` — trace exporters, metrics
//! registries, debug reports, plan-scoring feeders — must not iterate a
//! hashed container. Lookups are fine; only enumeration leaks order.
//!
//! Resolution is file-local by design: the offline parser records every
//! identifier declared with a `HashMap`/`HashSet` type in the same file
//! ([`SourceFile::hash_locals`]) and flags iteration through those names.
//! A hashed container smuggled in from another file is not caught — the
//! sweep's answer is to not declare hashed containers in deterministic
//! paths at all (use `BTreeMap`/`BTreeSet` or collect-and-sort).

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokKind;
use crate::parse::SourceFile;
use crate::rules::{emit, ScopeFlags, Sig};

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Scan one deterministic-output scope.
pub fn check(f: &SourceFile, ctx: &ScopeFlags, sig: &Sig<'_>, out: &mut Vec<Diagnostic>) {
    let rule = RuleId::NondetIter;
    let is_hash_local = |name: &str| f.hash_locals.iter().any(|h| h == name);
    for i in 0..sig.toks.len() {
        let at = sig.toks[i];
        // `name.iter()` / `name.keys()` / ... on a known hashed local.
        if at.kind == TokKind::Ident
            && is_hash_local(&at.text)
            && sig.get(i + 1).is_some_and(|t| t.is_punct("."))
        {
            if let Some(m) = sig.get(i + 2) {
                if ITER_METHODS.iter().any(|im| m.is_ident(im))
                    && sig.get(i + 3).is_some_and(|t| t.is_punct("("))
                {
                    emit(
                        out,
                        f,
                        ctx,
                        rule,
                        at,
                        format!(
                            "hash-order iteration: `{}.{}()` on a HashMap/HashSet \
                             in a deterministic-output scope",
                            at.text, m.text
                        ),
                        "switch the container to BTreeMap/BTreeSet, or collect \
                         and sort before iterating",
                    );
                }
            }
        }
        // `for pat in [&][mut] [self.]name {` over a known hashed local.
        if at.is_ident("in") {
            let mut j = i + 1;
            while sig
                .get(j)
                .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
            {
                j += 1;
            }
            if sig.get(j).is_some_and(|t| t.is_ident("self"))
                && sig.get(j + 1).is_some_and(|t| t.is_punct("."))
            {
                j += 2;
            }
            let Some(name) = sig.get(j) else { continue };
            if name.kind == TokKind::Ident
                && is_hash_local(&name.text)
                && sig.get(j + 1).is_some_and(|t| t.is_punct("{"))
            {
                emit(
                    out,
                    f,
                    ctx,
                    rule,
                    name,
                    format!(
                        "hash-order iteration: `for .. in {}` over a HashMap/HashSet \
                         in a deterministic-output scope",
                        name.text
                    ),
                    "switch the container to BTreeMap/BTreeSet, or collect \
                     and sort before iterating",
                );
            }
        }
    }
}
