//! Diagnostics, failure classes, report rendering and exit codes.
//!
//! Every diagnostic is span-accurate (`file:line:col`), machine-readable
//! (stable rule id + failure class), and carries the offending snippet
//! plus a fix hint. Reports render as human text or as deterministic JSON
//! (`--json`), and map to a stable exit-code scheme so CI can route
//! failures by class:
//!
//! | exit | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | clean                                     |
//! | 1    | violations across multiple failure classes |
//! | 2    | determinism (nondet-iter/-source, float-ord) |
//! | 3    | panic hygiene (panic-path)                |
//! | 4    | concurrency readiness (shared-state)      |
//! | 5    | trace coverage (trace-coverage)           |
//! | 64   | analyzer error (I/O, malformed directive) |

use std::fmt::Write as _;

/// Stable identifier of one lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// HashMap/HashSet iteration in deterministic-output scopes.
    NondetIter,
    /// Host clock / unseeded RNG / environment access.
    NondetSource,
    /// Anonymous panics in engine hot paths.
    PanicPath,
    /// Raw float ordering in scoring code.
    FloatOrd,
    /// Shared mutable state that blocks `Send`/`Sync` for madpar.
    SharedState,
    /// Flow-lifecycle mutation without an `EngineEvent` emission.
    TraceCoverage,
}

impl RuleId {
    /// Every shipped rule, in report order.
    pub const ALL: [RuleId; 6] = [
        RuleId::NondetIter,
        RuleId::NondetSource,
        RuleId::PanicPath,
        RuleId::FloatOrd,
        RuleId::SharedState,
        RuleId::TraceCoverage,
    ];

    /// Kebab-case rule id used in diagnostics and `allow(...)` directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NondetIter => "nondet-iter",
            RuleId::NondetSource => "nondet-source",
            RuleId::PanicPath => "panic-path",
            RuleId::FloatOrd => "float-ord",
            RuleId::SharedState => "shared-state",
            RuleId::TraceCoverage => "trace-coverage",
        }
    }

    /// The failure class this rule belongs to.
    pub fn class(self) -> FailureClass {
        match self {
            RuleId::NondetIter | RuleId::NondetSource | RuleId::FloatOrd => {
                FailureClass::Determinism
            }
            RuleId::PanicPath => FailureClass::PanicHygiene,
            RuleId::SharedState => FailureClass::Concurrency,
            RuleId::TraceCoverage => FailureClass::Coverage,
        }
    }
}

/// CI-facing grouping of rules; each class owns a stable exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// Output would depend on hash order, the host, or NaN semantics.
    Determinism,
    /// A hot path can die with an anonymous panic.
    PanicHygiene,
    /// State that cannot shard across madpar threads.
    Concurrency,
    /// A lifecycle transition is invisible to madtrace.
    Coverage,
}

impl FailureClass {
    /// Stable class label for JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::Determinism => "determinism",
            FailureClass::PanicHygiene => "panic-hygiene",
            FailureClass::Concurrency => "concurrency",
            FailureClass::Coverage => "coverage",
        }
    }

    /// Stable per-class process exit code.
    pub fn exit_code(self) -> u8 {
        match self {
            FailureClass::Determinism => 2,
            FailureClass::PanicHygiene => 3,
            FailureClass::Concurrency => 4,
            FailureClass::Coverage => 5,
        }
    }
}

/// Exit code when violations span more than one failure class.
pub const EXIT_MIXED: u8 = 1;
/// Exit code for analyzer-internal errors (I/O, malformed directives).
pub const EXIT_ERROR: u8 = 64;

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Trimmed source line the finding points at.
    pub snippet: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to allow it when intentional).
    pub hint: String,
}

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Analyzer errors: unreadable files, malformed directives.
    pub errors: Vec<String>,
}

impl LintReport {
    /// Sort diagnostics into the canonical deterministic order.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
    }

    /// True when there are no findings and no analyzer errors.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.errors.is_empty()
    }

    /// Findings for one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.diagnostics.iter().filter(|d| d.rule == rule).count()
    }

    /// The stable exit code for this report (see module docs).
    pub fn exit_code(&self) -> u8 {
        if !self.errors.is_empty() {
            return EXIT_ERROR;
        }
        let mut classes: Vec<FailureClass> =
            self.diagnostics.iter().map(|d| d.rule.class()).collect();
        classes.sort();
        classes.dedup();
        match classes.as_slice() {
            [] => 0,
            [one] => one.exit_code(),
            _ => EXIT_MIXED,
        }
    }

    /// Human-readable rendering, one block per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}\n    {}\n    hint: {}",
                d.file,
                d.line,
                d.col,
                d.rule.name(),
                d.message,
                d.snippet,
                d.hint
            );
        }
        for e in &self.errors {
            let _ = writeln!(out, "madlint error: {e}");
        }
        let _ = writeln!(
            out,
            "madlint: {} files scanned, {} violations, {} errors",
            self.files_scanned,
            self.diagnostics.len(),
            self.errors.len()
        );
        out
    }

    /// Deterministic JSON rendering for CI (`--json`): stable key order,
    /// diagnostics in canonical order, every rule counted even when zero.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"madlint-v1\",");
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(out, "  \"exit_code\": {},", self.exit_code());
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"counts\": {");
        for (i, rule) in RuleId::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {}", rule.name(), self.count(*rule));
        }
        out.push_str("},\n");
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": {}, \"class\": {}, \"file\": {}, \"line\": {}, \
                 \"col\": {}, \"snippet\": {}, \"message\": {}, \"hint\": {}}}",
                json_str(d.rule.name()),
                json_str(d.rule.class().name()),
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.snippet),
                json_str(&d.message),
                json_str(&d.hint)
            );
        }
        if self.diagnostics.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"errors\": [");
        for (i, e) in self.errors.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}{}", json_str(e));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a string into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: RuleId, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            col: 1,
            snippet: "x".into(),
            message: "m".into(),
            hint: "h".into(),
        }
    }

    #[test]
    fn exit_codes_by_class() {
        let mut r = LintReport::default();
        assert_eq!(r.exit_code(), 0);
        r.diagnostics.push(diag(RuleId::NondetIter, "a.rs", 1));
        assert_eq!(r.exit_code(), 2);
        r.diagnostics.clear();
        r.diagnostics.push(diag(RuleId::PanicPath, "a.rs", 1));
        assert_eq!(r.exit_code(), 3);
        r.diagnostics.push(diag(RuleId::SharedState, "a.rs", 2));
        assert_eq!(r.exit_code(), EXIT_MIXED);
        r.errors.push("boom".into());
        assert_eq!(r.exit_code(), EXIT_ERROR);
    }

    #[test]
    fn json_is_valid_and_escaped() {
        let mut r = LintReport::default();
        r.files_scanned = 1;
        r.diagnostics.push(Diagnostic {
            rule: RuleId::NondetSource,
            file: "a.rs".into(),
            line: 3,
            col: 7,
            snippet: "let t = \"x\\\\y\";".into(),
            message: "bad".into(),
            hint: "fix".into(),
        });
        let json = r.render_json();
        assert!(json.contains("\"schema\": \"madlint-v1\""));
        assert!(json.contains("\\\"x\\\\\\\\y\\\""));
        assert!(json.contains("\"nondet-source\": 1"));
        // Braces and brackets balance (cheap structural sanity check; the
        // golden-snapshot fixture test does the full comparison).
        let balance = |open: char, close: char| {
            json.chars().filter(|c| *c == open).count()
                == json.chars().filter(|c| *c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }

    #[test]
    fn report_sorts_canonically() {
        let mut r = LintReport::default();
        r.diagnostics.push(diag(RuleId::PanicPath, "b.rs", 9));
        r.diagnostics.push(diag(RuleId::NondetIter, "a.rs", 5));
        r.diagnostics.push(diag(RuleId::NondetIter, "a.rs", 2));
        r.finish();
        assert_eq!(r.diagnostics[0].line, 2);
        assert_eq!(r.diagnostics[1].line, 5);
        assert_eq!(r.diagnostics[2].file, "b.rs");
    }
}
