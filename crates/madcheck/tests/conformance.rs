//! The analyzer's two contractual properties:
//!
//! 1. the shipped strategy database is conformant across every driver
//!    capability profile (this is what `cargo xtask analyze` enforces);
//! 2. a broken strategy is caught, attributed, and reported with a
//!    *minimized* counterexample.

use madcheck::{analyze, AnalyzeOptions};
use madeleine::strategy::StrategyRegistry;
use madeleine::EngineConfig;

fn opts(samples: usize) -> AnalyzeOptions {
    AnalyzeOptions {
        samples,
        ..AnalyzeOptions::default()
    }
}

#[test]
fn shipped_strategies_conform_on_all_profiles() {
    let registry = StrategyRegistry::standard(&EngineConfig::default());
    let report = analyze(&registry, &opts(48));
    assert!(report.is_clean(), "unexpected findings:\n{report}");
    assert_eq!(report.profiles, 6, "all five real presets plus synthetic");
    assert!(
        report.plans > 0,
        "the corpus must actually elicit proposals"
    );
}

#[test]
fn shipped_strategies_conform_under_fifo_only_config() {
    let cfg = EngineConfig::fifo_only();
    let registry = StrategyRegistry::standard(&cfg);
    let report = analyze(
        &registry,
        &AnalyzeOptions {
            config: cfg,
            ..opts(32)
        },
    );
    assert!(report.is_clean(), "unexpected findings:\n{report}");
}

#[test]
fn skewed_offset_fixture_is_caught_and_minimized() {
    let mut registry = StrategyRegistry::empty();
    registry.register(Box::new(madcheck::fixtures::SkewedOffset));
    let report = analyze(&registry, &opts(16));
    assert!(!report.is_clean());
    let f = &report.findings[0];
    assert_eq!(f.strategy, "fixture-skewed-offset");
    assert_eq!(f.defect.key(), "validation:non-contiguous");
    // Minimization must land on the smallest reproducer: one message, one
    // fragment, and (absent a precommitted frontier) a 1-byte payload.
    assert_eq!(
        f.spec.msgs.len(),
        1,
        "minimizer left extra messages:\n{report}"
    );
    assert_eq!(f.spec.msgs[0].frags.len(), 1);
    assert!(
        f.spec.msgs[0].frags[0].len <= 2,
        "minimizer left a large fragment:\n{report}"
    );
    // The report renders the counterexample.
    let text = report.to_string();
    assert!(text.contains("FINDING 1"));
    assert!(text.contains("minimized counterexample backlog"));
}

#[test]
fn gather_hog_fixture_is_caught() {
    let mut registry = StrategyRegistry::empty();
    registry.register(Box::new(madcheck::fixtures::GatherHog));
    let report = analyze(&registry, &opts(16));
    assert!(!report.is_clean());
    assert!(report
        .findings
        .iter()
        .all(|f| f.strategy == "fixture-gather-hog"));
    assert!(report.findings.iter().any(|f| matches!(
        f.defect.key(),
        "validation:oversize" | "validation:gather-too-wide"
    )));
}

#[test]
fn eager_requester_fixture_is_caught() {
    let mut registry = StrategyRegistry::empty();
    registry.register(Box::new(madcheck::fixtures::EagerRequester));
    let report = analyze(&registry, &opts(8));
    assert!(!report.is_clean());
    assert_eq!(
        report.findings[0].defect.key(),
        "validation:rndv-not-needed"
    );
}

#[test]
fn broken_fixture_alongside_shipped_database_attributes_correctly() {
    let mut registry = StrategyRegistry::standard(&EngineConfig::default());
    registry.register(Box::new(madcheck::fixtures::SkewedOffset));
    let report = analyze(&registry, &opts(16));
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.strategy.starts_with("fixture-")),
        "shipped strategies wrongly implicated:\n{report}"
    );
}
