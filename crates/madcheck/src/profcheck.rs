//! Conformance rule for madprof latency attribution: over a seeded
//! corpus of live traced workloads, every delivered message's phase
//! durations must partition its lifetime *exactly* —
//! `admission + rndv + decision + retx + wire == delivered − submit`,
//! with the span segments sorted, non-overlapping, in-bounds, and in
//! agreement with the per-phase totals — and the profile's exports must
//! be byte-identical when the same seed is replayed. A profiler that
//! loses or invents nanoseconds is worse than no profiler: its shares
//! steer tuning toward phases that never held the time.
//!
//! Like the other madcheck rules the verdict is re-derived
//! independently: the partition is checked span-by-span here, not read
//! back from [`Profile::partition_violations`] (which cross-checks
//! against the receiver's own latency counter and is asserted zero as
//! well). Half the corpus runs under a seeded fault plan
//! (loss + duplication + reordering) with madrel `Recover`, so the
//! `retx_recovery` phase carries real time.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, MessageBuilder, PolicyKind, Profile, ReliabilityMode};
use simnet::{FaultPlan, SimDuration, SimTime, SplitMix64, Technology};

/// Event-ring capacity for corpus clusters. Corpus workloads are tens of
/// messages; overflow here would silently weaken the check, so the rule
/// also asserts no ring dropped anything.
const RING_CAP: usize = 1 << 14;

/// Aggregate result of a madprof attribution conformance check.
#[derive(Clone, Debug)]
pub struct ProfReport {
    /// Corpus workloads replayed.
    pub samples: usize,
    /// Delivered messages whose partition was verified.
    pub messages: usize,
    /// Span segments bounds-checked.
    pub segments: usize,
    /// Messages that recovered via at least one retransmission.
    pub retransmitted: usize,
    /// Violations, in discovery order.
    pub findings: Vec<String>,
}

impl ProfReport {
    /// True when every attribution partitioned exactly.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for ProfReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck prof: {} workloads, {} message partitions, {} segments, \
             {} retransmitted",
            self.samples, self.messages, self.segments, self.retransmitted
        )?;
        if self.is_clean() {
            writeln!(
                f,
                "conformant: every phase attribution partitions its message's lifetime"
            )?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "PROF FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// Build, drive and drain one seeded corpus workload. Odd-indexed
/// samples run madrel `Recover` under a loss + dup + reorder fault plan;
/// even-indexed samples run the clean optimizing engine.
fn build_sample(seed: u64, idx: usize) -> Cluster {
    let mut rng = SplitMix64::new(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let faulty = idx % 2 == 1;
    let engine = if faulty {
        EngineKind::Optimizing {
            config: EngineConfig {
                reliability: ReliabilityMode::Recover,
                ..EngineConfig::default()
            },
            policy: PolicyKind::Pooled,
        }
    } else {
        EngineKind::optimizing()
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine,
        trace: Some(RING_CAP),
        engine_trace: Some(RING_CAP),
    };
    let mut c = Cluster::build(&spec, vec![]);
    if faulty {
        c.set_fault_plan(
            0,
            FaultPlan::new(seed.wrapping_add(idx as u64))
                .with_loss(0.02)
                .with_dup(0.02)
                .with_reorder(0.05, SimDuration::from_nanos(2_000)),
        );
    }
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let classes = [
        TrafficClass::DEFAULT,
        TrafficClass::CONTROL,
        TrafficClass::BULK,
    ];
    let flows: Vec<_> = classes.iter().map(|&cl| h.open_flow(dst, cl)).collect();
    let msgs = 6 + rng.next_below(12);
    let mut t_ns = 0u64;
    for _ in 0..msgs {
        // Mixed arrival spacing: bursts at the same instant plus gaps
        // long enough for the backlog to drain (idle-rail admissions).
        t_ns += [0, 0, 500, 4_000][rng.next_below(4) as usize];
        let flow = flows[rng.next_below(flows.len() as u64) as usize];
        let body = [16usize, 256, 2_048, 16_384][rng.next_below(4) as usize];
        let express = rng.next_below(3) == 0;
        c.sim.run_until(SimTime::from_nanos(t_ns));
        c.sim.inject(src, |ctx| {
            let mut b = MessageBuilder::new();
            if express {
                b = b.pack_express(&[0xA5u8; 16]);
            }
            h.send(ctx, flow, b.pack_cheaper(&vec![0x5Au8; body]).build_parts())
        });
    }
    c.drain();
    c
}

/// Verify one profile span-by-span, independently of the profiler's own
/// violation counter.
fn check_profile(prof: &Profile, ctx: &str, report: &mut ProfReport) {
    if prof.truncated() {
        report.findings.push(format!(
            "{ctx}: event ring overflowed ({} dropped)",
            prof.dropped_events
        ));
    }
    if prof.partition_violations != 0 {
        report.findings.push(format!(
            "{ctx}: {} attributions disagree with the receiver's latency counter",
            prof.partition_violations
        ));
    }
    for f in &prof.flows {
        report.messages += 1;
        if f.retransmits > 0 {
            report.retransmitted += 1;
        }
        let lifetime = f.delivered_ns - f.submit_ns;
        let total: u64 = f.phases.iter().sum();
        if total != lifetime {
            report.findings.push(format!(
                "{ctx}: {} phases sum to {total} ns but lifetime is {lifetime} ns",
                f.key
            ));
        }
        // Segments: sorted, non-overlapping, in-bounds, and telescoping
        // to the same per-phase totals the phases array claims.
        let mut per_phase = [0u64; madeleine::PHASE_COUNT];
        let mut cursor = f.submit_ns;
        for &(phase, start, end) in &f.segments {
            report.segments += 1;
            if start < cursor || end < start || end > f.delivered_ns {
                report.findings.push(format!(
                    "{ctx}: {} segment {}..{} escapes [{}, {}]",
                    f.key, start, end, cursor, f.delivered_ns
                ));
                break;
            }
            per_phase[phase.rank() as usize] += end - start;
            cursor = end;
        }
        if per_phase != f.phases {
            report.findings.push(format!(
                "{ctx}: {} segment totals {per_phase:?} != phase totals {:?}",
                f.key, f.phases
            ));
        }
        if report.findings.len() >= 32 {
            return; // a systematic profiler bug needs no full listing
        }
    }
}

/// Replay the seeded corpus, profiling each workload and verifying the
/// partition invariant; every sample is rebuilt and re-profiled to pin
/// byte-identical exports.
pub fn prof_check(seed: u64, samples: usize) -> ProfReport {
    let mut report = ProfReport {
        samples,
        messages: 0,
        segments: 0,
        retransmitted: 0,
        findings: Vec::new(),
    };
    for idx in 0..samples {
        let prof = build_sample(seed, idx).profile();
        check_profile(&prof, &format!("sample {idx}"), &mut report);
        if report.findings.len() >= 32 {
            break;
        }
        // Same seed, fresh cluster: the exports must not move a byte.
        let again = build_sample(seed, idx).profile();
        if again.attribution_csv() != prof.attribution_csv()
            || again.folded_stacks() != prof.folded_stacks()
        {
            report.findings.push(format!(
                "sample {idx}: same-seed replay changed the profile exports"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use madeleine::Phase;

    #[test]
    fn corpus_attributions_partition_exactly() {
        let r = prof_check(42, 8);
        assert!(r.is_clean(), "{r}");
        assert!(r.messages >= 8 * 6, "messages checked: {}", r.messages);
        assert!(r.segments >= r.messages, "segments checked: {}", r.segments);
        assert!(
            r.retransmitted > 0,
            "the faulted half must exercise retx_recovery"
        );
    }

    #[test]
    fn prof_check_is_deterministic() {
        let a = prof_check(7, 4);
        let b = prof_check(7, 4);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.retransmitted, b.retransmitted);
        assert_eq!(a.findings, b.findings);
    }

    /// The verifier itself must catch a broken partition: corrupt one
    /// span and both the sum check and the segment telescoping fire.
    #[test]
    fn corrupted_partition_is_flagged() {
        let mut prof = build_sample(3, 0).profile();
        let f = &mut prof.flows[0];
        f.phases[Phase::Wire.rank() as usize] += 1;
        let mut report = ProfReport {
            samples: 1,
            messages: 0,
            segments: 0,
            retransmitted: 0,
            findings: Vec::new(),
        };
        check_profile(&prof, "corrupted", &mut report);
        assert!(!report.is_clean());
        assert!(
            report.findings.iter().any(|f| f.contains("lifetime")),
            "{:?}",
            report.findings
        );
    }
}
