//! Static conformance analysis for the strategy database.
//!
//! The optimizing engine is only sound if every rearrangement a strategy
//! proposes respects the declared capabilities of the driver beneath it —
//! the paper's "limiting factors — or constraints" (§3). At runtime that
//! guarantee is enforced per-plan by `madeleine::constraints::validate_plan`,
//! which means a buggy (or user-supplied) strategy is only caught when live
//! traffic happens to hit the bad path. `madcheck` moves the check ahead of
//! execution:
//!
//! * for each registered strategy × each driver capability profile
//!   (mx/elan/ib/tcp/shm plus synthetic),
//! * it enumerates a bounded space of synthetic backlogs — multiple flows,
//!   express and rendezvous fragments, partial commits, several traffic
//!   classes — drawn deterministically from a seeded generator,
//! * runs every proposal through `validate_plan` **and** a second,
//!   independent capability pass ([`capcheck`]: gather width, MTU and
//!   driver packet limits, gather-segment alignment, rendezvous-threshold
//!   policy),
//! * and reports each violation with a *minimized* counterexample backlog.
//!
//! Nothing here touches the simulator clock or network: the analyzer builds
//! [`madeleine::collect::CollectLayer`] states directly and inspects the
//! plans strategies emit for them.
//!
//! Entry points: [`analyze`] for a whole registry, [`check_spec`] for one
//! strategy × one backlog, [`minimize`] to shrink a failure. The
//! deliberately broken strategies in [`fixtures`] exist so the analyzer's
//! own failure path stays tested.

pub mod analyzer;
pub mod backlog;
pub mod capcheck;
pub mod collcheck;
pub mod corpus;
pub mod diffcheck;
pub mod fixtures;
pub mod flowcheck;
pub mod maskcheck;
pub mod metricscheck;
pub mod netcheck;
pub mod profcheck;
pub mod report;
pub mod retxcheck;

pub use analyzer::{analyze, check_plan, check_spec, minimize, AnalyzeOptions, Defect, Failure};
pub use backlog::{BacklogSpec, FragSpec, MsgSpec, RndvPhase, ANALYZED_RAIL};
pub use capcheck::{check_plan_caps, CapViolation};
pub use collcheck::{coll_check, CollReport};
pub use corpus::corpus;
pub use diffcheck::{diff_check, DiffReport};
pub use flowcheck::{flow_check, FlowReport};
pub use maskcheck::{mask_check, mask_check_standard, MaskFinding, MaskReport};
pub use metricscheck::{check_registry, metrics_check, MetricsReport};
pub use netcheck::{net_check, verify_rates, NetReport};
pub use profcheck::{prof_check, ProfReport};
pub use report::{Finding, Report};
pub use retxcheck::{check_retransmit, retx_sweep, verify_packets, RetxReport, RetxViolation};
