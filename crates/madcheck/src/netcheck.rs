//! Conformance rule for madnet topologies: over a seeded corpus of
//! fabric graphs (dumbbells of varying width and asymmetry, k=2 and
//! k=4 fat-trees, mixed link speeds), every host pair must route — a
//! contiguous walk from source port to destination port whose length is
//! hash-independent (ECMP candidates are all shortest paths) — and the
//! max-min fair-share allocator must conserve capacity: per-link flow
//! rates sum to no more than the link's bandwidth (modulo the ≥ 1 B/s
//! progress clamp), every flow is pinned by a genuinely exhausted
//! bottleneck link (work conservation), and permuting the flow list
//! permutes the rates and nothing else.
//!
//! Like the other madcheck rules the verdict is re-derived independently
//! here: routes are walked link by link against the graph, and the
//! conservation sums are recomputed from the returned rates, not read
//! back from the allocator's internals.

use simnet::{flow_hash, max_min_rates, LinkProfile, SplitMix64, Topology, Vertex};

/// Aggregate result of a madnet topology conformance check.
#[derive(Clone, Debug)]
pub struct NetReport {
    /// Topology corpus samples checked.
    pub samples: usize,
    /// (src, dst, hash) routes walked and verified.
    pub routes: usize,
    /// Flow sets pushed through the fair-share allocator.
    pub allocations: usize,
    /// Violations, in discovery order.
    pub findings: Vec<String>,
}

impl NetReport {
    /// True when every route resolved and every allocation conserved.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for NetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck net: {} topologies, {} routes walked, {} fair-share allocations",
            self.samples, self.routes, self.allocations
        )?;
        if self.is_clean() {
            writeln!(
                f,
                "conformant: every host pair routes and every allocation conserves capacity"
            )?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "NET FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// One corpus topology: the family cycles through dumbbells and
/// fat-trees, with seeded asymmetry and per-sample link speeds.
fn build_sample(rng: &mut SplitMix64, idx: usize) -> Topology {
    let mut profile = LinkProfile::synthetic();
    // Mixed speeds so shares are not all equal: 250 MB/s .. 2 GB/s.
    profile.bandwidth = 250_000_000 * (1 + rng.next_below(8));
    match idx % 3 {
        0 => {
            let left = 1 + rng.next_below(6) as u32;
            let right = 1 + rng.next_below(6) as u32;
            let mut core = profile;
            core.bandwidth = (core.bandwidth / (1 + rng.next_below(4))).max(1);
            Topology::dumbbell(left, right, profile, core)
        }
        1 => Topology::fat_tree(2, profile),
        _ => Topology::fat_tree(4, profile),
    }
}

/// Walk one route and verify it is a contiguous host-to-host path.
fn check_route(
    topo: &Topology,
    src: u32,
    dst: u32,
    hash: u64,
    ctx: &str,
    report: &mut NetReport,
) -> Option<usize> {
    report.routes += 1;
    let Some(path) = topo.route(src, dst, hash) else {
        report
            .findings
            .push(format!("{ctx}: h{src}->h{dst} is unroutable"));
        return None;
    };
    let mut at = Vertex::Host(src);
    for &li in &path {
        let link = &topo.links()[li];
        if link.from != at {
            report.findings.push(format!(
                "{ctx}: h{src}->h{dst} hash {hash:#x} jumps from {} to link {}->{}",
                at.label(),
                link.from.label(),
                link.to.label()
            ));
            return None;
        }
        at = link.to;
    }
    if at != Vertex::Host(dst) {
        report.findings.push(format!(
            "{ctx}: h{src}->h{dst} hash {hash:#x} ends at {}, not h{dst}",
            at.label()
        ));
        return None;
    }
    Some(path.len())
}

/// Independently verify a rate vector against its flow set: capacity
/// conservation on every link, work conservation for every flow. Pure —
/// the corpus feeds it allocator output, the negative tests feed it
/// corrupted rates.
pub fn verify_rates(capacities: &[u64], flows: &[Vec<usize>], rates: &[u64]) -> Result<(), String> {
    // Conservation: per-link rate sums stay within capacity. The ≥ 1 B/s
    // progress clamp can push a saturated link over by at most one byte
    // per crossing flow.
    let mut on_link = vec![0u64; capacities.len()];
    let mut load = vec![0u64; capacities.len()];
    for (f, path) in flows.iter().enumerate() {
        for &l in path {
            on_link[l] += 1;
            load[l] = load[l].saturating_add(rates[f]);
        }
    }
    for (l, &used) in load.iter().enumerate() {
        if used > capacities[l].saturating_add(on_link[l]) {
            return Err(format!(
                "link {l} carries {used} B/s over its {} B/s capacity",
                capacities[l]
            ));
        }
    }
    // Work conservation: every flow is stopped by an exhausted link —
    // one whose residual is smaller than the flows crossing it (the
    // integer water-fill leaves at most remainder + clamp slack).
    for (f, path) in flows.iter().enumerate() {
        if path.is_empty() {
            if rates[f] != u64::MAX {
                return Err(format!("linkless flow {f} is constrained to {}", rates[f]));
            }
            continue;
        }
        let bottlenecked = path
            .iter()
            .any(|&l| capacities[l].saturating_sub(load[l]) < 2 * on_link[l]);
        if !bottlenecked {
            return Err(format!(
                "flow {f} at {} B/s has slack on every link it crosses \
                 (not work-conserving)",
                rates[f]
            ));
        }
    }
    Ok(())
}

/// Verify one allocation: capacity conservation, work conservation and
/// order independence.
fn check_allocation(topo: &Topology, flows: &[Vec<usize>], ctx: &str, report: &mut NetReport) {
    report.allocations += 1;
    let capacities: Vec<u64> = topo.links().iter().map(|l| l.profile.bandwidth).collect();
    let rates = max_min_rates(&capacities, flows);
    if let Err(e) = verify_rates(&capacities, flows, &rates) {
        report.findings.push(format!("{ctx}: {e}"));
        return;
    }
    // Order independence: reversing the flow list reverses the rates.
    let reversed: Vec<Vec<usize>> = flows.iter().rev().cloned().collect();
    let mut back = max_min_rates(&capacities, &reversed);
    back.reverse();
    if back != rates {
        report.findings.push(format!(
            "{ctx}: permuting the flow list changed the allocation"
        ));
    }
}

/// Replay the seeded topology corpus: route every host pair under
/// several flow hashes, then verify fair-share allocations over seeded
/// flow sets routed on the same graph.
pub fn net_check(seed: u64, samples: usize) -> NetReport {
    let mut report = NetReport {
        samples,
        routes: 0,
        allocations: 0,
        findings: Vec::new(),
    };
    let mut rng = SplitMix64::new(seed ^ 0x6E65_7463_6865_636B);
    for idx in 0..samples {
        let topo = build_sample(&mut rng, idx);
        let ctx = format!("sample {idx} ({})", topo.name());
        let hosts = topo.hosts();
        for src in 0..hosts {
            for dst in 0..hosts {
                if src == dst {
                    continue;
                }
                // ECMP spreads by hash but every candidate is a shortest
                // path: lengths must agree across hashes.
                let mut len = None;
                for vchan in 0..3u16 {
                    let h = flow_hash(src, dst, vchan);
                    if let Some(n) = check_route(&topo, src, dst, h, &ctx, &mut report) {
                        if *len.get_or_insert(n) != n {
                            report.findings.push(format!(
                                "{ctx}: h{src}->h{dst} route length depends on the hash"
                            ));
                        }
                    }
                }
            }
        }
        // Seeded flow sets over real routes (plus the odd linkless flow).
        for _ in 0..4 {
            let n = 2 + rng.next_below(14) as usize;
            let mut flows = Vec::with_capacity(n);
            for _ in 0..n {
                if rng.next_below(8) == 0 {
                    flows.push(Vec::new());
                    continue;
                }
                let src = rng.next_below(u64::from(hosts)) as u32;
                let mut dst = rng.next_below(u64::from(hosts)) as u32;
                if dst == src {
                    dst = (dst + 1) % hosts;
                }
                let h = flow_hash(src, dst, rng.next_below(4) as u16);
                flows.push(topo.route(src, dst, h).unwrap_or_default());
            }
            check_allocation(&topo, &flows, &ctx, &mut report);
        }
        if report.findings.len() >= 32 {
            break; // a systematic fabric bug needs no full listing
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_routes_and_allocations_conform() {
        let r = net_check(42, 12);
        assert!(r.is_clean(), "{r}");
        assert!(r.routes >= 12 * 2, "routes walked: {}", r.routes);
        assert_eq!(r.allocations, 12 * 4);
    }

    #[test]
    fn net_check_is_deterministic() {
        let a = net_check(7, 6);
        let b = net_check(7, 6);
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.allocations, b.allocations);
        assert_eq!(a.findings, b.findings);
    }

    /// The verifier itself must catch broken allocations: inflating one
    /// rate trips the conservation sum, deflating it trips the
    /// work-conservation check.
    #[test]
    fn corrupted_rates_are_flagged() {
        let topo = Topology::dumbbell(2, 2, LinkProfile::synthetic(), LinkProfile::synthetic());
        let flows = vec![
            topo.route(0, 2, flow_hash(0, 2, 0)).unwrap(),
            topo.route(1, 3, flow_hash(1, 3, 0)).unwrap(),
        ];
        let capacities: Vec<u64> = topo.links().iter().map(|l| l.profile.bandwidth).collect();
        let mut rates = max_min_rates(&capacities, &flows);
        assert!(verify_rates(&capacities, &flows, &rates).is_ok());
        let honest = rates[0];
        rates[0] = honest.saturating_mul(3);
        let e = verify_rates(&capacities, &flows, &rates).unwrap_err();
        assert!(e.contains("over its"), "{e}");
        rates[0] = honest / 4;
        rates[1] = honest / 4;
        let e = verify_rates(&capacities, &flows, &rates).unwrap_err();
        assert!(e.contains("work-conserving"), "{e}");
        // Degenerate 1 B/s links: the progress clamp may overshoot, the
        // checker must tolerate exactly that much and no more.
        let tiny = LinkProfile {
            bandwidth: 1,
            ..LinkProfile::synthetic()
        };
        let starved = Topology::dumbbell(2, 2, tiny, tiny);
        let mut report = NetReport {
            samples: 1,
            routes: 0,
            allocations: 0,
            findings: Vec::new(),
        };
        let path = starved.route(0, 2, flow_hash(0, 2, 0)).unwrap();
        check_allocation(&starved, &[path.clone(), path], "starved", &mut report);
        assert!(report.is_clean(), "clamped shares still conserve: {report}");
    }
}
