//! Deliberately broken strategies.
//!
//! These exist so the analyzer's failure path stays exercised: each one
//! violates a different constraint class, and the test suite (plus
//! `cargo xtask analyze --broken-fixture`) asserts madcheck catches it and
//! produces a minimized counterexample. They are **never** registered by
//! the engine.

use madeleine::plan::{PlanBody, PlannedChunk, TransferPlan};
use madeleine::strategy::{OptContext, Strategy};

/// Proposes the first schedulable chunk with its offset shifted by one
/// byte — breaks the contiguity constraint on every backlog that has any
/// candidate at all.
#[derive(Debug, Default)]
pub struct SkewedOffset;

impl Strategy for SkewedOffset {
    fn name(&self) -> &'static str {
        "fixture-skewed-offset"
    }

    fn propose(&self, ctx: &OptContext<'_>, out: &mut Vec<TransferPlan>) {
        let Some((dst, c)) = ctx
            .groups
            .iter()
            .flat_map(|g| g.candidates.iter().map(move |cand| (g.dst, cand)))
            .next()
        else {
            return;
        };
        out.push(TransferPlan {
            channel: ctx.channel,
            dst,
            body: PlanBody::Data {
                chunks: vec![PlannedChunk {
                    flow: c.flow,
                    seq: c.seq,
                    frag: c.frag,
                    offset: c.offset + 1,
                    len: 1,
                }],
                linearize: false,
            },
            strategy: self.name(),
        });
    }
}

/// Stuffs every candidate into a single zero-copy packet, ignoring both
/// the packet size budget and the hardware gather width — trips the
/// oversize or gather-width constraint once the backlog is large enough.
#[derive(Debug, Default)]
pub struct GatherHog;

impl Strategy for GatherHog {
    fn name(&self) -> &'static str {
        "fixture-gather-hog"
    }

    fn propose(&self, ctx: &OptContext<'_>, out: &mut Vec<TransferPlan>) {
        for g in ctx.groups {
            if g.candidates.is_empty() {
                continue;
            }
            let chunks: Vec<PlannedChunk> = g
                .candidates
                .iter()
                .map(|c| PlannedChunk {
                    flow: c.flow,
                    seq: c.seq,
                    frag: c.frag,
                    offset: c.offset,
                    len: c.remaining,
                })
                .collect();
            out.push(TransferPlan {
                channel: ctx.channel,
                dst: g.dst,
                body: PlanBody::Data {
                    chunks,
                    linearize: false,
                },
                strategy: self.name(),
            });
        }
    }
}

/// Emits rendezvous requests for fragments that are perfectly happy going
/// eagerly — the handshake round-trip is pure overhead, and the state
/// machine rejects the request outright.
#[derive(Debug, Default)]
pub struct EagerRequester;

impl Strategy for EagerRequester {
    fn name(&self) -> &'static str {
        "fixture-eager-requester"
    }

    fn propose(&self, ctx: &OptContext<'_>, out: &mut Vec<TransferPlan>) {
        for g in ctx.groups {
            if let Some(c) = g.candidates.first() {
                out.push(TransferPlan {
                    channel: ctx.channel,
                    dst: g.dst,
                    body: PlanBody::RndvRequest {
                        flow: c.flow,
                        seq: c.seq,
                        frag: c.frag,
                    },
                    strategy: self.name(),
                });
            }
        }
    }
}
