//! Findings and the human-readable conformance report.

use simnet::Technology;

use crate::analyzer::Defect;
use crate::backlog::BacklogSpec;

/// One conformance violation: a strategy, a capability profile, a defect,
/// and the minimized backlog that reproduces it.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Offending strategy (plan provenance name).
    pub strategy: &'static str,
    /// Capability profile the violation occurred under.
    pub tech: Technology,
    /// Which checker rejected the plan, and why.
    pub defect: Defect,
    /// Debug rendering of the offending plan.
    pub plan: String,
    /// Minimized counterexample backlog; `spec.build()` reproduces the
    /// collect-layer state.
    pub spec: BacklogSpec,
}

/// Aggregate result of an analysis run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Violations, in discovery order.
    pub findings: Vec<Finding>,
    /// Strategies analyzed.
    pub strategies: usize,
    /// Capability profiles swept.
    pub profiles: usize,
    /// Strategy × backlog cases replayed.
    pub cases: usize,
    /// Individual plans checked.
    pub plans: usize,
}

impl Report {
    /// Empty report for `strategies` strategies.
    pub fn new(strategies: usize) -> Self {
        Report {
            findings: Vec::new(),
            strategies,
            profiles: 0,
            cases: 0,
            plans: 0,
        }
    }

    /// True when every checked plan conformed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck: {} strategies x {} profiles, {} backlogs replayed, {} plans checked",
            self.strategies, self.profiles, self.cases, self.plans
        )?;
        if self.is_clean() {
            writeln!(f, "conformant: no strategy exceeded any driver capability")?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f)?;
                writeln!(
                    f,
                    "FINDING {}: strategy `{}` on {:?}",
                    i + 1,
                    finding.strategy,
                    finding.tech
                )?;
                writeln!(f, "  defect: {}", finding.defect)?;
                writeln!(f, "  plan:   {}", finding.plan)?;
                writeln!(f, "  minimized counterexample backlog:")?;
                for line in finding.spec.to_string().lines() {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        Ok(())
    }
}
