//! The capability-check pass: a second, independent verdict on every plan.
//!
//! `validate_plan` already rejects plans the collect-layer state forbids;
//! this pass re-derives the *hardware* limits straight from
//! [`DriverCapabilities`] — maximum gather entries, MTU and driver packet
//! ceilings, gather-segment alignment, and the eager/rendezvous threshold
//! policy — so a bug in either checker is caught by disagreement with the
//! other (the property tests assert the overlap, the analyzer runs both).

use madeleine::collect::{CollectLayer, RndvState};
use madeleine::ids::FlowId;
use madeleine::plan::{PlanBody, TransferPlan};
use nicdrv::DriverCapabilities;

/// A plan/capability mismatch found by the capability pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CapViolation {
    /// Payload + framing exceeds the rail's wire MTU.
    PacketExceedsMtu {
        /// Total packet bytes.
        bytes: u64,
        /// Wire MTU.
        mtu: u64,
    },
    /// Payload + framing exceeds the driver's per-request ceiling.
    PacketExceedsDriverLimit {
        /// Total packet bytes.
        bytes: u64,
        /// Driver limit.
        limit: u64,
    },
    /// Zero-copy plan needs more gather entries than the hardware has and
    /// is too large to stream via PIO.
    GatherTooWide {
        /// Segments the plan needs (header block + chunks).
        segs: usize,
        /// Hardware gather entries (0 when DMA is unsupported).
        max: usize,
    },
    /// A zero-copy DMA gather segment starts at an offset the DMA engine
    /// cannot address.
    MisalignedGather {
        /// Offending flow.
        flow: FlowId,
        /// Offending fragment.
        frag: u16,
        /// Segment start offset.
        offset: u32,
        /// Required alignment.
        align: u64,
    },
    /// A linearized plan that no injection path (PIO or DMA) accepts.
    NoInjectionPath {
        /// Total packet bytes.
        bytes: u64,
    },
    /// An eager data chunk belongs to a fragment at or above the
    /// rendezvous threshold that never entered the handshake — the
    /// threshold policy was bypassed at submission.
    EagerAboveRndvThreshold {
        /// Fragment length.
        len: u64,
        /// Effective threshold.
        threshold: u64,
    },
    /// A rendezvous request for a fragment below the threshold — the
    /// handshake round-trip is pure overhead there.
    RequestBelowThreshold {
        /// Fragment length.
        len: u64,
        /// Effective threshold.
        threshold: u64,
    },
}

impl std::fmt::Display for CapViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapViolation::PacketExceedsMtu { bytes, mtu } => {
                write!(f, "packet of {bytes} bytes exceeds wire MTU {mtu}")
            }
            CapViolation::PacketExceedsDriverLimit { bytes, limit } => {
                write!(f, "packet of {bytes} bytes exceeds driver limit {limit}")
            }
            CapViolation::GatherTooWide { segs, max } => {
                write!(f, "gather list of {segs} segments exceeds hardware limit {max}")
            }
            CapViolation::MisalignedGather { flow, frag, offset, align } => write!(
                f,
                "{flow} frag {frag}: gather segment at offset {offset} breaks {align}-byte DMA alignment"
            ),
            CapViolation::NoInjectionPath { bytes } => {
                write!(f, "no injection path accepts a {bytes}-byte linearized packet")
            }
            CapViolation::EagerAboveRndvThreshold { len, threshold } => write!(
                f,
                "eager chunk of a {len}-byte fragment at/above the {threshold}-byte rendezvous threshold"
            ),
            CapViolation::RequestBelowThreshold { len, threshold } => write!(
                f,
                "rendezvous request for a {len}-byte fragment below the {threshold}-byte threshold"
            ),
        }
    }
}

impl std::error::Error for CapViolation {}

/// Check one plan against the raw driver capabilities and the effective
/// rendezvous threshold. Chunks referencing unknown messages are skipped —
/// `validate_plan` owns that class of error.
pub fn check_plan_caps(
    plan: &TransferPlan,
    collect: &CollectLayer,
    caps: &DriverCapabilities,
    wire_mtu: u64,
    rndv_threshold: u64,
) -> Result<(), CapViolation> {
    match &plan.body {
        PlanBody::RndvRequest { flow, seq, frag } => {
            if let Some(msg) = collect.find_msg(*flow, *seq) {
                if let Some(f) = msg.frags.get(*frag as usize) {
                    let len = u64::from(f.len());
                    if len < rndv_threshold {
                        return Err(CapViolation::RequestBelowThreshold {
                            len,
                            threshold: rndv_threshold,
                        });
                    }
                }
            }
            Ok(())
        }
        PlanBody::Data { chunks, linearize } => {
            let bytes = plan.payload_bytes() + plan.framing();
            if bytes > wire_mtu {
                return Err(CapViolation::PacketExceedsMtu {
                    bytes,
                    mtu: wire_mtu,
                });
            }
            if bytes > caps.max_packet_bytes {
                return Err(CapViolation::PacketExceedsDriverLimit {
                    bytes,
                    limit: caps.max_packet_bytes,
                });
            }
            let pio_ok = caps.can_pio(bytes);
            if *linearize {
                // One segment after the copy; some path must still take it.
                if !pio_ok && !caps.supports_dma {
                    return Err(CapViolation::NoInjectionPath { bytes });
                }
            } else {
                let segs = 1 + chunks.len();
                if !pio_ok {
                    // The DMA gather path is the only option left.
                    if !caps.can_gather(segs) {
                        let max = if caps.supports_dma {
                            caps.max_gather_entries
                        } else {
                            0
                        };
                        return Err(CapViolation::GatherTooWide { segs, max });
                    }
                    if caps.dma_align > 1 {
                        for c in chunks {
                            if u64::from(c.offset) % caps.dma_align != 0 {
                                return Err(CapViolation::MisalignedGather {
                                    flow: c.flow,
                                    frag: c.frag,
                                    offset: c.offset,
                                    align: caps.dma_align,
                                });
                            }
                        }
                    }
                }
            }
            for c in chunks {
                let Some(msg) = collect.find_msg(c.flow, c.seq) else {
                    continue;
                };
                let Some(f) = msg.frags.get(c.frag as usize) else {
                    continue;
                };
                let len = u64::from(f.len());
                if f.rndv == RndvState::Eager && len >= rndv_threshold {
                    return Err(CapViolation::EagerAboveRndvThreshold {
                        len,
                        threshold: rndv_threshold,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backlog::{BacklogSpec, FragSpec, MsgSpec, RndvPhase, ANALYZED_RAIL};
    use madeleine::ids::ChannelId;
    use madeleine::plan::PlannedChunk;
    use nicdrv::calib;
    use simnet::NodeId;

    fn spec(frag_lens: &[u32]) -> BacklogSpec {
        BacklogSpec {
            msgs: vec![MsgSpec {
                dst: 0,
                class: 0,
                frags: frag_lens
                    .iter()
                    .map(|&len| FragSpec {
                        len,
                        express: false,
                    })
                    .collect(),
                precommit: 0,
                rndv_phase: RndvPhase::Pending,
            }],
            rndv_threshold: 1 << 30,
        }
    }

    fn plan_of(chunks: Vec<PlannedChunk>, linearize: bool) -> TransferPlan {
        TransferPlan {
            channel: ANALYZED_RAIL,
            dst: NodeId(1),
            body: PlanBody::Data { chunks, linearize },
            strategy: "test",
        }
    }

    fn chunk(flow: u32, frag: u16, offset: u32, len: u32) -> PlannedChunk {
        PlannedChunk {
            flow: FlowId(flow),
            seq: 0,
            frag,
            offset,
            len,
        }
    }

    #[test]
    fn accepts_conforming_plan() {
        let s = spec(&[100]);
        let c = s.build();
        let caps = calib::synthetic_capabilities();
        let p = plan_of(vec![chunk(0, 0, 0, 100)], false);
        assert_eq!(check_plan_caps(&p, &c, &caps, 1 << 20, 1 << 30), Ok(()));
    }

    #[test]
    fn rejects_mtu_and_driver_limit() {
        let s = spec(&[8192]);
        let c = s.build();
        let caps = calib::synthetic_capabilities();
        let p = plan_of(vec![chunk(0, 0, 0, 8192)], false);
        assert!(matches!(
            check_plan_caps(&p, &c, &caps, 1000, 1 << 30),
            Err(CapViolation::PacketExceedsMtu { .. })
        ));
        let mut tight = caps.clone();
        tight.max_packet_bytes = 1000;
        assert!(matches!(
            check_plan_caps(&p, &c, &tight, 1 << 20, 1 << 30),
            Err(CapViolation::PacketExceedsDriverLimit { .. })
        ));
    }

    #[test]
    fn rejects_wide_gather_and_misalignment() {
        let s = spec(&[2048, 2048, 2048, 2048, 2048, 2048, 2048, 2048, 2048]);
        let c = s.build();
        let mut caps = calib::synthetic_capabilities();
        // 9 chunks + header = 10 segments > 8 entries, 18 KiB > 4 KiB PIO.
        let chunks: Vec<_> = (0..9).map(|i| chunk(0, i, 0, 2048)).collect();
        let p = plan_of(chunks, false);
        assert!(matches!(
            check_plan_caps(&p, &c, &caps, 1 << 20, 1 << 30),
            Err(CapViolation::GatherTooWide { segs: 10, max: 8 })
        ));
        // A strict DMA engine rejects odd segment offsets.
        caps.dma_align = 8;
        let s2 = spec(&[8192]);
        let mut c2 = s2.build();
        c2.commit_chunk(&chunk(0, 0, 0, 37), ChannelId(0));
        let p2 = plan_of(vec![chunk(0, 0, 37, 5000)], false);
        assert!(matches!(
            check_plan_caps(&p2, &c2, &caps, 1 << 20, 1 << 30),
            Err(CapViolation::MisalignedGather {
                offset: 37,
                align: 8,
                ..
            })
        ));
    }

    #[test]
    fn rejects_threshold_policy_drift() {
        // Backlog submitted with a huge threshold, checked with a small
        // one: the eager fragment should have entered the handshake.
        let s = spec(&[4096]);
        let c = s.build();
        let caps = calib::synthetic_capabilities();
        let p = plan_of(vec![chunk(0, 0, 0, 4096)], false);
        assert!(matches!(
            check_plan_caps(&p, &c, &caps, 1 << 20, 1024),
            Err(CapViolation::EagerAboveRndvThreshold {
                len: 4096,
                threshold: 1024
            })
        ));
        // And the inverse: a request for a fragment below the threshold.
        let mut gated = spec(&[4096]);
        gated.rndv_threshold = 1024;
        let c = gated.build();
        let req = TransferPlan {
            channel: ANALYZED_RAIL,
            dst: NodeId(1),
            body: PlanBody::RndvRequest {
                flow: FlowId(0),
                seq: 0,
                frag: 0,
            },
            strategy: "test",
        };
        assert!(matches!(
            check_plan_caps(&req, &c, &caps, 1 << 20, 1 << 20),
            Err(CapViolation::RequestBelowThreshold { .. })
        ));
    }
}
