//! Conformance rule for madcoll schedules: over a seeded corpus of
//! `algorithm × member-count × capability-profile` shapes, every
//! generated [`CollPlan`] must be a round-gated DAG (verified by an
//! explicit topological sort, not by trusting the round numbers), must
//! span all members (verified by simulating the schedule with
//! contributor *bitmasks* instead of payloads: a reduce result must
//! carry every member's bit, a broadcast result exactly the root's), and
//! must conserve bytes (every send carries exactly its chunk's tile;
//! ring-allreduce's reduce-scatter/allgather tiling must cover the
//! vector exactly).
//!
//! Like the other madcheck rules, the verdict is re-derived here from
//! the plan's public schedule — none of madcoll's own runtime machinery
//! is consulted.

use madeleine::coll::{select_algo, CollAlgo, CollOp, CollPlan, CHUNK_FULL};
use nicdrv::{calib, CostModel};
use simnet::{SplitMix64, Technology};

/// Aggregate result of a madcoll schedule conformance check.
#[derive(Clone, Debug)]
pub struct CollReport {
    /// Corpus shapes checked (op × algo × members × elems).
    pub samples: usize,
    /// Schedules verified (includes the auto-selected plan per shape and
    /// capability profile).
    pub plans: usize,
    /// Total sends walked across all schedules.
    pub sends: usize,
    /// Violations, in discovery order.
    pub findings: Vec<String>,
}

impl CollReport {
    /// True when every schedule was a spanning, byte-exact DAG.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for CollReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck coll: {} shapes, {} schedules verified, {} sends walked",
            self.samples, self.plans, self.sends
        )?;
        if self.is_clean() {
            writeln!(
                f,
                "conformant: every schedule is an acyclic, member-spanning, byte-exact round-gated DAG"
            )?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "COLL FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// The capability profiles selection is exercised under — every
/// calibrated driver plus the synthetic round-number NIC.
fn profiles() -> Vec<(&'static str, nicdrv::DriverCapabilities, CostModel)> {
    let mut out = Vec::new();
    for tech in [
        Technology::MyrinetMx,
        Technology::QuadricsElan,
        Technology::InfiniBand,
        Technology::TcpEthernet,
        Technology::SharedMem,
    ] {
        out.push((
            tech.label(),
            calib::capabilities(tech),
            CostModel::from_params(&calib::params(tech)),
        ));
    }
    out
}

/// Verify the dependency graph is acyclic by explicit topological sort.
///
/// Nodes are sends; send `b` depends on send `a` when `a` delivers to
/// `b`'s sender in an earlier round (the round-gating relation the
/// runtime enforces). Kahn's algorithm must order every node.
fn check_acyclic(plan: &CollPlan, label: &str, findings: &mut Vec<String>) {
    let n = plan.sends.len();
    let mut indeg = vec![0usize; n];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ai, a) in plan.sends.iter().enumerate() {
        for (bi, b) in plan.sends.iter().enumerate() {
            if a.dst == b.src && a.round < b.round {
                edges[ai].push(bi);
                indeg[bi] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut ordered = 0;
    while let Some(i) = queue.pop() {
        ordered += 1;
        for &j in &edges[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    if ordered != n {
        findings.push(format!(
            "{label}: dependency graph has a cycle ({ordered}/{n} sends orderable)"
        ));
    }
}

/// Simulate the schedule with contributor bitmasks and check the op's
/// semantics: spanning (reduce results carry every member's bit) and
/// provenance (broadcast results carry exactly the root's).
fn check_spanning(plan: &CollPlan, label: &str, findings: &mut Vec<String>) {
    let n = plan.members as usize;
    if n > 64 {
        return; // bitmask width; the corpus stays well below this
    }
    let elems = plan.elems as usize;
    // state[m][e] = set of members whose contribution reached member m's
    // element e.
    let mut state: Vec<Vec<u64>> = (0..n).map(|m| vec![1u64 << m; elems]).collect();
    // Execute rounds in order; within a round all sends observe the
    // previous rounds' state (the runtime's gating guarantees senders
    // hold their round-r value before any round-r delivery).
    for round in 0..plan.rounds {
        let snapshot = state.clone();
        for s in plan.sends.iter().filter(|s| s.round == round) {
            let (a, b) = plan.chunk_range(s.chunk);
            for e in a..b {
                let incoming = snapshot[s.src as usize][e];
                let cell = &mut state[s.dst as usize][e];
                if round < plan.add_rounds {
                    *cell |= incoming;
                } else {
                    *cell = incoming;
                }
            }
        }
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    let check_member = |m: usize, want: u64, what: &str, findings: &mut Vec<String>| {
        if let Some(e) = state[m].iter().position(|&mask| mask != want) {
            findings.push(format!(
                "{label}: member {m} element {e} holds contributors {:#x}, {what} requires {want:#x}",
                state[m][e]
            ));
        }
    };
    match plan.op {
        CollOp::Barrier => {
            // No member may complete before every member started: each
            // member must have heard from everyone, transitively.
            for m in 0..n {
                check_member(m, full, "barrier", findings);
            }
        }
        CollOp::Broadcast { root } => {
            for m in 0..n {
                let want = 1u64 << root;
                if m != root as usize {
                    check_member(m, want, "broadcast", findings);
                }
            }
        }
        CollOp::Reduce { root } => check_member(root as usize, full, "reduce", findings),
        CollOp::Allreduce => {
            for m in 0..n {
                check_member(m, full, "allreduce", findings);
            }
        }
    }
}

/// Check byte conservation: every send carries exactly its chunk's tile,
/// the ring tiling covers the vector exactly, and full-vector algorithms
/// never split.
fn check_bytes(plan: &CollPlan, label: &str, findings: &mut Vec<String>) {
    let mut tiled = 0u64;
    for c in 0..plan.members {
        let (a, b) = plan.chunk_range(c);
        tiled += (b - a) as u64;
    }
    if tiled != plan.elems as u64 {
        findings.push(format!(
            "{label}: chunk tiling covers {tiled} of {} elements",
            plan.elems
        ));
    }
    for s in &plan.sends {
        let (a, b) = plan.chunk_range(s.chunk);
        if s.elems as usize != b - a {
            findings.push(format!(
                "{label}: send (round {}, {}→{}, chunk {}) carries {} elems, tile is {}",
                s.round,
                s.src,
                s.dst,
                s.chunk,
                s.elems,
                b - a
            ));
        }
        if s.chunk != CHUNK_FULL
            && !matches!((plan.op, plan.algo), (CollOp::Allreduce, CollAlgo::Ring))
        {
            findings.push(format!(
                "{label}: non-ring-allreduce send uses chunk {}",
                s.chunk
            ));
        }
    }
}

/// Run the conformance check over a seeded corpus.
pub fn coll_check(seed: u64, samples: usize) -> CollReport {
    let mut rng = SplitMix64::new(seed ^ 0xC011_C4EC);
    let profiles = profiles();
    let ops = [
        CollOp::Barrier,
        CollOp::Allreduce,
        CollOp::Broadcast { root: 0 },
        CollOp::Reduce { root: 0 },
    ];
    let mut report = CollReport {
        samples: 0,
        plans: 0,
        sends: 0,
        findings: Vec::new(),
    };
    for i in 0..samples {
        let members = [1u32, 2, 3, 4, 5, 7, 8, 12, 16, 33][(rng.next_u64() % 10) as usize];
        let elems = [1u32, 2, 9, 64, 1000, 8192][(rng.next_u64() % 6) as usize];
        let root = (rng.next_u64() % members as u64) as u32;
        let op = match ops[i % ops.len()] {
            CollOp::Broadcast { .. } => CollOp::Broadcast { root },
            CollOp::Reduce { .. } => CollOp::Reduce { root },
            other => other,
        };
        report.samples += 1;
        let verify = |plan: &CollPlan, label: &str, report: &mut CollReport| {
            report.plans += 1;
            report.sends += plan.sends.len();
            check_acyclic(plan, label, &mut report.findings);
            check_spanning(plan, label, &mut report.findings);
            check_bytes(plan, label, &mut report.findings);
        };
        // Every fixed algorithm applicable to the shape…
        for algo in CollAlgo::ALL {
            if !CollPlan::applicable(op, algo, members, elems) {
                continue;
            }
            let plan = CollPlan::build(op, algo, members, elems);
            let label = format!("{} {} n={members} elems={elems}", algo.label(), op.label());
            verify(&plan, &label, &mut report);
        }
        // …and the cost-model-selected plan under each capability profile
        // (selection must only ever name an applicable algorithm).
        for (tech, caps, cost) in &profiles {
            let choice = select_algo(op, members, elems, caps, cost, None);
            if !CollPlan::applicable(op, choice.algo, members, elems) {
                report.findings.push(format!(
                    "{tech}: selection chose inapplicable {} for {} n={members} elems={elems}",
                    choice.algo.label(),
                    op.label()
                ));
                continue;
            }
            let plan = CollPlan::build(op, choice.algo, members, elems);
            let label = format!(
                "auto[{tech}]→{} {} n={members} elems={elems}",
                choice.algo.label(),
                op.label()
            );
            verify(&plan, &label, &mut report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_conformant() {
        let r = coll_check(7, 24);
        assert!(r.is_clean(), "{r}");
        assert!(r.plans > 100, "corpus too small: {} plans", r.plans);
        assert!(r.sends > 1000, "corpus too small: {} sends", r.sends);
    }

    #[test]
    fn detects_a_nonspanning_schedule() {
        // A hand-built broken broadcast: the root only reaches member 1.
        let mut plan = CollPlan::build(CollOp::Broadcast { root: 0 }, CollAlgo::Flat, 4, 4);
        plan.sends.retain(|s| s.dst == 1);
        let mut findings = Vec::new();
        check_spanning(&plan, "broken", &mut findings);
        assert!(!findings.is_empty(), "missing members must be flagged");
    }

    #[test]
    fn detects_a_bad_tile() {
        let mut plan = CollPlan::build(CollOp::Allreduce, CollAlgo::Ring, 4, 16);
        plan.sends[0].elems += 1;
        let mut findings = Vec::new();
        check_bytes(&plan, "broken", &mut findings);
        assert!(!findings.is_empty(), "oversized tile must be flagged");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = coll_check(3, 12);
        let b = coll_check(3, 12);
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.findings, b.findings);
    }
}
