//! The conformance analyzer: replay synthetic backlogs through strategies,
//! double-check every proposal, and shrink whatever fails.

use madeleine::collect::CollectLayer;
use madeleine::config::EngineConfig;
use madeleine::constraints::{validate_plan, PlanViolation};
use madeleine::plan::TransferPlan;
use madeleine::strategy::{OptContext, Strategy, StrategyRegistry};
use nicdrv::{calib, CostModel, DriverCapabilities};
use simnet::{SimTime, Technology};

use crate::backlog::{BacklogSpec, RndvPhase, ANALYZED_RAIL};
use crate::capcheck::{check_plan_caps, CapViolation};
use crate::corpus::corpus;
use crate::report::{Finding, Report};

/// The virtual instant every analysis context is pinned at; later than any
/// spec submission time so ages are non-negative, and constant so runs are
/// reproducible.
pub const ANALYSIS_NOW_NS: u64 = 2_000_000;

/// Which checker rejected a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Defect {
    /// Rejected by `madeleine::constraints::validate_plan`.
    Validation(PlanViolation),
    /// Rejected by the independent capability pass.
    Capability(CapViolation),
}

impl Defect {
    /// Stable label of the defect variant; the minimizer shrinks while
    /// holding this fixed so counterexamples stay on-topic.
    pub fn key(&self) -> &'static str {
        match self {
            Defect::Validation(v) => match v {
                PlanViolation::EmptyPlan => "validation:empty-plan",
                PlanViolation::ZeroLengthChunk => "validation:zero-length-chunk",
                PlanViolation::UnknownChunk => "validation:unknown-chunk",
                PlanViolation::MixedDestinations => "validation:mixed-destinations",
                PlanViolation::WrongRail => "validation:wrong-rail",
                PlanViolation::NonContiguous { .. } => "validation:non-contiguous",
                PlanViolation::Overrun => "validation:overrun",
                PlanViolation::ExpressOrder { .. } => "validation:express-order",
                PlanViolation::RndvBlocked => "validation:rndv-blocked",
                PlanViolation::OverSize { .. } => "validation:oversize",
                PlanViolation::GatherTooWide { .. } => "validation:gather-too-wide",
                PlanViolation::RndvNotNeeded => "validation:rndv-not-needed",
            },
            Defect::Capability(v) => match v {
                CapViolation::PacketExceedsMtu { .. } => "capability:mtu",
                CapViolation::PacketExceedsDriverLimit { .. } => "capability:driver-limit",
                CapViolation::GatherTooWide { .. } => "capability:gather-too-wide",
                CapViolation::MisalignedGather { .. } => "capability:misaligned-gather",
                CapViolation::NoInjectionPath { .. } => "capability:no-injection-path",
                CapViolation::EagerAboveRndvThreshold { .. } => "capability:eager-above-threshold",
                CapViolation::RequestBelowThreshold { .. } => "capability:request-below-threshold",
            },
        }
    }
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defect::Validation(v) => write!(f, "{v}"),
            Defect::Capability(v) => write!(f, "{v}"),
        }
    }
}

/// A rejected plan together with why it was rejected.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The offending plan.
    pub plan: TransferPlan,
    /// The first defect found.
    pub defect: Defect,
}

/// Run both checkers on one plan; `None` means the plan conforms.
pub fn check_plan(
    plan: &TransferPlan,
    collect: &CollectLayer,
    caps: &DriverCapabilities,
    wire_mtu: u64,
    rndv_threshold: u64,
) -> Option<Defect> {
    if let Err(v) = validate_plan(plan, collect, caps, wire_mtu) {
        return Some(Defect::Validation(v));
    }
    if let Err(v) = check_plan_caps(plan, collect, caps, wire_mtu, rndv_threshold) {
        return Some(Defect::Capability(v));
    }
    None
}

/// The effective eager→rendezvous switch point for a profile under a
/// config, mirroring the engine's per-rail resolution.
pub fn effective_rndv_threshold(cfg: &EngineConfig, caps: &DriverCapabilities) -> u64 {
    cfg.rndv_threshold.unwrap_or(caps.rndv_threshold_hint)
}

/// Outcome of replaying one backlog through one strategy.
#[derive(Debug)]
pub struct CheckOutcome {
    /// First non-conforming proposal, if any.
    pub failure: Option<Failure>,
    /// Proposals the strategy emitted.
    pub plans: usize,
}

/// Materialize `spec`, let `strategy` propose plans for it, and check every
/// proposal. Pure with respect to simulator state: no clock, no network.
pub fn check_spec(
    strategy: &dyn Strategy,
    spec: &BacklogSpec,
    caps: &DriverCapabilities,
    cost: &CostModel,
    wire_mtu: u64,
    cfg: &EngineConfig,
) -> CheckOutcome {
    let mut collect = spec.build();
    let groups = collect.collect_candidates(ANALYZED_RAIL, cfg.lookahead_window, |_, _| true);
    if groups.is_empty() {
        return CheckOutcome {
            failure: None,
            plans: 0,
        };
    }
    let ctx = OptContext {
        now: SimTime::from_nanos(ANALYSIS_NOW_NS),
        channel: ANALYZED_RAIL,
        caps,
        cost,
        config: cfg,
        groups: &groups,
        packet_limit: wire_mtu.min(caps.max_packet_bytes),
        rail_count: 1,
        health_penalty: 1.0,
    };
    let mut proposals = Vec::new();
    strategy.propose(&ctx, &mut proposals);
    let plans = proposals.len();
    let threshold = effective_rndv_threshold(cfg, caps);
    for plan in proposals {
        if let Some(defect) = check_plan(&plan, &collect, caps, wire_mtu, threshold) {
            return CheckOutcome {
                failure: Some(Failure { plan, defect }),
                plans,
            };
        }
    }
    CheckOutcome {
        failure: None,
        plans,
    }
}

/// Greedily shrink a failing spec while the strategy keeps producing the
/// same defect class: drop whole messages, drop trailing fragments, clear
/// pre-commits and handshake phases, then halve fragment lengths. Runs to a
/// fixpoint; deterministic.
pub fn minimize(
    strategy: &dyn Strategy,
    spec: &BacklogSpec,
    caps: &DriverCapabilities,
    cost: &CostModel,
    wire_mtu: u64,
    cfg: &EngineConfig,
    key: &str,
) -> BacklogSpec {
    let still_fails = |s: &BacklogSpec| {
        check_spec(strategy, s, caps, cost, wire_mtu, cfg)
            .failure
            .is_some_and(|f| f.defect.key() == key)
    };
    let mut best = spec.clone();
    loop {
        let mut improved = false;

        // Drop whole messages.
        let mut i = 0;
        while i < best.msgs.len() {
            if best.msgs.len() > 1 {
                let mut cand = best.clone();
                cand.msgs.remove(i);
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    continue; // same index now holds the next message
                }
            }
            i += 1;
        }

        for mi in 0..best.msgs.len() {
            // Drop trailing fragments.
            while best.msgs[mi].frags.len() > 1 {
                let mut cand = best.clone();
                cand.msgs[mi].frags.pop();
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                } else {
                    break;
                }
            }
            // Clear snapshot state.
            if best.msgs[mi].precommit > 0 {
                let mut cand = best.clone();
                cand.msgs[mi].precommit = 0;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                }
            }
            if !matches!(best.msgs[mi].rndv_phase, RndvPhase::Pending) {
                let mut cand = best.clone();
                cand.msgs[mi].rndv_phase = RndvPhase::Pending;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                }
            }
            // Shrink fragment lengths: jump to 1, else halve.
            for fi in 0..best.msgs[mi].frags.len() {
                while best.msgs[mi].frags[fi].len > 1 {
                    let mut cand = best.clone();
                    let len = cand.msgs[mi].frags[fi].len;
                    cand.msgs[mi].frags[fi].len = if len > 2 { len / 2 } else { 1 };
                    let mut one = best.clone();
                    one.msgs[mi].frags[fi].len = 1;
                    if still_fails(&one) {
                        best = one;
                        improved = true;
                        break;
                    } else if still_fails(&cand) {
                        best = cand;
                        improved = true;
                    } else {
                        break;
                    }
                }
            }
        }

        if !improved {
            return best;
        }
    }
}

/// Options for a full-registry analysis run.
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Seed for the corpus generator.
    pub seed: u64,
    /// Sampled backlogs per capability profile (templates are always
    /// included on top).
    pub samples: usize,
    /// Engine configuration the strategies run under.
    pub config: EngineConfig,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            seed: 0x6D61_6463_6865_636B, // "madcheck"
            samples: 64,
            config: EngineConfig::default(),
        }
    }
}

/// Capability profiles the analyzer sweeps: every real technology preset
/// plus the synthetic test profile.
pub fn profiles() -> Vec<Technology> {
    let mut v = calib::REAL_TECHNOLOGIES.to_vec();
    v.push(Technology::Synthetic);
    v
}

/// Check every strategy in `registry` against every driver capability
/// profile over the bounded corpus; failures are minimized before they are
/// reported. One finding is reported per strategy × profile (the first),
/// keeping reports readable while a single bug fans out over many specs.
pub fn analyze(registry: &StrategyRegistry, opts: &AnalyzeOptions) -> Report {
    let mut report = Report::new(registry.names().len());
    for (ti, tech) in profiles().into_iter().enumerate() {
        let caps = calib::capabilities(tech);
        let params = calib::params(tech);
        let cost = CostModel::from_params(&params);
        let wire_mtu = params.mtu;
        let threshold = effective_rndv_threshold(&opts.config, &caps);
        let specs = corpus(
            opts.seed
                .wrapping_add(ti as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            threshold,
            &caps,
            wire_mtu,
            opts.samples,
        );
        report.profiles += 1;
        for strategy in registry.iter() {
            for spec in &specs {
                report.cases += 1;
                let outcome = check_spec(strategy, spec, &caps, &cost, wire_mtu, &opts.config);
                report.plans += outcome.plans;
                if let Some(failure) = outcome.failure {
                    let key = failure.defect.key();
                    let minimized =
                        minimize(strategy, spec, &caps, &cost, wire_mtu, &opts.config, key);
                    // Re-derive the defect on the minimized spec so the
                    // reported plan matches the reported backlog.
                    let shrunk =
                        check_spec(strategy, &minimized, &caps, &cost, wire_mtu, &opts.config)
                            .failure
                            .unwrap_or(failure);
                    report.findings.push(Finding {
                        strategy: strategy.name(),
                        tech,
                        defect: shrunk.defect,
                        plan: format!("{:?}", shrunk.plan),
                        spec: minimized,
                    });
                    break; // next strategy; one finding per strategy × profile
                }
            }
        }
    }
    report
}
