//! Synthetic backlog descriptions and their materialization.
//!
//! A [`BacklogSpec`] is a small, plain-data description of a collect-layer
//! state: which messages are queued, how they fragment, which fragments are
//! express, how far the first fragment has already been committed, and
//! where each rendezvous-eligible fragment sits in its handshake. Specs are
//! what the corpus generator enumerates, what the analyzer replays, and
//! what the minimizer shrinks — keeping counterexamples printable and
//! replayable.

use madeleine::collect::CollectLayer;
use madeleine::ids::{ChannelId, TrafficClass};
use madeleine::message::{MessageBuilder, PackMode};
use madeleine::plan::PlannedChunk;
use simnet::{NodeId, SimTime};

/// The rail every spec is analyzed (and pre-committed) on.
pub const ANALYZED_RAIL: ChannelId = ChannelId(0);

/// Traffic classes a spec may reference, by index.
pub const CLASSES: [TrafficClass; 4] = [
    TrafficClass::DEFAULT,
    TrafficClass::BULK,
    TrafficClass::PUT_GET,
    TrafficClass::CONTROL,
];

/// One fragment of a synthetic message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragSpec {
    /// Payload length in bytes (clamped to at least 1 at build time).
    pub len: u32,
    /// Whether the fragment is express (ordering-constrained).
    pub express: bool,
}

/// Where a rendezvous-eligible fragment sits in its handshake when the
/// backlog snapshot is taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RndvPhase {
    /// Still needs a request packet.
    Pending,
    /// Request sent, grant outstanding.
    Requested,
    /// Grant received; data may move.
    Granted,
}

/// One queued message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsgSpec {
    /// Destination selector (distinct values → distinct nodes).
    pub dst: u8,
    /// Index into [`CLASSES`] (taken modulo its length).
    pub class: u8,
    /// Fragments in pack order.
    pub frags: Vec<FragSpec>,
    /// Bytes of fragment 0 already committed on [`ANALYZED_RAIL`] when the
    /// snapshot is taken (clamped to the fragment; skipped for
    /// rendezvous-gated fragments, which may not have committed bytes).
    pub precommit: u32,
    /// Handshake phase applied to every rendezvous-eligible fragment of
    /// this message.
    pub rndv_phase: RndvPhase,
}

/// A complete backlog snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BacklogSpec {
    /// Queued messages, each on its own flow.
    pub msgs: Vec<MsgSpec>,
    /// Eager→rendezvous switch point used at submission.
    pub rndv_threshold: u64,
}

impl BacklogSpec {
    /// Materialize the spec as a live collect layer. Deterministic: equal
    /// specs produce equal layers.
    pub fn build(&self) -> CollectLayer {
        let mut collect = CollectLayer::new();
        for (i, m) in self.msgs.iter().enumerate() {
            let class = CLASSES[m.class as usize % CLASSES.len()];
            let flow = collect.open_flow(NodeId(u32::from(m.dst) + 1), class);
            let mut b = MessageBuilder::new();
            for f in &m.frags {
                let mode = if f.express {
                    PackMode::Express
                } else {
                    PackMode::Cheaper
                };
                b = b.pack(&vec![0u8; f.len.max(1) as usize], mode);
            }
            // Staggered submission times keep age-based tie-breaks stable.
            let submitted = SimTime::from_nanos(i as u64 * 1_000);
            let id = collect.submit(flow, b.build_parts(), submitted, self.rndv_threshold);

            // Advance rendezvous-eligible fragments to the requested phase.
            let frag_count = self.msgs[i].frags.len();
            for j in 0..frag_count {
                let gated = {
                    let msg = collect.find_msg(flow, id.seq.0).expect("just submitted");
                    msg.frags[j].rndv_blocked()
                };
                if gated {
                    match m.rndv_phase {
                        RndvPhase::Pending => {}
                        RndvPhase::Requested => {
                            collect.mark_rndv_requested(flow, id.seq.0, j as u16);
                        }
                        RndvPhase::Granted => {
                            collect.mark_rndv_requested(flow, id.seq.0, j as u16);
                            collect.grant_rndv(flow, id.seq.0, j as u16);
                        }
                    }
                }
            }

            // Pre-commit a prefix of fragment 0 to model a mid-transfer
            // snapshot (gives strategies non-zero frontier offsets).
            if m.precommit > 0 {
                let (len, gated) = {
                    let msg = collect.find_msg(flow, id.seq.0).expect("just submitted");
                    (msg.frags[0].len(), msg.frags[0].rndv_blocked())
                };
                let take = m.precommit.min(len.saturating_sub(1));
                if take > 0 && !gated {
                    collect.commit_chunk(
                        &PlannedChunk {
                            flow,
                            seq: id.seq.0,
                            frag: 0,
                            offset: 0,
                            len: take,
                        },
                        ANALYZED_RAIL,
                    );
                }
            }
        }
        collect
    }

    /// Total payload bytes across all messages (reporting aid).
    pub fn payload_bytes(&self) -> u64 {
        self.msgs
            .iter()
            .flat_map(|m| m.frags.iter())
            .map(|f| u64::from(f.len.max(1)))
            .sum()
    }
}

impl std::fmt::Display for BacklogSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "rndv_threshold = {}", self.rndv_threshold)?;
        for (i, m) in self.msgs.iter().enumerate() {
            let class = CLASSES[m.class as usize % CLASSES.len()];
            write!(f, "msg {i}: dst {} class {:?} frags [", m.dst, class)?;
            for (j, fr) in m.frags.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(
                    f,
                    "{}B {}",
                    fr.len.max(1),
                    if fr.express { "express" } else { "cheaper" }
                )?;
            }
            write!(f, "]")?;
            if m.precommit > 0 {
                write!(f, " precommit={}", m.precommit)?;
            }
            if !matches!(m.rndv_phase, RndvPhase::Pending) {
                write!(f, " rndv={:?}", m.rndv_phase)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(frags: Vec<FragSpec>) -> MsgSpec {
        MsgSpec {
            dst: 0,
            class: 0,
            frags,
            precommit: 0,
            rndv_phase: RndvPhase::Pending,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let spec = BacklogSpec {
            msgs: vec![msg(vec![
                FragSpec {
                    len: 64,
                    express: true,
                },
                FragSpec {
                    len: 300,
                    express: false,
                },
            ])],
            rndv_threshold: 1 << 20,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.backlog_bytes(), b.backlog_bytes());
        assert_eq!(a.backlog_bytes(), 364);
    }

    #[test]
    fn precommit_moves_candidate_frontier() {
        let spec = BacklogSpec {
            msgs: vec![MsgSpec {
                dst: 0,
                class: 0,
                frags: vec![FragSpec {
                    len: 100,
                    express: false,
                }],
                precommit: 37,
                rndv_phase: RndvPhase::Pending,
            }],
            rndv_threshold: 1 << 20,
        };
        let mut c = spec.build();
        let groups = c.collect_candidates(ANALYZED_RAIL, 64, |_, _| true);
        assert_eq!(groups[0].candidates[0].offset, 37);
        assert_eq!(groups[0].candidates[0].remaining, 63);
    }

    #[test]
    fn rndv_phases_materialize() {
        let mk = |phase| BacklogSpec {
            msgs: vec![MsgSpec {
                dst: 0,
                class: 1,
                frags: vec![FragSpec {
                    len: 1 << 16,
                    express: false,
                }],
                precommit: 0,
                rndv_phase: phase,
            }],
            rndv_threshold: 1 << 10,
        };
        let mut pending = mk(RndvPhase::Pending).build();
        let groups = pending.collect_candidates(ANALYZED_RAIL, 64, |_, _| true);
        assert_eq!(groups[0].rndv.len(), 1);
        assert!(groups[0].candidates.is_empty());

        let mut granted = mk(RndvPhase::Granted).build();
        let groups = granted.collect_candidates(ANALYZED_RAIL, 64, |_, _| true);
        assert!(groups[0].rndv.is_empty());
        assert_eq!(groups[0].candidates.len(), 1);
    }
}
