//! Conformance rule for the strategy applicability mask.
//!
//! [`DriverCapabilities::strategy_mask`] is an *analytic claim*: given
//! only the capability descriptor, it names the strategies that can ever
//! produce a driver-acceptable plan. The optimizer trusts the claim — a
//! masked-out strategy is skipped before the proposal sweep — so a wrong
//! mask either changes plan selection (a bit cleared that should be set
//! never gets that wrong: the skipped strategy had valid plans) or keeps
//! dead weight in the sweep (a bit set that never fires).
//!
//! This module re-derives the claim empirically, per capability profile,
//! by replaying the same bounded backlog corpus the conformance analyzer
//! uses through the **unmasked** sweep:
//!
//! * **soundness** — a strategy outside the effective mask must emit
//!   zero valid plans across the whole corpus; otherwise the mask filter
//!   would have removed a real contender and selection would differ;
//! * **completeness** — a strategy inside the mask must emit at least
//!   one valid plan somewhere in the corpus; otherwise the bit (or the
//!   corpus) is vacuous and the claim is untested.
//!
//! Custom (user-registered) strategies have no mask bit; the mask makes
//! no claim about them and the sweep always consults them, so they are
//! skipped here.

use madeleine::config::EngineConfig;
use madeleine::strategy::{effective_strategy_mask, StrategyMask, StrategyRegistry};
use nicdrv::{calib, CostModel};
use simnet::Technology;

use crate::analyzer::{check_spec, effective_rndv_threshold, profiles, AnalyzeOptions};
use crate::corpus::corpus;

/// One mask/sweep disagreement.
#[derive(Clone, Debug)]
pub struct MaskFinding {
    /// Capability profile the disagreement occurred on.
    pub tech: Technology,
    /// The strategy whose bit is wrong.
    pub strategy: &'static str,
    /// Whether the effective mask claims the strategy applicable.
    pub masked_in: bool,
    /// Valid plans the unmasked sweep observed over the corpus.
    pub valid_plans: usize,
}

impl std::fmt::Display for MaskFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.masked_in {
            write!(
                f,
                "{:?}: mask claims `{}` applicable but the sweep produced no valid plan \
                 (vacuous bit or corpus gap)",
                self.tech, self.strategy
            )
        } else {
            write!(
                f,
                "{:?}: mask skips `{}` but the sweep produced {} valid plan(s) — \
                 filtering would change selection",
                self.tech, self.strategy, self.valid_plans
            )
        }
    }
}

/// Aggregate result of a mask conformance sweep.
#[derive(Clone, Debug)]
pub struct MaskReport {
    /// Capability profiles swept.
    pub profiles: usize,
    /// Strategy × profile pairs checked.
    pub cases: usize,
    /// Valid plans observed across all sweeps.
    pub plans: usize,
    /// Disagreements, in discovery order.
    pub findings: Vec<MaskFinding>,
}

impl MaskReport {
    /// True when the mask matches the observed sweep everywhere.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for MaskReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck mask: {} profiles, {} strategy cases, {} valid plans observed",
            self.profiles, self.cases, self.plans
        )?;
        if self.is_clean() {
            writeln!(f, "conformant: strategy mask equals the observed sweep")?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "MASK FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// Check the registry's standard strategies against the precomputed mask
/// on every capability profile, over the same deterministic corpus the
/// conformance analyzer replays (same seed derivation, same samples).
pub fn mask_check(registry: &StrategyRegistry, opts: &AnalyzeOptions) -> MaskReport {
    let mut report = MaskReport {
        profiles: 0,
        cases: 0,
        plans: 0,
        findings: Vec::new(),
    };
    for (ti, tech) in profiles().into_iter().enumerate() {
        let caps = calib::capabilities(tech);
        let params = calib::params(tech);
        let cost = CostModel::from_params(&params);
        let wire_mtu = params.mtu;
        let threshold = effective_rndv_threshold(&opts.config, &caps);
        let specs = corpus(
            opts.seed
                .wrapping_add(ti as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            threshold,
            &caps,
            wire_mtu,
            opts.samples,
        );
        let mask = effective_strategy_mask(&opts.config, &caps);
        report.profiles += 1;
        for strategy in registry.iter() {
            // The mask claims nothing about custom strategies.
            let Some(bit) = StrategyMask::for_name(strategy.name()) else {
                continue;
            };
            report.cases += 1;
            let mut valid_plans = 0usize;
            for spec in &specs {
                let outcome = check_spec(strategy, spec, &caps, &cost, wire_mtu, &opts.config);
                // Invalid proposals are the capability analyzer's
                // department; the mask only claims valid ones.
                if outcome.failure.is_none() {
                    valid_plans += outcome.plans;
                }
            }
            report.plans += valid_plans;
            if mask.contains(bit) != (valid_plans > 0) {
                report.findings.push(MaskFinding {
                    tech,
                    strategy: strategy.name(),
                    masked_in: mask.contains(bit),
                    valid_plans,
                });
            }
        }
    }
    report
}

/// [`mask_check`] with the standard registry (every strategy toggled on)
/// and default options — what `cargo xtask analyze` runs.
pub fn mask_check_standard() -> MaskReport {
    let mut cfg = EngineConfig::default();
    cfg.enable_rndv = true;
    cfg.enable_aggregation = true;
    cfg.enable_gather = true;
    cfg.enable_reorder = true;
    cfg.enable_split = true;
    let registry = StrategyRegistry::standard(&cfg);
    let opts = AnalyzeOptions {
        config: cfg,
        ..AnalyzeOptions::default()
    };
    mask_check(&registry, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_mask_matches_sweep_on_all_profiles() {
        let report = mask_check_standard();
        assert!(report.profiles >= 6, "all technologies swept");
        assert!(report.plans > 0, "sweep observed plans");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn rndv_is_masked_out_on_tcp() {
        let cfg = EngineConfig::default();
        let caps = calib::capabilities(Technology::TcpEthernet);
        let mask = effective_strategy_mask(&cfg, &caps);
        assert!(!mask.contains(StrategyMask::RNDV));
        // And a config override flips it back on.
        let mut cfg = cfg;
        cfg.rndv_threshold = Some(16 << 10);
        let mask = effective_strategy_mask(&cfg, &caps);
        assert!(mask.contains(StrategyMask::RNDV));
    }

    #[test]
    fn a_wrong_mask_is_detected() {
        // Sweep a registry whose only strategy is rendezvous promotion on
        // a config that pins a finite threshold: every profile has the
        // RNDV bit set, so if the corpus never exercised rendezvous the
        // completeness direction would flag it — and on the default
        // corpus it must instead observe plans and stay clean. The
        // soundness direction is covered by TCP in the standard sweep
        // (RNDV masked out, zero valid plans observed).
        let mut cfg = EngineConfig::default();
        cfg.enable_rndv = true;
        cfg.enable_aggregation = false;
        cfg.enable_reorder = false;
        cfg.enable_split = false;
        cfg.rndv_threshold = Some(8 << 10);
        let registry = StrategyRegistry::standard(&cfg);
        let opts = AnalyzeOptions {
            config: cfg,
            ..AnalyzeOptions::default()
        };
        let report = mask_check(&registry, &opts);
        assert!(report.is_clean(), "{report}");
        assert!(report.plans > 0, "rendezvous plans observed under override");
    }
}
