//! Conformance rule for the madflow active-flow index: the incremental
//! counters and sets in [`madeleine::flowmgr::FlowIndex`] must always
//! agree with a brute-force walk of the flow table — the O(full-table)
//! scan the index exists to replace. A drifting index is silent data
//! corruption: `collect_candidates` skips flows it believes idle, and
//! admission control budgets against backlog bytes that do not exist.
//!
//! Like the other madcheck rules the verdict is re-derived independently
//! over the seeded backlog corpus, then re-checked after every mutating
//! operation the collect layer exposes (candidate collection under both
//! fairness modes, per-class shedding, fresh submits).

use std::collections::BTreeSet;

use madeleine::collect::CollectLayer;
use madeleine::flowmgr::{class_slot, FairnessMode, CLASS_SLOTS};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use nicdrv::calib;
use simnet::SimTime;

use crate::backlog::ANALYZED_RAIL;
use crate::corpus::corpus;

/// Everything the index claims, recomputed two ways.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Snapshot {
    backlog: u64,
    by_class: [u64; CLASS_SLOTS],
    pending: u64,
    active: BTreeSet<u32>,
    class_sets: [BTreeSet<u32>; CLASS_SLOTS],
}

/// What the incremental index reports (O(1) reads).
fn indexed(c: &CollectLayer) -> Snapshot {
    let ix = c.index();
    let mut by_class = [0u64; CLASS_SLOTS];
    let mut class_sets: [BTreeSet<u32>; CLASS_SLOTS] = Default::default();
    for (slot, (bytes, set)) in by_class.iter_mut().zip(&mut class_sets).enumerate() {
        *bytes = ix.class_backlog_bytes(slot);
        *set = ix.class_ids(slot).collect();
    }
    Snapshot {
        backlog: ix.backlog_bytes(),
        by_class,
        pending: ix.pending_msgs(),
        active: ix.active_ids().collect(),
        class_sets,
    }
}

/// The same facts from a full walk of every flow and queue.
fn brute_force(c: &CollectLayer) -> Snapshot {
    let mut s = Snapshot {
        backlog: 0,
        by_class: [0; CLASS_SLOTS],
        pending: 0,
        active: BTreeSet::new(),
        class_sets: Default::default(),
    };
    for f in c.flows() {
        let slot = class_slot(f.class);
        for m in &f.queue {
            let b = m.backlog_bytes();
            s.backlog += b;
            s.by_class[slot] += b;
            s.pending += 1;
        }
        if !f.queue.is_empty() {
            s.active.insert(f.id.0);
            s.class_sets[slot].insert(f.id.0);
        }
    }
    s
}

/// Human-readable differences between the index's claims and the walk.
fn diff(ctx: &str, index: &Snapshot, walk: &Snapshot) -> Vec<String> {
    let mut out = Vec::new();
    if index.backlog != walk.backlog {
        out.push(format!(
            "{ctx}: index backlog {} bytes, full walk {} bytes",
            index.backlog, walk.backlog
        ));
    }
    if index.pending != walk.pending {
        out.push(format!(
            "{ctx}: index pending {} msgs, full walk {} msgs",
            index.pending, walk.pending
        ));
    }
    if index.active != walk.active {
        out.push(format!(
            "{ctx}: index active set {:?}, full walk {:?}",
            index.active, walk.active
        ));
    }
    for slot in 0..CLASS_SLOTS {
        if index.by_class[slot] != walk.by_class[slot] {
            out.push(format!(
                "{ctx}: class {slot} index backlog {} bytes, full walk {} bytes",
                index.by_class[slot], walk.by_class[slot]
            ));
        }
        if index.class_sets[slot] != walk.class_sets[slot] {
            out.push(format!(
                "{ctx}: class {slot} index set {:?}, full walk {:?}",
                index.class_sets[slot], walk.class_sets[slot]
            ));
        }
    }
    out
}

/// Aggregate result of a flow-index conformance check.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Corpus backlogs replayed.
    pub specs: usize,
    /// Index-vs-walk comparisons performed.
    pub checks: usize,
    /// Messages shed while exercising the removal path.
    pub shed: usize,
    /// Violations, in discovery order.
    pub findings: Vec<String>,
}

impl FlowReport {
    /// True when the index never disagreed with the full walk.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck flow: {} backlogs, {} index-vs-walk comparisons, {} messages shed",
            self.specs, self.checks, self.shed
        )?;
        if self.is_clean() {
            writeln!(f, "conformant: the active-flow index matches a full walk")?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "FLOW FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// One audit point: compare both derivations, record differences.
fn audit(c: &CollectLayer, ctx: &str, report: &mut FlowReport) {
    report.checks += 1;
    let findings = diff(ctx, &indexed(c), &brute_force(c));
    if report.findings.len() < 32 {
        report.findings.extend(findings);
    }
}

/// Replay the seeded corpus through every index-mutating operation,
/// auditing after each step.
pub fn flow_check(seed: u64, samples: usize) -> FlowReport {
    let caps = calib::synthetic_capabilities();
    let specs = corpus(seed, caps.rndv_threshold_hint, &caps, 1 << 20, samples);
    let mut report = FlowReport {
        specs: specs.len(),
        checks: 0,
        shed: 0,
        findings: Vec::new(),
    };
    for (i, spec) in specs.iter().enumerate() {
        for mode in [FairnessMode::PackOrder, FairnessMode::Drr] {
            let mut c = spec.build();
            if mode == FairnessMode::Drr {
                c.set_fairness(FairnessMode::Drr, 2048, [1; CLASS_SLOTS]);
            }
            audit(&c, &format!("spec {i} {mode:?} fresh"), &mut report);

            // Candidate collection must not disturb the index.
            let _ = c.collect_candidates(ANALYZED_RAIL, 64, |_, _| true);
            audit(&c, &format!("spec {i} {mode:?} after collect"), &mut report);

            // Shed a little from every class: exercises note_remove,
            // including flows whose queue empties.
            for slot in 0..CLASS_SLOTS {
                let shed = c.shed_oldest(TrafficClass(slot as u8), 96);
                report.shed += shed.len();
            }
            audit(&c, &format!("spec {i} {mode:?} after shed"), &mut report);

            // A fresh submit on a (possibly re-idled) flow re-activates it.
            if !c.flows().is_empty() {
                let flow = c.flows()[0].id;
                let parts = MessageBuilder::new().pack_cheaper(&[7u8; 96]).build_parts();
                c.submit(flow, parts, SimTime::from_nanos(1), 1 << 30);
                audit(&c, &format!("spec {i} {mode:?} after submit"), &mut report);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_index_always_matches_full_walk() {
        let r = flow_check(42, 60);
        assert!(r.is_clean(), "{r}");
        assert!(r.specs > 60, "templates plus samples: {}", r.specs);
        assert!(r.checks >= r.specs * 2, "audits per spec: {}", r.checks);
        assert!(r.shed > 0, "the shed path must actually run");
    }

    #[test]
    fn flow_check_is_deterministic() {
        let a = flow_check(7, 25);
        let b = flow_check(7, 25);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.findings, b.findings);
    }

    #[test]
    fn diff_reports_every_divergence_kind() {
        let clean = Snapshot {
            backlog: 10,
            by_class: [10, 0, 0, 0],
            pending: 1,
            active: BTreeSet::from([3]),
            class_sets: [
                BTreeSet::from([3]),
                BTreeSet::new(),
                BTreeSet::new(),
                BTreeSet::new(),
            ],
        };
        assert!(diff("x", &clean, &clean).is_empty());
        let mut broken = clean.clone();
        broken.backlog = 11;
        broken.pending = 2;
        broken.active.insert(9);
        broken.by_class[1] = 5;
        broken.class_sets[1].insert(9);
        let out = diff("x", &broken, &clean);
        assert_eq!(out.len(), 5, "{out:?}");
        assert!(out.iter().all(|l| l.starts_with("x: ")));
    }
}
