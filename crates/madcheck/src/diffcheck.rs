//! Conformance rule for maddiff run comparison: over a seeded corpus of
//! live traced workloads, (1) diffing a run against an identically
//! seeded re-run must be **exactly zero** in every field — no aligned
//! delta, no unmatched message, no migration, no critical-path or
//! decision divergence; (2) diffing against a deliberately perturbed
//! configuration (a doubled Nagle delay) must keep the delta-partition
//! invariant — each aligned message's six per-phase deltas sum exactly
//! to its latency delta — and report only submitted-elsewhere reasons
//! for unmatched traffic; and (3) the rendered diff report and JSON
//! must be byte-identical across repeated comparisons. A differ that
//! finds phantom deltas in identical runs, or whose phase deltas leak
//! nanoseconds, would steer every regression hunt toward noise.

use madeleine::diff::diff;
use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, MessageBuilder, PolicyKind, ReliabilityMode, RunSnapshot};
use simnet::{FaultPlan, SimTime, SplitMix64, Technology};

/// Event-ring capacity for corpus clusters; overflow would silently
/// weaken the check, so snapshots are also asserted un-truncated.
const RING_CAP: usize = 1 << 14;

/// Aggregate result of a maddiff conformance check.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Corpus workloads diffed.
    pub samples: usize,
    /// Aligned message pairs whose delta partition was verified.
    pub aligned: usize,
    /// Aligned pairs in the perturbed comparisons with a nonzero delta
    /// (the perturbation must actually move something).
    pub moved: usize,
    /// Violations, in discovery order.
    pub findings: Vec<String>,
}

impl DiffReport {
    /// True when every diff behaved.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck diff: {} workloads, {} aligned pairs, {} moved under perturbation",
            self.samples, self.aligned, self.moved
        )?;
        if self.is_clean() {
            writeln!(
                f,
                "conformant: self-diffs are exactly zero and every phase delta partitions"
            )?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "DIFF FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// Build, drive and drain one seeded corpus workload. `perturb` arms a
/// 2 µs Nagle delay (the default is zero) — a pure-configuration change
/// that shifts decision and queueing time without altering which
/// messages exist, so every message still aligns. Odd-indexed samples
/// also run madrel `Recover` under a seeded loss fault plan so the
/// `retx_recovery` phase carries weight in the deltas.
fn build_sample(seed: u64, idx: usize, perturb: bool) -> Cluster {
    let mut rng = SplitMix64::new(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let faulty = idx % 2 == 1;
    let mut config = EngineConfig::default();
    if faulty {
        config.reliability = ReliabilityMode::Recover;
    }
    if perturb {
        config.nagle_delay = simnet::SimDuration::from_micros(2);
    }
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: Some(RING_CAP),
        engine_trace: Some(RING_CAP),
    };
    let mut c = Cluster::build(&spec, vec![]);
    if faulty {
        c.set_fault_plan(
            0,
            FaultPlan::new(seed.wrapping_add(idx as u64)).with_loss(0.02),
        );
    }
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let classes = [TrafficClass::DEFAULT, TrafficClass::BULK];
    let flows: Vec<_> = classes.iter().map(|&cl| h.open_flow(dst, cl)).collect();
    let msgs = 8 + rng.next_below(8);
    let mut t_ns = 0u64;
    for _ in 0..msgs {
        t_ns += [0, 400, 2_500][rng.next_below(3) as usize];
        let flow = flows[rng.next_below(flows.len() as u64) as usize];
        let body = [64usize, 512, 4_096][rng.next_below(3) as usize];
        c.sim.run_until(SimTime::from_nanos(t_ns));
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new()
                    .pack_cheaper(&vec![0x6Bu8; body])
                    .build_parts(),
            )
        });
    }
    c.drain();
    c
}

fn snapshot(seed: u64, idx: usize, perturb: bool, label: &str) -> RunSnapshot {
    build_sample(seed, idx, perturb).run_snapshot(label)
}

/// Replay the seeded corpus, verifying self-diff zero, report
/// determinism and the perturbed delta partition.
pub fn diff_check(seed: u64, samples: usize) -> DiffReport {
    let mut report = DiffReport {
        samples,
        aligned: 0,
        moved: 0,
        findings: Vec::new(),
    };
    for idx in 0..samples {
        let ctx = format!("sample {idx}");
        let base = snapshot(seed, idx, false, "base");
        if base.truncated() {
            report.findings.push(format!(
                "{ctx}: event ring overflowed ({} dropped)",
                base.dropped_events
            ));
            continue;
        }

        // (1) Identically seeded re-run: the diff must be exactly zero,
        // and the snapshot itself must not move a byte.
        let again = snapshot(seed, idx, false, "base");
        if base.to_json().render() != again.to_json().render() {
            report.findings.push(format!(
                "{ctx}: same-seed replay changed the snapshot bytes"
            ));
        }
        let zero = diff(&base, &again);
        if !zero.is_zero() {
            report.findings.push(format!(
                "{ctx}: self-diff is not zero ({} aligned deltas, {} unmatched, report:\n{})",
                zero.aligned.iter().filter(|m| m.delta_ns != 0).count(),
                zero.unmatched.len(),
                zero.report(3)
            ));
        }

        // (2) Perturbed configuration: every aligned pair's phase
        // deltas must sum exactly to its latency delta, independently
        // of the differ's own violation counter.
        let perturbed = snapshot(seed, idx, true, "perturbed");
        let d = diff(&base, &perturbed);
        if d.partition_violations != 0 {
            report.findings.push(format!(
                "{ctx}: differ counted {} partition violations",
                d.partition_violations
            ));
        }
        for m in &d.aligned {
            report.aligned += 1;
            if m.delta_ns != 0 {
                report.moved += 1;
            }
            let sum: i64 = m.phase_deltas.iter().sum();
            if sum != m.delta_ns {
                report.findings.push(format!(
                    "{ctx}: {} phase deltas sum to {sum} ns but latency delta is {} ns",
                    m.key, m.delta_ns
                ));
            }
        }
        for u in &d.unmatched {
            if !u.reason.contains("never") {
                report.findings.push(format!(
                    "{ctx}: unmatched {} carries no provenance reason: {}",
                    u.key, u.reason
                ));
            }
        }

        // (3) Repeating the comparison must reproduce the report and
        // the JSON byte-for-byte.
        let d2 = diff(&base, &perturbed);
        if d.report(5) != d2.report(5) || d.to_json().render() != d2.to_json().render() {
            report.findings.push(format!(
                "{ctx}: repeated comparison changed the diff report bytes"
            ));
        }
        if report.findings.len() >= 32 {
            break; // a systematic differ bug needs no full listing
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_diffs_conform() {
        let r = diff_check(42, 6);
        assert!(r.is_clean(), "{r}");
        assert!(r.aligned >= 6 * 8, "aligned pairs checked: {}", r.aligned);
        assert!(
            r.moved > 0,
            "doubling the Nagle delay must move at least one latency"
        );
    }

    #[test]
    fn diff_check_is_deterministic() {
        let a = diff_check(7, 4);
        let b = diff_check(7, 4);
        assert_eq!(a.aligned, b.aligned);
        assert_eq!(a.moved, b.moved);
        assert_eq!(a.findings, b.findings);
    }

    /// The verifier must catch a leaking partition: corrupt one phase
    /// delta's underlying snapshot row and the sum check fires.
    #[test]
    fn corrupted_delta_partition_is_flagged() {
        let base = snapshot(3, 0, false, "base");
        let mut bent = snapshot(3, 0, false, "bent");
        // Inflate one row's wire phase without touching its lifetime:
        // the per-message partition inside the snapshot breaks, so the
        // diff against the honest base must flag it.
        let row = &mut bent.rows[0];
        let wire = madeleine::Phase::Wire.rank() as usize;
        row.phases[wire] += 5;
        let d = diff(&base, &bent);
        let mut report = DiffReport {
            samples: 1,
            aligned: 0,
            moved: 0,
            findings: Vec::new(),
        };
        for m in &d.aligned {
            report.aligned += 1;
            let sum: i64 = m.phase_deltas.iter().sum();
            if sum != m.delta_ns {
                report
                    .findings
                    .push(format!("{} leaks {} ns", m.key, sum - m.delta_ns));
            }
        }
        assert!(!report.is_clean());
        assert!(report.findings[0].contains("leaks 5 ns"), "{report}");
    }
}
