//! Bounded-exhaustive backlog corpus: fixed edge-case templates plus a
//! seeded sampled tail.
//!
//! The corpus is deterministic — same seed, same capability profile, same
//! corpus — so a finding reported by CI reproduces locally byte-for-byte.
//! Templates pin the shapes that historically break schedulers (gather
//! pressure, express gating, mid-transfer frontiers, handshake phases);
//! the sampled tail walks the wider product space of flow counts, sizes,
//! classes and pack modes.

use nicdrv::DriverCapabilities;
use simnet::SplitMix64;

use crate::backlog::{BacklogSpec, FragSpec, MsgSpec, RndvPhase};

fn msg(dst: u8, class: u8, frags: Vec<FragSpec>) -> MsgSpec {
    MsgSpec {
        dst,
        class,
        frags,
        precommit: 0,
        rndv_phase: RndvPhase::Pending,
    }
}

fn cheaper(len: u32) -> FragSpec {
    FragSpec {
        len,
        express: false,
    }
}

fn express(len: u32) -> FragSpec {
    FragSpec { len, express: true }
}

/// Edge-case templates for one capability profile.
fn templates(rndv_threshold: u64, caps: &DriverCapabilities, wire_mtu: u64) -> Vec<BacklogSpec> {
    let thr = rndv_threshold;
    let spec = |msgs: Vec<MsgSpec>| BacklogSpec {
        msgs,
        rndv_threshold: thr,
    };
    let pio = caps.pio_max_bytes.min(u64::from(u32::MAX) - 1) as u32;
    let big_eager = (thr.saturating_sub(1))
        .min(wire_mtu / 2)
        .min(u64::from(u32::MAX))
        .max(1) as u32;
    let mut out = vec![
        // Singleton and the aggregation bread-and-butter.
        spec(vec![msg(0, 0, vec![cheaper(64)])]),
        spec((0..4).map(|_| msg(0, 0, vec![cheaper(64)])).collect()),
        // Express header gating a body.
        spec(vec![msg(0, 0, vec![express(16), cheaper(512)])]),
        // Middle-express sandwich.
        spec(vec![msg(
            0,
            2,
            vec![cheaper(128), express(8), cheaper(128)],
        )]),
        // Gather-width pressure: more small flows than any gather list.
        spec(
            (0..12)
                .map(|_| msg(0, 0, vec![cheaper(1024.min(big_eager))]))
                .collect(),
        ),
        // Mid-transfer frontier on a large fragment.
        spec(vec![MsgSpec {
            dst: 0,
            class: 0,
            frags: vec![cheaper(big_eager.max(64))],
            precommit: 37,
            rndv_phase: RndvPhase::Pending,
        }]),
        // Two destinations with interleaved classes.
        spec(vec![
            msg(0, 1, vec![cheaper(256)]),
            msg(1, 3, vec![cheaper(32)]),
            msg(0, 0, vec![cheaper(700)]),
        ]),
        // PIO boundary straddle.
        spec(vec![
            msg(0, 0, vec![cheaper(pio.max(2) - 1)]),
            msg(0, 0, vec![cheaper(7)]),
        ]),
    ];
    // Rendezvous handshake phases, when the profile has a finite threshold.
    if thr < u64::from(u32::MAX) {
        let big = thr.max(1) as u32;
        for phase in [RndvPhase::Pending, RndvPhase::Requested, RndvPhase::Granted] {
            out.push(spec(vec![
                MsgSpec {
                    dst: 0,
                    class: 1,
                    frags: vec![cheaper(big)],
                    precommit: 0,
                    rndv_phase: phase,
                },
                msg(0, 0, vec![cheaper(64)]),
            ]));
        }
        // Express fragment stuck in rendezvous gates the rest of its message.
        out.push(spec(vec![msg(0, 0, vec![express(big), cheaper(64)])]));
        // Post-grant streaming: a granted fragment at least as large as a
        // whole packet must be chunkable — the rendezvous-path workload
        // bulk chunking exists for. Without it, profiles whose threshold
        // sits below half the packet budget would never show a
        // chunk-eligible candidate.
        let jumbo = wire_mtu
            .max(thr)
            .min(2 << 20)
            .min(u64::from(u32::MAX))
            .max(1) as u32;
        out.push(spec(vec![MsgSpec {
            dst: 0,
            class: 1,
            frags: vec![cheaper(jumbo)],
            precommit: 0,
            rndv_phase: RndvPhase::Granted,
        }]));
    }
    out
}

/// Generate the corpus for one capability profile: all templates plus
/// `samples` seeded random backlogs.
pub fn corpus(
    seed: u64,
    rndv_threshold: u64,
    caps: &DriverCapabilities,
    wire_mtu: u64,
    samples: usize,
) -> Vec<BacklogSpec> {
    let mut out = templates(rndv_threshold, caps, wire_mtu);
    let mut rng = SplitMix64::new(seed);
    // Cap fragment sizes so materialized backlogs stay small (payloads are
    // real allocations); sizes beyond the MTU still exercise chunking.
    let len_cap = wire_mtu.min(2 << 20).max(2) as u32;
    let pio = caps.pio_max_bytes.clamp(2, u64::from(len_cap)) as u32;
    let quarter_mtu = (wire_mtu / 4).clamp(1, u64::from(len_cap)) as u32;
    let rndv32 = rndv_threshold.min(u64::from(len_cap)) as u32;
    let palette: Vec<u32> = [
        1,
        7,
        64,
        300,
        1024,
        pio - 1,
        pio,
        pio + 1,
        quarter_mtu,
        rndv32,
    ]
    .into_iter()
    .filter(|&n| n > 0)
    .collect();
    for _ in 0..samples {
        let msg_count = 1 + rng.next_below(4) as usize;
        let mut msgs = Vec::with_capacity(msg_count);
        for _ in 0..msg_count {
            let frag_count = 1 + rng.next_below(3) as usize;
            let frags = (0..frag_count)
                .map(|_| FragSpec {
                    len: palette[rng.next_below(palette.len() as u64) as usize],
                    express: rng.next_below(4) == 0,
                })
                .collect::<Vec<_>>();
            let precommit = if rng.next_below(4) == 0 {
                1 + rng.next_below(u64::from(frags[0].len)) as u32
            } else {
                0
            };
            msgs.push(MsgSpec {
                dst: rng.next_below(2) as u8,
                class: rng.next_below(4) as u8,
                frags,
                precommit,
                rndv_phase: match rng.next_below(3) {
                    0 => RndvPhase::Pending,
                    1 => RndvPhase::Requested,
                    _ => RndvPhase::Granted,
                },
            });
        }
        out.push(BacklogSpec {
            msgs,
            rndv_threshold,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicdrv::calib;

    #[test]
    fn corpus_is_deterministic_and_buildable() {
        let caps = calib::synthetic_capabilities();
        let a = corpus(42, caps.rndv_threshold_hint, &caps, 1 << 20, 50);
        let b = corpus(42, caps.rndv_threshold_hint, &caps, 1 << 20, 50);
        assert_eq!(a, b);
        assert!(a.len() > 50);
        for spec in &a {
            let layer = spec.build(); // must not panic
            let _ = layer.backlog_bytes();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let caps = calib::synthetic_capabilities();
        let a = corpus(1, caps.rndv_threshold_hint, &caps, 1 << 20, 30);
        let b = corpus(2, caps.rndv_threshold_hint, &caps, 1 << 20, 30);
        assert_ne!(a, b);
    }

    #[test]
    fn infinite_threshold_profiles_skip_rndv_templates() {
        let caps = calib::capabilities(simnet::Technology::TcpEthernet);
        let c = corpus(7, caps.rndv_threshold_hint, &caps, 1 << 16, 0);
        for spec in &c {
            let mut layer = spec.build();
            let groups = layer.collect_candidates(crate::ANALYZED_RAIL, 64, |_, _| true);
            assert!(groups.iter().all(|g| g.rndv.is_empty()));
        }
    }
}
