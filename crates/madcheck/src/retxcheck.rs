//! Conformance rule for madrel retransmissions: every packet that
//! [`plan_retransmit`] re-segments for a rail must respect that rail's
//! declared [`DriverCapabilities`] — PIO size cap, gather width, driver
//! packet ceiling and wire MTU — and must cover exactly the byte ranges of
//! the timed-out packet (no loss, no overlap, no reordering).
//!
//! Like [`crate::capcheck`], the verdict here is re-derived independently
//! from the capability struct rather than trusting the planner's own
//! arithmetic, so a bug in either side is caught by disagreement. The
//! sweep replays a seeded corpus of pending-chunk shapes against every
//! capability profile.

use madeleine::ids::FlowId;
use madeleine::plan::PlannedChunk;
use madeleine::proto::framing_bytes;
use madeleine::reliability::plan_retransmit;
use nicdrv::{calib, DriverCapabilities};
use simnet::{SplitMix64, Technology};

use crate::analyzer::profiles;

/// A retransmission packet that violates the target rail's capabilities,
/// or a re-segmentation that corrupts the byte coverage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetxViolation {
    /// A packet with no chunks, or a chunk with no bytes.
    EmptyPacket,
    /// Payload + framing exceeds the rail's wire MTU.
    PacketExceedsMtu {
        /// Total packet bytes.
        bytes: u64,
        /// Wire MTU.
        mtu: u64,
    },
    /// Payload + framing exceeds the driver's per-request ceiling.
    PacketExceedsDriverLimit {
        /// Total packet bytes.
        bytes: u64,
        /// Driver limit.
        limit: u64,
    },
    /// A PIO-only driver was handed a packet its PIO window cannot stream.
    PioOverflow {
        /// Total packet bytes.
        bytes: u64,
        /// PIO window size.
        cap: u64,
    },
    /// More chunks per packet than the hardware gather list (or than the
    /// single segment a PIO-only driver can take).
    GatherTooWide {
        /// Chunks in the packet.
        chunks: usize,
        /// Maximum chunks the rail accepts per packet.
        max: usize,
    },
    /// The re-segmented packets do not tile the original byte ranges
    /// exactly, in order.
    CoverageMismatch {
        /// Offending flow.
        flow: FlowId,
        /// Offending fragment.
        frag: u16,
        /// Byte offset where the tiling diverged.
        offset: u32,
    },
}

impl std::fmt::Display for RetxViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetxViolation::EmptyPacket => write!(f, "empty retransmission packet or chunk"),
            RetxViolation::PacketExceedsMtu { bytes, mtu } => {
                write!(f, "retransmit packet of {bytes} bytes exceeds wire MTU {mtu}")
            }
            RetxViolation::PacketExceedsDriverLimit { bytes, limit } => {
                write!(f, "retransmit packet of {bytes} bytes exceeds driver limit {limit}")
            }
            RetxViolation::PioOverflow { bytes, cap } => write!(
                f,
                "retransmit packet of {bytes} bytes exceeds the {cap}-byte PIO window of a DMA-less driver"
            ),
            RetxViolation::GatherTooWide { chunks, max } => {
                write!(f, "retransmit packet carries {chunks} chunks, rail accepts {max}")
            }
            RetxViolation::CoverageMismatch { flow, frag, offset } => write!(
                f,
                "{flow} frag {frag}: retransmission coverage diverges at offset {offset}"
            ),
        }
    }
}

impl std::error::Error for RetxViolation {}

/// Maximum chunks one retransmission packet may carry on this rail: the
/// gather list minus the header block entry, or a single chunk when the
/// driver cannot DMA (PIO streams one segment).
pub fn max_chunks_per_packet(caps: &DriverCapabilities) -> usize {
    if caps.supports_dma && caps.max_gather_entries > 1 {
        caps.max_gather_entries - 1
    } else {
        1
    }
}

/// Verify a re-segmentation (`packets`) of `input` against the rail's
/// capabilities. Checks are re-derived from `caps` independently of
/// [`plan_retransmit`]'s internal arithmetic.
pub fn verify_packets(
    input: &[PlannedChunk],
    packets: &[Vec<PlannedChunk>],
    caps: &DriverCapabilities,
    wire_mtu: u64,
) -> Result<(), RetxViolation> {
    let max_chunks = max_chunks_per_packet(caps);
    for packet in packets {
        if packet.is_empty() || packet.iter().any(|c| c.len == 0) {
            return Err(RetxViolation::EmptyPacket);
        }
        if packet.len() > max_chunks {
            return Err(RetxViolation::GatherTooWide {
                chunks: packet.len(),
                max: max_chunks,
            });
        }
        let payload: u64 = packet.iter().map(|c| u64::from(c.len)).sum();
        let bytes = payload + framing_bytes(packet.len());
        if bytes > wire_mtu {
            return Err(RetxViolation::PacketExceedsMtu {
                bytes,
                mtu: wire_mtu,
            });
        }
        if bytes > caps.max_packet_bytes {
            return Err(RetxViolation::PacketExceedsDriverLimit {
                bytes,
                limit: caps.max_packet_bytes,
            });
        }
        if !caps.supports_dma && !caps.can_pio(bytes) {
            return Err(RetxViolation::PioOverflow {
                bytes,
                cap: caps.pio_max_bytes,
            });
        }
    }
    // Coverage: the flattened output must tile the input ranges exactly,
    // in order — every lost or duplicated byte is a reliability bug.
    let mut out = packets.iter().flatten();
    let mut cursor: Option<(PlannedChunk, u32)> = None; // (output chunk, consumed)
    for want in input {
        let mut covered = 0u32;
        while covered < want.len {
            let (piece, consumed) = match cursor.take() {
                Some(p) => p,
                None => match out.next() {
                    Some(c) => (c.clone(), 0),
                    None => {
                        return Err(RetxViolation::CoverageMismatch {
                            flow: want.flow,
                            frag: want.frag,
                            offset: want.offset + covered,
                        })
                    }
                },
            };
            let same_frag =
                piece.flow == want.flow && piece.seq == want.seq && piece.frag == want.frag;
            if !same_frag || piece.offset + consumed != want.offset + covered {
                return Err(RetxViolation::CoverageMismatch {
                    flow: want.flow,
                    frag: want.frag,
                    offset: want.offset + covered,
                });
            }
            let take = (piece.len - consumed).min(want.len - covered);
            covered += take;
            if consumed + take < piece.len {
                cursor = Some((piece, consumed + take));
            }
        }
    }
    if cursor.is_some() || out.next().is_some() {
        // Trailing bytes the input never asked for.
        return Err(RetxViolation::CoverageMismatch {
            flow: input.last().map(|c| c.flow).unwrap_or(FlowId(0)),
            frag: input.last().map(|c| c.frag).unwrap_or(0),
            offset: input.last().map(|c| c.offset + c.len).unwrap_or(0),
        });
    }
    Ok(())
}

/// Run [`plan_retransmit`] on `input` for this rail and verify its output;
/// returns the packet count on success.
pub fn check_retransmit(
    input: &[PlannedChunk],
    caps: &DriverCapabilities,
    wire_mtu: u64,
) -> Result<usize, RetxViolation> {
    let packets = plan_retransmit(input, caps, wire_mtu);
    verify_packets(input, &packets, caps, wire_mtu)?;
    Ok(packets.len())
}

/// One violation found by the sweep.
#[derive(Clone, Debug)]
pub struct RetxFinding {
    /// Capability profile the violation occurred under.
    pub tech: Technology,
    /// What went wrong.
    pub violation: RetxViolation,
    /// Debug rendering of the pending chunks that triggered it.
    pub input: String,
}

/// Aggregate result of a retransmission-conformance sweep.
#[derive(Clone, Debug)]
pub struct RetxReport {
    /// Capability profiles swept.
    pub profiles: usize,
    /// Pending-chunk shapes replayed.
    pub cases: usize,
    /// Retransmission packets verified.
    pub packets: usize,
    /// Violations, in discovery order (first per profile).
    pub findings: Vec<RetxFinding>,
}

impl RetxReport {
    /// True when every re-segmentation conformed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for RetxReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck retx: {} profiles, {} pending-chunk shapes, {} retransmit packets checked",
            self.profiles, self.cases, self.packets
        )?;
        if self.is_clean() {
            writeln!(
                f,
                "conformant: every retransmission respects the target driver's capabilities"
            )?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "RETX FINDING {}: on {:?}", i + 1, finding.tech)?;
                writeln!(f, "  defect: {}", finding.violation)?;
                writeln!(f, "  pending chunks: {}", finding.input)?;
            }
        }
        Ok(())
    }
}

fn chunk(flow: u32, seq: u32, frag: u16, offset: u32, len: u32) -> PlannedChunk {
    PlannedChunk {
        flow: FlowId(flow),
        seq,
        frag,
        offset,
        len,
    }
}

/// Fixed edge-case pending-chunk shapes for one profile.
fn templates(caps: &DriverCapabilities, wire_mtu: u64) -> Vec<Vec<PlannedChunk>> {
    let pio = caps.pio_max_bytes.clamp(2, u64::from(u32::MAX)) as u32;
    let mtu = wire_mtu.clamp(2, u64::from(u32::MAX)) as u32;
    vec![
        // Singleton small chunk.
        vec![chunk(0, 0, 0, 0, 64)],
        // Many small chunks: gather-width pressure on re-segmentation.
        (0..24).map(|i| chunk(i, 0, 0, 0, 32)).collect(),
        // One chunk larger than any single packet: must be split.
        vec![chunk(0, 0, 0, 0, mtu.saturating_mul(2).max(2))],
        // PIO boundary straddle.
        vec![chunk(0, 0, 0, 0, pio - 1), chunk(1, 0, 0, 0, 7)],
        // Mid-fragment offsets (a packet that carried a transfer tail).
        vec![chunk(0, 3, 1, 4096, 1500), chunk(0, 3, 2, 0, 64)],
        // Odd offsets survive re-segmentation byte-exactly.
        vec![chunk(0, 0, 0, 37, 1000)],
    ]
}

/// Sweep [`plan_retransmit`] over every capability profile with templates
/// plus `samples` seeded pending-chunk shapes per profile. Deterministic
/// for a given seed.
pub fn retx_sweep(seed: u64, samples: usize) -> RetxReport {
    let mut report = RetxReport {
        profiles: 0,
        cases: 0,
        packets: 0,
        findings: Vec::new(),
    };
    for (ti, tech) in profiles().into_iter().enumerate() {
        let caps = calib::capabilities(tech);
        let wire_mtu = calib::params(tech).mtu;
        report.profiles += 1;
        let mut shapes = templates(&caps, wire_mtu);
        let mut rng = SplitMix64::new(
            seed.wrapping_add(ti as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let pio = caps.pio_max_bytes.clamp(2, 1 << 20) as u32;
        let mtu32 = wire_mtu.clamp(2, 1 << 20) as u32;
        let palette = [1u32, 7, 64, 300, pio - 1, pio, pio + 1, mtu32 / 2, mtu32];
        for _ in 0..samples {
            let n = 1 + rng.next_below(6) as usize;
            shapes.push(
                (0..n)
                    .map(|i| {
                        chunk(
                            rng.next_below(3) as u32,
                            rng.next_below(2) as u32,
                            i as u16,
                            rng.next_below(5000) as u32,
                            palette[rng.next_below(palette.len() as u64) as usize],
                        )
                    })
                    .collect(),
            );
        }
        let mut hit = false;
        for input in &shapes {
            report.cases += 1;
            match check_retransmit(input, &caps, wire_mtu) {
                Ok(n) => report.packets += n,
                Err(violation) if !hit => {
                    hit = true; // one finding per profile keeps reports short
                    report.findings.push(RetxFinding {
                        tech,
                        violation,
                        input: format!("{input:?}"),
                    });
                }
                Err(_) => {}
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_clean_on_all_profiles() {
        let r = retx_sweep(0xAD_5EED, 64);
        assert!(r.is_clean(), "{r}");
        assert!(r.packets > r.cases / 2, "sweep must actually emit packets");
        assert_eq!(r.profiles, profiles().len());
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = retx_sweep(9, 32);
        let b = retx_sweep(9, 32);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn pio_only_driver_forces_single_chunk_pio_packets() {
        let mut caps = calib::synthetic_capabilities();
        caps.supports_dma = false;
        caps.pio_max_bytes = 256;
        let input = vec![chunk(0, 0, 0, 0, 4096), chunk(1, 0, 0, 0, 700)];
        let n = check_retransmit(&input, &caps, 1 << 16).expect("conformant");
        assert!(
            n >= 20,
            "256-byte PIO window must fan out many packets, got {n}"
        );
    }

    #[test]
    fn verifier_rejects_oversized_packet() {
        let caps = calib::synthetic_capabilities();
        let input = vec![chunk(0, 0, 0, 0, 1 << 20)];
        // A fake "planner" that never split the chunk.
        let packets = vec![input.clone()];
        assert!(matches!(
            verify_packets(&input, &packets, &caps, 1500),
            Err(RetxViolation::PacketExceedsMtu { .. })
        ));
    }

    #[test]
    fn verifier_rejects_wide_gather() {
        let mut caps = calib::synthetic_capabilities();
        caps.max_gather_entries = 3;
        let input: Vec<_> = (0..4).map(|i| chunk(i, 0, 0, 0, 8)).collect();
        let packets = vec![input.clone()]; // 4 chunks > 2 allowed
        assert!(matches!(
            verify_packets(&input, &packets, &caps, 1 << 16),
            Err(RetxViolation::GatherTooWide { chunks: 4, max: 2 })
        ));
    }

    #[test]
    fn verifier_rejects_lost_and_duplicated_bytes() {
        let caps = calib::synthetic_capabilities();
        let input = vec![chunk(0, 0, 0, 0, 100)];
        let short = vec![vec![chunk(0, 0, 0, 0, 60)]];
        assert!(matches!(
            verify_packets(&input, &short, &caps, 1 << 16),
            Err(RetxViolation::CoverageMismatch { offset: 60, .. })
        ));
        let dup = vec![vec![chunk(0, 0, 0, 0, 100)], vec![chunk(0, 0, 0, 0, 100)]];
        assert!(matches!(
            verify_packets(&input, &dup, &caps, 1 << 16),
            Err(RetxViolation::CoverageMismatch { .. })
        ));
        let skewed = vec![vec![chunk(0, 0, 0, 50, 100)]];
        assert!(matches!(
            verify_packets(&input, &skewed, &caps, 1 << 16),
            Err(RetxViolation::CoverageMismatch { offset: 0, .. })
        ));
    }
}
