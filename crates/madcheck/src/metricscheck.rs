//! Conformance rule for madscope exports: every numeric leaf registered
//! in a [`MetricsRegistry`] must surface in the Prometheus text format
//! exactly once — no duplicate sample keys (which Prometheus servers
//! reject or silently last-write-win) and no silently dropped metrics.
//!
//! Like the capability checks, the verdict is re-derived independently:
//! a local JSON walk counts the numeric leaves of the registry document
//! and must agree with what [`flatten_registry`] produced, so a bug in
//! either traversal is caught by disagreement. The registry under test
//! comes from a real two-node workload with per-flow, per-rail and
//! sampler sections populated, not a hand-built fixture.

use madeleine::harness::{Cluster, ClusterSpec};
use madeleine::json::Json;
use madeleine::metrics::MetricsRegistry;
use madeleine::{flatten_registry, prometheus_render, MessageBuilder, TrafficClass};
use simnet::SimDuration;

/// Aggregate result of a metrics-export conformance check.
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// Registry sections walked.
    pub sections: usize,
    /// Prometheus samples flattened from the registry.
    pub samples: usize,
    /// Numeric leaves counted by the independent JSON walk.
    pub leaves: usize,
    /// Violations, in discovery order.
    pub findings: Vec<String>,
}

impl MetricsReport {
    /// True when the export loses or duplicates nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "madcheck metrics: {} sections, {} Prometheus samples, {} numeric leaves",
            self.sections, self.samples, self.leaves
        )?;
        if self.is_clean() {
            writeln!(
                f,
                "conformant: every registered metric exports exactly once"
            )?;
        } else {
            for (i, finding) in self.findings.iter().enumerate() {
                writeln!(f, "METRICS FINDING {}: {finding}", i + 1)?;
            }
        }
        Ok(())
    }
}

/// Count the numeric leaves of one registry section the way the
/// Prometheus flattener must see them: every `Int`/`UInt`/`Float`/
/// `Fixed3`/`Bool` anywhere under the section, with strings and nulls
/// skipped.
fn count_leaves(doc: &Json) -> usize {
    match doc {
        Json::Int(_) | Json::UInt(_) | Json::Float(_) | Json::Fixed3(_) | Json::Bool(_) => 1,
        Json::Arr(items) => items.iter().map(count_leaves).sum(),
        Json::Obj(fields) => fields.iter().map(|(_, v)| count_leaves(v)).sum(),
        Json::Str(_) | Json::Null => 0,
    }
}

/// Check one registry: unique sample keys, an independent leaf count,
/// and presence of every sample in the rendered text export.
pub fn check_registry(reg: &MetricsRegistry) -> MetricsReport {
    let mut report = MetricsReport {
        sections: reg.len(),
        samples: 0,
        leaves: 0,
        findings: Vec::new(),
    };

    let samples = flatten_registry(reg);
    report.samples = samples.len();

    // Rule 1: section names are unique (a duplicate section merges two
    // engines' metrics into one label value).
    let doc = reg.to_json();
    if let Some(Json::Obj(sections)) = doc.get("sections") {
        for (i, (name, body)) in sections.iter().enumerate() {
            if sections[..i].iter().any(|(n, _)| n == name) {
                report
                    .findings
                    .push(format!("duplicate registry section name `{name}`"));
            }
            report.leaves += count_leaves(body);
        }
    } else {
        report
            .findings
            .push("registry document has no `sections` object".to_string());
    }

    // Rule 2: flattened sample keys are unique.
    let mut keys: Vec<String> = samples.iter().map(|s| s.key()).collect();
    let total = keys.len();
    keys.sort();
    keys.dedup();
    if keys.len() != total {
        let mut sorted: Vec<String> = samples.iter().map(|s| s.key()).collect();
        sorted.sort();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                report
                    .findings
                    .push(format!("duplicate Prometheus sample key `{}`", w[0]));
                break;
            }
        }
    }

    // Rule 3: the flattener saw every numeric leaf (no silent drops in
    // either direction).
    if report.leaves != report.samples {
        report.findings.push(format!(
            "flattener produced {} samples but the registry holds {} numeric \
             leaves: metrics are being silently dropped or invented",
            report.samples, report.leaves
        ));
    }

    // Rule 4: every flattened sample appears in the rendered export,
    // and each family carries its HELP/TYPE header.
    let text = prometheus_render(reg);
    for s in &samples {
        let key = s.key();
        if !text.lines().any(|l| l.starts_with(&key)) {
            report
                .findings
                .push(format!("sample `{key}` missing from Prometheus export"));
            if report.findings.len() > 8 {
                break; // a systematic renderer bug needs no full listing
            }
        }
    }
    for s in &samples {
        if !text.contains(&format!("# TYPE {} gauge", s.family)) {
            report.findings.push(format!(
                "family `{}` has no `# TYPE` header in the export",
                s.family
            ));
            break;
        }
    }

    report
}

/// Run a small deterministic two-node workload (sampler enabled, several
/// flows and classes, so per-flow, per-rail and sampler sections all
/// populate) and check its cluster-wide registry.
pub fn metrics_check() -> MetricsReport {
    let mut c = Cluster::build(&ClusterSpec::mx_pair(), vec![]);
    c.enable_sampler(SimDuration::from_micros(5));
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let flows = [
        h.open_flow(dst, TrafficClass::DEFAULT),
        h.open_flow(dst, TrafficClass::CONTROL),
        h.open_flow(dst, TrafficClass::BULK),
    ];
    for i in 0..12u8 {
        let flow = flows[i as usize % flows.len()];
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new()
                    .pack_express(&[i; 8])
                    .pack_cheaper(&[i; 256])
                    .build_parts(),
            )
        });
    }
    c.drain();
    check_registry(&c.metrics_registry())
}

#[cfg(test)]
mod tests {
    use super::*;
    use madeleine::json::obj;

    #[test]
    fn live_workload_registry_is_clean() {
        let r = metrics_check();
        assert!(r.is_clean(), "{r}");
        assert!(
            r.sections >= 5,
            "engines + receivers + nics: {}",
            r.sections
        );
        assert!(r.samples > 100, "rich registry expected: {}", r.samples);
        assert_eq!(r.samples, r.leaves);
    }

    #[test]
    fn duplicate_section_is_flagged() {
        let mut reg = MetricsRegistry::new();
        reg.add_section("dup", obj().field("x", 1u64).build());
        reg.add_section("dup", obj().field("x", 2u64).build());
        let r = check_registry(&reg);
        assert!(!r.is_clean());
        assert!(
            r.findings.iter().any(|f| f.contains("duplicate")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn leaf_count_walk_matches_flattener_on_nested_docs() {
        let mut reg = MetricsRegistry::new();
        reg.add_section(
            "node0/weird",
            obj()
                .field("a", 1u64)
                .field("b", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))
                .field("c", obj().field("d", true).field("e", "skipped").build())
                .field("f", Json::Null)
                .build(),
        );
        let r = check_registry(&reg);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.samples, 4, "a, b[0], b[1], c.d");
    }
}
