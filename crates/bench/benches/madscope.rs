//! Host-side cost of madscope instrumentation: the per-delivery
//! histogram update, the full `record_delivery` fan-out (aggregate +
//! class + flow + rail), one sampler tick, and — the acceptance number —
//! a whole simulated workload with the sampler off vs on. The sampler-off
//! run must sit within noise of a build without madscope (nothing on the
//! hot path but one `Option` branch), and sampler-on must cost <= 3%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madeleine::harness::EngineKind;
use madeleine::ids::{FlowId, TrafficClass};
use madeleine::metrics::EngineMetrics;
use madeleine::scope::{RailTick, Sampler, TickStats};
use madeleine::LatencyHistogram;
use madware::scenario::eager_flows;
use simnet::{SimDuration, SimTime, Technology};
use std::hint::black_box;

fn bench_madscope(c: &mut Criterion) {
    let mut group = c.benchmark_group("madscope_record");

    group.bench_with_input(BenchmarkId::new("hist_record", "lcg"), &(), |b, ()| {
        let mut h = LatencyHistogram::new();
        let mut ns = 1u64;
        b.iter(|| {
            ns = ns.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(ns >> 44));
            black_box(h.count())
        })
    });

    group.bench_with_input(BenchmarkId::new("record_delivery", "full"), &(), |b, ()| {
        let mut m = EngineMetrics::default();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            m.record_delivery(
                TrafficClass::DEFAULT,
                FlowId(i % 8),
                Some((i % 2) as usize),
                512,
                SimDuration::from_nanos(u64::from(i % 100_000) + 1),
            );
            black_box(m.delivered_msgs)
        })
    });

    group.bench_with_input(BenchmarkId::new("sampler_tick", "2rail"), &(), |b, ()| {
        let mut s = Sampler::new(SimDuration::from_micros(5), 4096, 2);
        let rails = [
            RailTick {
                busy: true,
                health_milli: 1000,
                dead: false,
            },
            RailTick {
                busy: false,
                health_milli: 850,
                dead: false,
            },
        ];
        let mut tick = 0u64;
        b.iter(|| {
            tick += 1;
            let stats = TickStats {
                backlog_bytes: tick * 64 % 8192,
                backlog_msgs: tick % 32,
                inflight_pkts: tick % 8,
                submitted_msgs: tick,
                delivered_msgs: tick / 2,
                packets_sent: tick / 3,
                plans_evaluated: tick * 4,
                strategy_wins: tick / 3,
                ..TickStats::default()
            };
            black_box(s.record_tick(SimTime::from_nanos(tick * 5000), stats, &rails, false))
        })
    });
    group.finish();

    // Whole-run overhead: the same seeded workload, sampler off vs on.
    // "off" is the madscope-free baseline (one branch per wake probe);
    // the off->on delta is the sampler's total price and must stay <= 3%.
    let mut group = c.benchmark_group("madscope_run");
    for &sampled in &[false, true] {
        let name = if sampled { "sampler_on" } else { "sampler_off" };
        group.bench_with_input(BenchmarkId::new("eager_flows", name), &sampled, |b, _| {
            b.iter(|| {
                let (mut cluster, _tx, _rx) = eager_flows(
                    EngineKind::optimizing(),
                    Technology::MyrinetMx,
                    4,
                    64,
                    SimDuration::from_micros(2),
                    50,
                    11,
                );
                if sampled {
                    cluster.enable_sampler(SimDuration::from_micros(5));
                }
                cluster.drain();
                black_box(cluster.handle(1).metrics().delivered_msgs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_madscope);
criterion_main!(benches);
