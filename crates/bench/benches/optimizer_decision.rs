//! Wall-clock cost of one optimizer decision (`select_plan`) as the
//! backlog and the rearrangement budget grow — the CPU-side quantity the
//! paper's future-work item E5 proposes to bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madeleine::collect::CollectLayer;
use madeleine::config::EngineConfig;
use madeleine::ids::{ChannelId, TrafficClass};
use madeleine::message::MessageBuilder;
use madeleine::optimizer::{select_plan, select_plan_traced};
use madeleine::strategy::{OptContext, StrategyRegistry};
use nicdrv::{calib, CostModel};
use simnet::{NodeId, SimTime, Technology};
use std::hint::black_box;

fn backlog(msgs: usize, flows: usize) -> CollectLayer {
    let mut c = CollectLayer::new();
    let fl: Vec<_> = (0..flows)
        .map(|_| c.open_flow(NodeId(1), TrafficClass::DEFAULT))
        .collect();
    for i in 0..msgs {
        let parts = MessageBuilder::new()
            .pack_express(&(i as u32).to_le_bytes())
            .pack_cheaper(&vec![i as u8; 64 + (i % 7) * 100])
            .build_parts();
        c.submit(
            fl[i % flows],
            parts,
            SimTime::from_nanos(i as u64 * 100),
            1 << 30,
        );
    }
    c
}

fn bench_select(c: &mut Criterion) {
    let caps = calib::capabilities(Technology::MyrinetMx);
    let cost = CostModel::from_params(&calib::params(Technology::MyrinetMx));
    let mut group = c.benchmark_group("select_plan");
    for &msgs in &[4usize, 16, 64, 256] {
        let mut collect = backlog(msgs, 8);
        let cfg = EngineConfig::default();
        let registry = StrategyRegistry::standard(&cfg);
        group.bench_with_input(BenchmarkId::new("backlog", msgs), &msgs, |b, _| {
            b.iter(|| {
                let groups =
                    collect.collect_candidates(ChannelId(0), cfg.lookahead_window, |_, _| true);
                let ctx = OptContext {
                    now: SimTime::from_nanos(1_000_000),
                    channel: ChannelId(0),
                    caps: &caps,
                    cost: &cost,
                    config: &cfg,
                    groups: &groups,
                    packet_limit: 32 << 10,
                    rail_count: 1,
                    health_penalty: 1.0,
                };
                black_box(select_plan(
                    &registry,
                    &ctx,
                    &collect,
                    32 << 10,
                    cfg.rearrange_budget,
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("select_plan_budget");
    let mut collect = backlog(128, 8);
    for &budget in &[1usize, 8, 64, 1024] {
        let cfg = EngineConfig::default().with_budget(budget);
        let registry = StrategyRegistry::standard(&cfg);
        group.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, _| {
            b.iter(|| {
                let groups =
                    collect.collect_candidates(ChannelId(0), cfg.lookahead_window, |_, _| true);
                let ctx = OptContext {
                    now: SimTime::from_nanos(1_000_000),
                    channel: ChannelId(0),
                    caps: &caps,
                    cost: &cost,
                    config: &cfg,
                    groups: &groups,
                    packet_limit: 32 << 10,
                    rail_count: 1,
                    health_penalty: 1.0,
                };
                black_box(select_plan(&registry, &ctx, &collect, 32 << 10, budget))
            })
        });
    }
    group.finish();

    // Madtrace overhead: the same decision with the event sink disabled
    // (the default; `select_plan` is this case) vs recording into an
    // enabled ring. The disabled/off delta is the acceptance bound for
    // "tracing off costs one branch"; off-vs-on is the price of the
    // decision log itself.
    let mut group = c.benchmark_group("select_plan_trace");
    let mut collect = backlog(64, 8);
    let cfg = EngineConfig::default();
    let registry = StrategyRegistry::standard(&cfg);
    for &traced in &[false, true] {
        let name = if traced { "on" } else { "off" };
        group.bench_with_input(BenchmarkId::new("trace", name), &traced, |b, _| {
            let mut sink = if traced {
                madeleine::EventSink::with_capacity(4096)
            } else {
                madeleine::EventSink::disabled()
            };
            let mut activation = 0u64;
            b.iter(|| {
                let groups =
                    collect.collect_candidates(ChannelId(0), cfg.lookahead_window, |_, _| true);
                let ctx = OptContext {
                    now: SimTime::from_nanos(1_000_000),
                    channel: ChannelId(0),
                    caps: &caps,
                    cost: &cost,
                    config: &cfg,
                    groups: &groups,
                    packet_limit: 32 << 10,
                    rail_count: 1,
                    health_penalty: 1.0,
                };
                activation += 1;
                black_box(select_plan_traced(
                    &registry,
                    &ctx,
                    &collect,
                    32 << 10,
                    cfg.rearrange_budget,
                    &mut sink,
                    activation,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
