//! Activation cost vs flow-table size: `collect_candidates` with a fixed
//! handful of active flows while the number of flows that merely *exist*
//! grows by four orders of magnitude. The madflow active-flow index makes
//! this O(active); the acceptance bound for E13 is 100k-total within 1.5x
//! of 100-total at 10 active flows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madeleine::collect::CollectLayer;
use madeleine::config::EngineConfig;
use madeleine::flowmgr::{FairnessMode, CLASS_SLOTS};
use madeleine::ids::{ChannelId, TrafficClass};
use madeleine::message::MessageBuilder;
use simnet::{NodeId, SimTime};
use std::hint::black_box;

const ACTIVE_FLOWS: usize = 10;

/// A collect layer with `total` open flows, of which `ACTIVE_FLOWS`
/// (evenly spread over the id space) have one pending message each.
fn sparse_backlog(total: usize, fairness: FairnessMode) -> CollectLayer {
    let mut c = CollectLayer::new();
    let classes = [
        TrafficClass::DEFAULT,
        TrafficClass::BULK,
        TrafficClass::PUT_GET,
        TrafficClass::CONTROL,
    ];
    let flows: Vec<_> = (0..total)
        .map(|i| c.open_flow(NodeId(1), classes[i % classes.len()]))
        .collect();
    if fairness == FairnessMode::Drr {
        c.set_fairness(FairnessMode::Drr, 2048, [1; CLASS_SLOTS]);
    }
    let stride = (total / ACTIVE_FLOWS).max(1);
    for k in 0..ACTIVE_FLOWS.min(total) {
        let parts = MessageBuilder::new()
            .pack_cheaper(&vec![k as u8; 256 + k * 64])
            .build_parts();
        c.submit(
            flows[k * stride],
            parts,
            SimTime::from_nanos(k as u64 * 100),
            1 << 30,
        );
    }
    c
}

fn bench_activation(c: &mut Criterion) {
    let cfg = EngineConfig::default();
    for (name, fairness) in [
        ("pack_order", FairnessMode::PackOrder),
        ("drr", FairnessMode::Drr),
    ] {
        let mut group = c.benchmark_group(&format!("collect_candidates/{name}")[..]);
        for &total in &[10usize, 100, 1_000, 100_000] {
            let mut collect = sparse_backlog(total, fairness);
            group.bench_with_input(BenchmarkId::new("total_flows", total), &total, |b, _| {
                b.iter(|| {
                    black_box(collect.collect_candidates(
                        ChannelId(0),
                        cfg.lookahead_window,
                        |_, _| true,
                    ))
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_activation);
criterion_main!(benches);
