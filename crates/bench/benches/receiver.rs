//! Receive-path microbenchmark: chunk ingest + reassembly + ordered
//! delivery throughput of `madeleine::receiver::Receiver` — the per-packet
//! work a receiving host pays for the sender's aggregation.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use madeleine::ids::{FlowId, TrafficClass};
use madeleine::proto::ChunkHeader;
use madeleine::receiver::Receiver;
use simnet::{NodeId, SimTime};
use std::hint::black_box;

fn chunks(msgs: u32, frag_len: usize) -> Vec<madeleine::proto::DecodedChunk> {
    (0..msgs)
        .map(|seq| madeleine::proto::DecodedChunk {
            header: ChunkHeader {
                flow: FlowId(seq % 4),
                msg_seq: seq / 4,
                frag_index: 0,
                frag_count: 1,
                express: false,
                class: TrafficClass::DEFAULT,
                frag_len: frag_len as u32,
                offset: 0,
                chunk_len: frag_len as u32,
                submit_ns: 0,
            },
            data: Bytes::from(vec![seq as u8; frag_len]),
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("receiver_ingest");
    for &(msgs, len) in &[(512u32, 64usize), (512, 1024)] {
        let input = chunks(msgs, len);
        group.throughput(Throughput::Bytes(msgs as u64 * len as u64));
        group.bench_with_input(
            BenchmarkId::new("whole_messages", format!("{msgs}x{len}")),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut r = Receiver::new();
                    let mut delivered = 0usize;
                    for ch in input {
                        delivered += r.on_chunk(NodeId(0), ch, SimTime::from_nanos(1)).len();
                    }
                    black_box(delivered)
                })
            },
        );
    }
    group.finish();
}

fn bench_fragmented(c: &mut Criterion) {
    // Large fragments arriving as out-of-order 4 KiB pieces: the interval
    // bookkeeping path.
    let total = 64 << 10;
    let piece = 4 << 10;
    let mut input = Vec::new();
    let n = total / piece;
    for i in 0..n {
        // Reverse order: worst case for coalescing.
        let off = (n - 1 - i) * piece;
        input.push(madeleine::proto::DecodedChunk {
            header: ChunkHeader {
                flow: FlowId(0),
                msg_seq: 0,
                frag_index: 0,
                frag_count: 1,
                express: false,
                class: TrafficClass::BULK,
                frag_len: total as u32,
                offset: off as u32,
                chunk_len: piece as u32,
                submit_ns: 0,
            },
            data: Bytes::from(vec![7u8; piece]),
        });
    }
    c.bench_function("receiver_reassemble_64k_reverse", |b| {
        b.iter(|| {
            let mut r = Receiver::new();
            let mut out = 0;
            for ch in &input {
                out += r.on_chunk(NodeId(0), ch, SimTime::from_nanos(1)).len();
            }
            assert_eq!(out, 1);
            black_box(out)
        })
    });
}

criterion_group!(benches, bench_ingest, bench_fragmented);
criterion_main!(benches);
