//! Substrate microbenchmark: the simulator's event queue and a full
//! two-node message exchange, in wall-clock terms (how fast the DES runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madeleine::harness::{Cluster, ClusterSpec};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use simnet::event::{EventKind, EventQueue};
use simnet::{NicId, NodeId, SimTime};
use std::hint::black_box;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(
                        SimTime::from_nanos(((i * 2654435761) % 1_000_000) as u64),
                        EventKind::TxEngineDone { nic: NicId(0) },
                    );
                }
                while let Some(e) = q.pop() {
                    black_box(e.at);
                }
            })
        });
    }
    group.finish();
}

fn bench_sim_exchange(c: &mut Criterion) {
    c.bench_function("sim_100_message_exchange", |b| {
        b.iter(|| {
            let mut cluster = Cluster::build(&ClusterSpec::mx_pair(), vec![]);
            let h = cluster.handle(0).clone();
            let (src, dst) = (cluster.nodes[0], cluster.nodes[1]);
            let f = h.open_flow(dst, TrafficClass::DEFAULT);
            cluster.sim.inject(src, |ctx| {
                for i in 0..100u8 {
                    h.send(
                        ctx,
                        f,
                        MessageBuilder::new().pack_cheaper(&[i; 128]).build_parts(),
                    );
                }
            });
            black_box(cluster.drain());
            let _ = NodeId(0);
        })
    });
}

criterion_group!(benches, bench_queue, bench_sim_exchange);
criterion_main!(benches);
