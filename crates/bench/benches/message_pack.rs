//! API-layer microbenchmark: cost of packing structured messages and of
//! the collect layer's submission path (the part of `send` that runs in
//! the application's context and must stay cheap — §3's "immediately
//! returns to computing").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use madeleine::collect::CollectLayer;
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use simnet::{NodeId, SimTime};
use std::hint::black_box;

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_pack");
    for &frags in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("fragments", frags), &frags, |b, &frags| {
            let payload = vec![7u8; 256];
            b.iter(|| {
                let mut m = MessageBuilder::new().pack_express(b"header##");
                for _ in 0..frags {
                    m = m.pack_cheaper(&payload);
                }
                black_box(m.build_parts())
            })
        });
    }
    group.finish();
}

fn bench_submit(c: &mut Criterion) {
    c.bench_function("collect_submit", |b| {
        let parts = MessageBuilder::new()
            .pack_express(b"header##")
            .pack_cheaper(&vec![7u8; 512])
            .build_parts();
        b.iter_with_setup(
            || {
                let mut col = CollectLayer::new();
                let f = col.open_flow(NodeId(1), TrafficClass::DEFAULT);
                (col, f)
            },
            |(mut col, f)| {
                for i in 0..64u64 {
                    black_box(col.submit(f, parts.clone(), SimTime::from_nanos(i), 1 << 30));
                }
                col
            },
        )
    });
}

criterion_group!(benches, bench_pack, bench_submit);
criterion_main!(benches);
