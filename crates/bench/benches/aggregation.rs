//! Wire-protocol microbenchmarks: packet encode/decode throughput for
//! gather vs linearized aggregation — the host-side costs behind E10.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use madeleine::ids::{FlowId, TrafficClass};
use madeleine::proto::{decode_packet, encode_packet, ChunkHeader, WireChunk};
use simnet::{NicId, NodeId, WirePacket};
use std::hint::black_box;

fn chunks(n: usize, size: usize) -> Vec<WireChunk> {
    (0..n)
        .map(|i| WireChunk {
            header: ChunkHeader {
                flow: FlowId(i as u32),
                msg_seq: 0,
                frag_index: 0,
                frag_count: 1,
                express: false,
                class: TrafficClass::DEFAULT,
                frag_len: size as u32,
                offset: 0,
                chunk_len: size as u32,
                submit_ns: 0,
            },
            data: Bytes::from(vec![i as u8; size]),
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_packet");
    for &(n, size) in &[(4usize, 64usize), (16, 64), (16, 1024)] {
        let ch = chunks(n, size);
        let bytes = (n * size) as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(
            BenchmarkId::new("gather", format!("{n}x{size}")),
            &ch,
            |b, ch| b.iter(|| black_box(encode_packet(ch, false))),
        );
        group.bench_with_input(
            BenchmarkId::new("linearize", format!("{n}x{size}")),
            &ch,
            |b, ch| b.iter(|| black_box(encode_packet(ch, true))),
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_packet");
    for &(n, size) in &[(16usize, 64usize), (16, 1024)] {
        let segs = encode_packet(&chunks(n, size), false);
        let pkt = WirePacket {
            src: NodeId(0),
            dst: NodeId(1),
            src_nic: NicId(0),
            dst_nic: NicId(1),
            vchan: 0,
            kind: 1,
            cookie: 0,
            seq: 0,
            ecn: false,
            payload: segs,
        };
        group.throughput(Throughput::Bytes((n * size) as u64));
        group.bench_with_input(
            BenchmarkId::new("chunks", format!("{n}x{size}")),
            &pkt,
            |b, pkt| b.iter(|| black_box(decode_packet(pkt).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
