//! # mad-bench — experiment harness
//!
//! Reproduces every evaluation claim of the HPDC'06 paper as a numbered
//! experiment (E1–E11, indexed in `DESIGN.md`), each printing a table that
//! `EXPERIMENTS.md` records. Run them with
//!
//! ```text
//! cargo run -p mad-bench --release --bin experiments -- all
//! cargo run -p mad-bench --release --bin experiments -- e1 e7
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diffcells;
pub mod experiments;
pub mod regression;
pub mod table;
pub mod tracecli;

pub use table::Table;

/// One experiment's rendered output.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id, e.g. "E1".
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form observations (appended under the tables).
    pub notes: Vec<String>,
    /// Machine-readable artifacts as `(file name, contents)` — e.g. a
    /// madtrace Chrome export or a metrics-registry document. Written to
    /// disk by the runner's `--trace-out` flag.
    pub artifacts: Vec<(String, String)>,
}

impl Report {
    /// Render the full report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        out.push_str(&format!("   paper: {}\n\n", self.claim));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("   note: {n}\n"));
        }
        for (name, contents) in &self.artifacts {
            out.push_str(&format!(
                "   artifact: {name} ({} bytes; use --trace-out to write)\n",
                contents.len()
            ));
        }
        out
    }
}

/// Format a float with adaptive precision for table cells.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a byte count compactly (powers of two).
pub fn fmt_bytes(n: u64) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}MiB", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{}KiB", n >> 10)
    } else {
        format!("{n}B")
    }
}
