//! Workload-trace tool: generate, inspect and replay `madeleine-trace`
//! files.
//!
//! ```text
//! trace-tool sample <out.trace> [seed]        # generate a sample workload
//! trace-tool info <file.trace>                # summarize a trace
//! trace-tool replay <file.trace> [--legacy] [--tech mx|elan|ib|tcp|shm]
//! trace-tool compare <file.trace> [--tech ...]  # optimizer vs legacy, same input
//! ```

use mad_bench::tracecli;
use madware::trace::Trace;
use simnet::Technology;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  trace-tool sample <out.trace> [seed]\n  trace-tool info <file>\n  \
         trace-tool replay <file> [--legacy] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool compare <file> [--tech mx|elan|ib|tcp|shm]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sample") => {
            let Some(path) = args.get(1) else {
                fail("sample needs an output path")
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
            let t = tracecli::sample(seed);
            std::fs::write(path, t.to_text()).unwrap_or_else(|e| fail(&e.to_string()));
            println!("wrote {} messages to {path}", t.len());
        }
        Some("info") => {
            let Some(path) = args.get(1) else {
                fail("info needs a trace file")
            };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::info(&t));
        }
        Some("replay") => {
            let Some(path) = args.get(1) else {
                fail("replay needs a trace file")
            };
            let legacy = args.iter().any(|a| a == "--legacy");
            let tech = match args.iter().position(|a| a == "--tech") {
                Some(i) => {
                    let name = args
                        .get(i + 1)
                        .unwrap_or_else(|| fail("--tech needs a value"));
                    tracecli::parse_tech(name)
                        .unwrap_or_else(|| fail(&format!("unknown technology '{name}'")))
                }
                None => Technology::MyrinetMx,
            };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::replay(t, legacy, tech));
        }
        Some("compare") => {
            let Some(path) = args.get(1) else {
                fail("compare needs a trace file")
            };
            let tech = match args.iter().position(|a| a == "--tech") {
                Some(i) => {
                    let name = args
                        .get(i + 1)
                        .unwrap_or_else(|| fail("--tech needs a value"));
                    tracecli::parse_tech(name)
                        .unwrap_or_else(|| fail(&format!("unknown technology '{name}'")))
                }
                None => Technology::MyrinetMx,
            };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::compare(t, tech));
        }
        _ => fail("missing or unknown subcommand"),
    }
}
