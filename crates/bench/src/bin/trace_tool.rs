//! Workload-trace tool: generate, inspect and replay `madeleine-trace`
//! files.
//!
//! ```text
//! trace-tool sample <out.trace> [seed]        # generate a sample workload
//! trace-tool info <file.trace|file.json>      # summarize a trace or export
//! trace-tool replay <file.trace> [--legacy] [--tech mx|elan|ib|tcp|shm]
//! trace-tool compare <file.trace> [--tech ...]  # optimizer vs legacy, same input
//! trace-tool export <file.trace> <out.json> [--legacy] [--tech ...]
//! trace-tool explain <file.trace> [--activation N] [--tech ...]
//! trace-tool stats <file.trace> [--tick US] [--csv out.csv] [--tech ...]
//! trace-tool profile <file.trace|file.json> [--top N] [--folded out.folded]
//!                    [--csv out.csv] [--fail-on-overflow] [--tech ...]
//! trace-tool snapshot <file.trace|file.json> <out.json> [--label NAME] [--tech ...]
//! trace-tool diff <a> <b> [--top N] [--folded out.folded] [--json out.json]
//!                 [--fail-on-overflow] [--tech ...]
//! ```
//!
//! `export` replays the workload with full madtrace instrumentation and
//! writes a Chrome trace-event JSON (Perfetto / `about:tracing` loadable);
//! `explain` prints, for one optimizer activation, every plan proposed,
//! its veto or score, and the winner; `stats` replays with the madscope
//! sampler enabled and prints latency percentile tables plus ASCII
//! backlog/utilization timelines (`--csv` also writes the raw
//! time-series); `profile` is madprof — per-message latency attribution
//! (admission/rndv/decision/retx/wire) with the top-N-slowest explain
//! table and the run critical path, from either a workload trace
//! (replayed traced) or an existing madtrace Chrome export (`--folded`
//! writes inferno-compatible folded stacks, `--csv` the attribution
//! table). It warns loudly when any event ring overflowed, and
//! `--fail-on-overflow` turns the warning into a nonzero exit so CI
//! never silently analyzes a truncated run.
//!
//! `snapshot` captures a run's profile as a maddiff snapshot artifact
//! (a committed-baseline half of a diff); `diff` is maddiff — it aligns
//! two runs by message identity (each side may be a snapshot, a Chrome
//! export, or a workload trace) and reports per-phase latency deltas,
//! rail/strategy migrations, critical-path divergence and the first
//! divergent optimizer decision (`--folded` writes two-column
//! differential folded stacks for inferno's diff-folded mode).

use mad_bench::tracecli;
use madware::trace::Trace;
use simnet::Technology;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  trace-tool sample <out.trace> [seed]\n  trace-tool info <file>\n  \
         trace-tool replay <file> [--legacy] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool compare <file> [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool export <file> <out.json> [--legacy] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool explain <file> [--activation N] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool stats <file> [--tick US] [--csv out.csv] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool profile <file> [--top N] [--folded out.folded] [--csv out.csv] \
[--fail-on-overflow] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool snapshot <file> <out.json> [--label NAME] [--tech mx|elan|ib|tcp|shm]\n  \
         trace-tool diff <a> <b> [--top N] [--folded out.folded] [--json out.json] \
[--fail-on-overflow] [--tech mx|elan|ib|tcp|shm]"
    );
    std::process::exit(2);
}

fn tech_arg(args: &[String]) -> Technology {
    match args.iter().position(|a| a == "--tech") {
        Some(i) => {
            let name = args
                .get(i + 1)
                .unwrap_or_else(|| fail("--tech needs a value"));
            tracecli::parse_tech(name)
                .unwrap_or_else(|| fail(&format!("unknown technology '{name}'")))
        }
        None => Technology::MyrinetMx,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sample") => {
            let Some(path) = args.get(1) else {
                fail("sample needs an output path")
            };
            let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
            let t = tracecli::sample(seed);
            std::fs::write(path, t.to_text()).unwrap_or_else(|e| fail(&e.to_string()));
            println!("wrote {} messages to {path}", t.len());
        }
        Some("info") => {
            let Some(path) = args.get(1) else {
                fail("info needs a trace file")
            };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            // A madtrace Chrome export is also a valid input: report its
            // event count and ring retained/dropped counters.
            if let Some(summary) = tracecli::info_export(&text) {
                print!("{summary}");
                return;
            }
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::info(&t));
        }
        Some("replay") => {
            let Some(path) = args.get(1) else {
                fail("replay needs a trace file")
            };
            let legacy = args.iter().any(|a| a == "--legacy");
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::replay(t, legacy, tech));
        }
        Some("compare") => {
            let Some(path) = args.get(1) else {
                fail("compare needs a trace file")
            };
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::compare(t, tech));
        }
        Some("export") => {
            let Some(path) = args.get(1) else {
                fail("export needs a trace file")
            };
            let Some(out) = args.get(2) else {
                fail("export needs an output path")
            };
            let legacy = args.iter().any(|a| a == "--legacy");
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            let (export, _metrics) = tracecli::export(t, legacy, tech);
            std::fs::write(out, &export.json).unwrap_or_else(|e| fail(&e.to_string()));
            println!(
                "wrote {} Chrome trace events to {out} (load in Perfetto or about:tracing)",
                export.events
            );
        }
        Some("explain") => {
            let Some(path) = args.get(1) else {
                fail("explain needs a trace file")
            };
            let activation = args.iter().position(|a| a == "--activation").map(|i| {
                args.get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--activation needs a number"))
            });
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            print!("{}", tracecli::explain(t, tech, activation));
        }
        Some("stats") => {
            let Some(path) = args.get(1) else {
                fail("stats needs a trace file")
            };
            let tick = args
                .iter()
                .position(|a| a == "--tick")
                .map(|i| {
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| fail("--tick needs a microsecond count"))
                })
                .unwrap_or(5);
            let csv_out = args.iter().position(|a| a == "--csv").map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| fail("--csv needs a path"))
            });
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let t = Trace::from_text(&text).unwrap_or_else(|e| fail(&e.to_string()));
            let (report, csv) = tracecli::stats(t, tech, tick);
            print!("{report}");
            if let Some(out) = csv_out {
                std::fs::write(out, &csv).unwrap_or_else(|e| fail(&e.to_string()));
                println!("wrote sampler time-series to {out}");
            }
        }
        Some("profile") => {
            let Some(path) = args.get(1) else {
                fail("profile needs a trace or Chrome-export file")
            };
            let top = args
                .iter()
                .position(|a| a == "--top")
                .map(|i| {
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| fail("--top needs a count"))
                })
                .unwrap_or(10);
            let folded_out = args.iter().position(|a| a == "--folded").map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| fail("--folded needs a path"))
            });
            let csv_out = args.iter().position(|a| a == "--csv").map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| fail("--csv needs a path"))
            });
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let out = tracecli::profile_input(&text, tech, top).unwrap_or_else(|e| fail(&e));
            print!("{}", out.report);
            if let Some(p) = folded_out {
                std::fs::write(p, &out.folded).unwrap_or_else(|e| fail(&e.to_string()));
                println!("wrote folded stacks to {p} (inferno flamegraph compatible)");
            }
            if let Some(p) = csv_out {
                std::fs::write(p, &out.csv).unwrap_or_else(|e| fail(&e.to_string()));
                println!("wrote per-message attribution to {p}");
            }
            if args.iter().any(|a| a == "--fail-on-overflow") && out.truncated {
                eprintln!(
                    "error: trace ring dropped {} events and --fail-on-overflow is set",
                    out.dropped_events
                );
                std::process::exit(1);
            }
        }
        Some("snapshot") => {
            let Some(path) = args.get(1) else {
                fail("snapshot needs a trace, Chrome-export or snapshot file")
            };
            let Some(out_path) = args.get(2) else {
                fail("snapshot needs an output path")
            };
            let label = args
                .iter()
                .position(|a| a == "--label")
                .map(|i| {
                    args.get(i + 1)
                        .unwrap_or_else(|| fail("--label needs a value"))
                        .to_string()
                })
                .unwrap_or_else(|| "baseline".to_string());
            let tech = tech_arg(&args);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&e.to_string()));
            let snap = tracecli::snapshot_input(&text, tech, &label).unwrap_or_else(|e| fail(&e));
            std::fs::write(out_path, snap.to_json().render())
                .unwrap_or_else(|e| fail(&e.to_string()));
            println!(
                "wrote maddiff snapshot '{label}' ({} messages, {} dropped events) to {out_path}",
                snap.rows.len(),
                snap.dropped_events
            );
        }
        Some("diff") => {
            let (Some(a_path), Some(b_path)) = (args.get(1), args.get(2)) else {
                fail("diff needs two input files (baseline, fresh)")
            };
            let top = args
                .iter()
                .position(|a| a == "--top")
                .map(|i| {
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| fail("--top needs a count"))
                })
                .unwrap_or(10);
            let folded_out = args.iter().position(|a| a == "--folded").map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| fail("--folded needs a path"))
            });
            let json_out = args.iter().position(|a| a == "--json").map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| fail("--json needs a path"))
            });
            let tech = tech_arg(&args);
            let a_text = std::fs::read_to_string(a_path).unwrap_or_else(|e| fail(&e.to_string()));
            let b_text = std::fs::read_to_string(b_path).unwrap_or_else(|e| fail(&e.to_string()));
            let out =
                tracecli::diff_inputs(&a_text, &b_text, tech, top).unwrap_or_else(|e| fail(&e));
            print!("{}", out.report);
            if let Some(p) = folded_out {
                std::fs::write(p, &out.folded).unwrap_or_else(|e| fail(&e.to_string()));
                println!(
                    "wrote differential folded stacks to {p} (inferno diff-folded compatible)"
                );
            }
            if let Some(p) = json_out {
                std::fs::write(p, &out.json).unwrap_or_else(|e| fail(&e.to_string()));
                println!("wrote diff document to {p}");
            }
            if args.iter().any(|a| a == "--fail-on-overflow") && out.truncated {
                eprintln!(
                    "error: trace rings dropped {} events and --fail-on-overflow is set",
                    out.dropped_events
                );
                std::process::exit(1);
            }
        }
        _ => fail("missing or unknown subcommand"),
    }
}
