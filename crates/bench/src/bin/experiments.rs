//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! ```text
//! experiments all          # run everything
//! experiments e1 e7        # run selected experiments
//! experiments --list       # list ids and titles
//! ```

use mad_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] <all | e1 e2 ...>");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for (id, run) in experiments::all() {
            // Cheap: construct only the metadata via running? No — list statically.
            let _ = run;
            println!("{id}");
        }
        return;
    }
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        experiments::all()
            .iter()
            .map(|(id, _)| id.to_string())
            .collect()
    } else {
        args
    };
    for id in ids {
        match experiments::run_by_id(&id) {
            Some(report) => println!("{}", report.render()),
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(1);
            }
        }
    }
}
