//! Experiment runner: regenerates every table in `EXPERIMENTS.md`.
//!
//! ```text
//! experiments all          # run everything
//! experiments e1 e7        # run selected experiments
//! experiments --list       # list ids and titles
//! experiments --trace-out <dir> e1   # also write madtrace artifacts
//! ```
//!
//! `--trace-out` writes each report's machine-readable artifacts (Chrome
//! trace exports, metrics-registry documents, flight-recorder dumps) into
//! the given directory.

use mad_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments [--list] [--trace-out <dir>] <all | e1 e2 ...>");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for (id, run) in experiments::all() {
            // Cheap: construct only the metadata via running? No — list statically.
            let _ = run;
            println!("{id}");
        }
        return;
    }
    let trace_out = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--trace-out needs a directory");
                std::process::exit(2);
            }
            let dir = args.remove(i + 1);
            args.remove(i);
            std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                eprintln!("cannot create {dir}: {e}");
                std::process::exit(1);
            });
            Some(dir)
        }
        None => None,
    };
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        experiments::all()
            .iter()
            .map(|(id, _)| id.to_string())
            .collect()
    } else {
        args
    };
    for id in ids {
        match experiments::run_by_id(&id) {
            Some(report) => {
                println!("{}", report.render());
                if let Some(dir) = &trace_out {
                    for (name, contents) in &report.artifacts {
                        let path = format!("{dir}/{name}");
                        match std::fs::write(&path, contents) {
                            Ok(()) => println!("   wrote {path}"),
                            Err(e) => {
                                eprintln!("cannot write {path}: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                std::process::exit(1);
            }
        }
    }
}
