//! The classic communication-library benchmark: ping-pong latency and
//! streaming bandwidth versus message size, on any calibrated technology
//! and either engine.
//!
//! ```text
//! pingpong [--tech mx|elan|ib|tcp|shm] [--legacy] [--max-size BYTES]
//! ```

use mad_bench::{fmt_bytes, fmt_f, tracecli::parse_tech, Table};
use madeleine::api::{AppDriver, CommApi};
use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::{FlowId, TrafficClass};
use madeleine::message::{DeliveredMessage, MessageBuilder};
use simnet::{NodeId, Technology};
use std::cell::RefCell;
use std::rc::Rc;

/// Ping side: sends, waits for the echo, repeats; records round trips.
struct Ping {
    peer: NodeId,
    size: usize,
    reps: u32,
    done: u32,
    flow: Option<FlowId>,
    sent_at: simnet::SimTime,
    rtts_us: Rc<RefCell<Vec<f64>>>,
}

impl AppDriver for Ping {
    fn on_start(&mut self, api: &mut dyn CommApi) {
        let f = api.open_flow(self.peer, TrafficClass::DEFAULT);
        self.flow = Some(f);
        self.sent_at = api.now();
        api.send(
            f,
            MessageBuilder::new()
                .pack_cheaper(&vec![1u8; self.size])
                .build_parts(),
        );
    }
    fn on_message(&mut self, api: &mut dyn CommApi, _msg: &DeliveredMessage) {
        self.rtts_us
            .borrow_mut()
            .push(api.now().since(self.sent_at).as_micros_f64());
        self.done += 1;
        if self.done < self.reps {
            self.sent_at = api.now();
            api.send(
                self.flow.expect("started"),
                MessageBuilder::new()
                    .pack_cheaper(&vec![1u8; self.size])
                    .build_parts(),
            );
        }
    }
}

/// Pong side: echoes everything back.
struct Pong {
    peer: NodeId,
    flow: Option<FlowId>,
}

impl AppDriver for Pong {
    fn on_start(&mut self, api: &mut dyn CommApi) {
        self.flow = Some(api.open_flow(self.peer, TrafficClass::DEFAULT));
    }
    fn on_message(&mut self, api: &mut dyn CommApi, msg: &DeliveredMessage) {
        let body = msg.fragments[0].1.clone();
        api.send(
            self.flow.expect("started"),
            MessageBuilder::new()
                .pack_bytes(body, madeleine::PackMode::Cheaper)
                .build_parts(),
        );
    }
}

fn pingpong(tech: Technology, legacy: bool, size: usize, reps: u32) -> (f64, f64) {
    let engine = if legacy {
        EngineKind::legacy()
    } else {
        EngineKind::optimizing()
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine,
        trace: None,
        engine_trace: None,
    };
    let rtts = Rc::new(RefCell::new(Vec::new()));
    let ping = Ping {
        peer: NodeId(1),
        size,
        reps,
        done: 0,
        flow: None,
        sent_at: simnet::SimTime::ZERO,
        rtts_us: rtts.clone(),
    };
    let pong = Pong {
        peer: NodeId(0),
        flow: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ping)), Some(Box::new(pong))]);
    c.drain();
    let rtts = rtts.borrow();
    assert_eq!(rtts.len(), reps as usize, "ping-pong stalled");
    let mean_rtt = rtts.iter().sum::<f64>() / rtts.len() as f64;
    let half = mean_rtt / 2.0;
    // Streaming bandwidth estimate from the one-way time.
    let mbps = size as f64 / half; // bytes per µs == MB/s
    (half, mbps)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let legacy = args.iter().any(|a| a == "--legacy");
    let tech = match args.iter().position(|a| a == "--tech") {
        Some(i) => {
            parse_tech(args.get(i + 1).map(String::as_str).unwrap_or("")).unwrap_or_else(|| {
                eprintln!("unknown technology");
                std::process::exit(2);
            })
        }
        None => Technology::MyrinetMx,
    };
    let max_size: usize = match args.iter().position(|a| a == "--max-size") {
        Some(i) => args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1 << 20),
        None => 1 << 20,
    };
    let mut t = Table::new(
        format!(
            "ping-pong on {} ({} engine)",
            tech.label(),
            if legacy { "legacy" } else { "optimizing" }
        ),
        &["size", "half-RTT (us)", "bandwidth (MB/s)"],
    );
    let mut size = 1usize;
    while size <= max_size {
        let (half, mbps) = pingpong(tech, legacy, size, 30);
        t.row(vec![fmt_bytes(size as u64), fmt_f(half), fmt_f(mbps)]);
        size *= 4;
    }
    print!("{}", t.render());
}
