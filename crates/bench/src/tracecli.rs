//! Implementation of the `trace-tool` binary: inspect, generate, replay
//! and export workload traces from the command line.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::trace::{ChromeExport, EngineEvent};
use madeleine::Json;
use madware::apps::{FlowSpec, TrafficApp};
use madware::trace::{Recorder, ReplayApp, Trace};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::fmt_f;

/// Default ring capacity for traced replays (simulator + engine events).
pub const EXPORT_TRACE_CAP: usize = 1 << 16;

/// Parse a technology name.
pub fn parse_tech(s: &str) -> Option<Technology> {
    Some(match s.to_ascii_lowercase().as_str() {
        "mx" | "myrinet" => Technology::MyrinetMx,
        "elan" | "quadrics" => Technology::QuadricsElan,
        "ib" | "infiniband" => Technology::InfiniBand,
        "tcp" | "gige" => Technology::TcpEthernet,
        "shm" => Technology::SharedMem,
        _ => return None,
    })
}

/// Render a human summary of a trace.
pub fn info(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flows: {}   messages: {}   payload: {} bytes\n",
        trace.flows.len(),
        trace.len(),
        trace.total_bytes()
    ));
    if let (Some(first), Some(last)) = (trace.msgs.first(), trace.msgs.last()) {
        out.push_str(&format!(
            "span: {} us of virtual time\n",
            fmt_f((last.at_ns - first.at_ns) as f64 / 1e3)
        ));
    }
    for (i, (dst, class)) in trace.flows.iter().enumerate() {
        let msgs = trace.msgs.iter().filter(|m| m.flow_idx == i).count();
        let bytes: u64 = trace
            .msgs
            .iter()
            .filter(|m| m.flow_idx == i)
            .flat_map(|m| m.frags.iter())
            .map(|&(n, _)| n as u64)
            .sum();
        out.push_str(&format!(
            "  flow {i}: -> node {} class {} ({} msgs, {} bytes)\n",
            dst.0,
            class.label(),
            msgs,
            bytes
        ));
    }
    out
}

/// Replay a trace on a fresh two-node cluster; returns a result summary.
pub fn replay(trace: Trace, legacy: bool, tech: Technology) -> String {
    let engine = if legacy {
        EngineKind::legacy()
    } else {
        EngineKind::optimizing()
    };
    let expected = trace.len() as u64;
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine,
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    let end = c.drain();
    let tx = c.handle(0).metrics();
    let rx = c.handle(1).metrics();
    format!(
        "engine: {}   rail: {}\n\
         delivered {}/{} messages in {} (virtual)\n\
         {} wire packets, {} chunks/pkt, mean latency {} us\n",
        if legacy { "legacy" } else { "optimizing" },
        tech.label(),
        rx.delivered_msgs,
        expected,
        end,
        tx.packets_sent,
        fmt_f(tx.aggregation_ratio()),
        fmt_f(rx.latency.summary().mean()),
    )
}

/// Run the same trace on both engines and render a comparison table.
pub fn compare(trace: Trace, tech: Technology) -> String {
    let run = |legacy: bool| {
        let engine = if legacy {
            EngineKind::legacy()
        } else {
            EngineKind::optimizing()
        };
        let spec = ClusterSpec {
            nodes: 2,
            rails: vec![tech],
            engine,
            trace: None,
            engine_trace: None,
        };
        let mut c = Cluster::build(
            &spec,
            vec![Some(Box::new(ReplayApp::new(trace.clone()))), None],
        );
        let end = c.drain();
        let tx = c.handle(0).metrics();
        let rx = c.handle(1).metrics();
        (end, tx, rx)
    };
    let (opt_end, opt_tx, opt_rx) = run(false);
    let (leg_end, leg_tx, leg_rx) = run(true);
    let mut t = crate::Table::new(
        format!("same trace on both engines ({} rail)", tech.label()),
        &["metric", "optimizing", "legacy"],
    );
    t.row(vec![
        "makespan (us)".into(),
        fmt_f(opt_end.as_micros_f64()),
        fmt_f(leg_end.as_micros_f64()),
    ]);
    t.row(vec![
        "wire packets".into(),
        opt_tx.packets_sent.to_string(),
        leg_tx.packets_sent.to_string(),
    ]);
    t.row(vec![
        "chunks/packet".into(),
        fmt_f(opt_tx.aggregation_ratio()),
        fmt_f(leg_tx.aggregation_ratio()),
    ]);
    t.row(vec![
        "mean latency (us)".into(),
        fmt_f(opt_rx.latency.summary().mean()),
        fmt_f(leg_rx.latency.summary().mean()),
    ]);
    t.row(vec![
        "p99-ish latency (us)".into(),
        fmt_f(opt_rx.latency.quantile(0.99).as_micros_f64()),
        fmt_f(leg_rx.latency.quantile(0.99).as_micros_f64()),
    ]);
    t.render()
}

/// Build the fully-traced two-node replay cluster used by `export` and
/// `explain`.
fn traced_replay(trace: Trace, legacy: bool, tech: Technology) -> Cluster {
    let engine = if legacy {
        EngineKind::legacy()
    } else {
        EngineKind::optimizing()
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine,
        trace: Some(EXPORT_TRACE_CAP),
        engine_trace: Some(EXPORT_TRACE_CAP),
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    c.drain();
    c
}

/// Replay a trace with full tracing enabled and export the merged
/// simulator + engine timeline as Chrome trace-event JSON, plus the
/// cluster-wide metrics-registry document.
pub fn export(trace: Trace, legacy: bool, tech: Technology) -> (ChromeExport, String) {
    let c = traced_replay(trace, legacy, tech);
    let export = c.export_chrome_trace();
    let metrics = c.metrics_registry().render();
    (export, metrics)
}

/// Render the optimizer's decision log for one activation of a traced
/// replay: every plan proposed, its veto or score, and the winner.
/// `activation` picks an explicit id; by default the activation with the
/// most proposals (ties: lowest id) is explained.
pub fn explain(trace: Trace, tech: Technology, activation: Option<u64>) -> String {
    let c = traced_replay(trace, false, tech);
    let sink = c.handles[0]
        .opt()
        .expect("optimizing engine")
        .trace_snapshot();
    let mut out = format!(
        "node 0: {} engine events retained ({} dropped), {} activations\n",
        sink.len(),
        sink.dropped(),
        sink.count_matching(|e| matches!(e, EngineEvent::ActivationStart { .. })),
    );
    let target = activation.or_else(|| {
        // Most-contested activation: largest proposal count, lowest id.
        let mut counts: Vec<(u64, usize)> = Vec::new();
        for rec in sink.iter() {
            if let EngineEvent::PlanProposed { activation, .. } = rec.event {
                match counts.iter_mut().find(|(a, _)| *a == activation) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((activation, 1)),
                }
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
            .map(|(a, _)| a)
    });
    let Some(target) = target else {
        out.push_str("no optimizer activations recorded\n");
        return out;
    };
    let fmt_score = |num: u64, den: u64| fmt_f(num as f64 / den.max(1) as f64 / 1000.0);
    let mut seen = false;
    for rec in sink.iter() {
        if rec.event.activation() != Some(target) {
            continue;
        }
        seen = true;
        match &rec.event {
            EngineEvent::ActivationStart {
                cause,
                rail,
                backlog_depth,
                ..
            } => out.push_str(&format!(
                "activation {target} @ {}: cause {}, rail {rail}, backlog {backlog_depth}\n",
                rec.at,
                cause.label(),
            )),
            EngineEvent::PlanProposed {
                strategy,
                chunks,
                bytes,
                ..
            } => out.push_str(&format!(
                "  {strategy}: proposed {chunks} chunk(s) / {bytes} B\n"
            )),
            EngineEvent::PlanVetoed {
                strategy,
                violation,
                ..
            } => out.push_str(&format!("    {strategy} vetoed: {violation}\n")),
            EngineEvent::PlanScored {
                strategy,
                score_num,
                score_den,
                ..
            } => out.push_str(&format!(
                "    {strategy} scored {} ({score_num}/{score_den})\n",
                fmt_score(*score_num, *score_den),
            )),
            EngineEvent::PlanWon {
                strategy,
                score_num,
                score_den,
                ..
            } => out.push_str(&format!(
                "  winner: {strategy} (score {})\n",
                fmt_score(*score_num, *score_den),
            )),
            EngineEvent::PacketEncoded {
                cookie,
                chunks,
                bytes,
                linearized,
                ..
            } => out.push_str(&format!(
                "  encoded: cookie {cookie}, {chunks} chunk(s), {bytes} B{}\n",
                if *linearized { ", linearized" } else { "" },
            )),
            _ => {}
        }
    }
    if !seen {
        out.push_str(&format!("activation {target} not found in the ring\n"));
    }
    out
}

/// Summarize a Chrome trace-event export produced by `export`: event
/// count plus the retained/dropped counters of every contributing ring.
/// Returns `None` when `text` is not a madtrace Chrome export.
pub fn info_export(text: &str) -> Option<String> {
    let doc = Json::parse(text).ok()?;
    let events = doc.get("traceEvents")?.as_array()?.len();
    let other = doc.get("otherData")?;
    if other.get("exporter")?.as_str() != Some("madtrace") {
        return None;
    }
    let mut out = format!("chrome trace export: {events} events\n");
    out.push_str(&format!(
        "  sim trace: {} retained, {} dropped\n",
        other
            .get("sim_retained")
            .and_then(|v| v.as_u64())
            .unwrap_or(0),
        other
            .get("sim_dropped")
            .and_then(|v| v.as_u64())
            .unwrap_or(0),
    ));
    let fault = |key: &str| other.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
    out.push_str(&format!(
        "  wire faults: {} dropped, {} duplicated, {} stalled\n",
        fault("wire_drops"),
        fault("wire_dups"),
        fault("wire_stalls"),
    ));
    if let Some(Json::Obj(retained)) = other.get("engine_retained") {
        for (node, v) in retained {
            let dropped = other
                .get("engine_dropped")
                .and_then(|d| d.get(node))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            out.push_str(&format!(
                "  {node} engine trace: {} retained, {dropped} dropped\n",
                v.as_u64().unwrap_or(0),
            ));
        }
    }
    Some(out)
}

/// Generate a sample multi-flow trace (for demos and tests).
pub fn sample(seed: u64) -> Trace {
    let specs: Vec<FlowSpec> = (0..4)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: madeleine::TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(6)),
            sizes: SizeDist::Uniform(16, 1024),
            express_header: 8,
            stop_after: Some(50),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _) = TrafficApp::new("sample", specs, seed, 0);
    let (recorder, handle) = Recorder::new(Box::new(app));
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(recorder)), None]);
    c.drain();
    let t = handle.borrow().clone();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_traces_are_nonempty_and_parse() {
        let t = sample(7);
        assert_eq!(t.len(), 200);
        let text = t.to_text();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn info_mentions_every_flow() {
        let t = sample(7);
        let s = info(&t);
        assert!(s.contains("messages: 200"));
        assert!(s.contains("flow 3:"));
    }

    #[test]
    fn replay_summary_reports_full_delivery() {
        let t = sample(9);
        let s = replay(t.clone(), false, Technology::MyrinetMx);
        assert!(s.contains("delivered 200/200"), "{s}");
        let s = replay(t, true, Technology::QuadricsElan);
        assert!(s.contains("legacy"));
        assert!(s.contains("delivered 200/200"), "{s}");
    }

    #[test]
    fn compare_renders_both_engines() {
        let t = sample(11);
        let s = compare(t, Technology::MyrinetMx);
        assert!(s.contains("optimizing"));
        assert!(s.contains("legacy"));
        assert!(s.contains("makespan"));
    }

    #[test]
    fn export_round_trips_and_is_deterministic() {
        let t = sample(7);
        let (a, metrics) = export(t.clone(), false, Technology::MyrinetMx);
        assert_eq!(
            madeleine::chrome_event_count(&a.json).unwrap(),
            a.events,
            "export -> parse -> event count must round-trip"
        );
        // Repeat runs of the same seeded workload are byte-identical.
        let (b, _) = export(t, false, Technology::MyrinetMx);
        assert_eq!(a.json, b.json);
        // The metrics registry parses and names both engine sections.
        let doc = Json::parse(&metrics).unwrap();
        assert_eq!(
            doc.get("artifact").and_then(|v| v.as_str()),
            Some("madtrace-metrics")
        );
        // info_export summarizes the export.
        let s = info_export(&a.json).expect("export is sniffable");
        assert!(s.contains(&format!("{} events", a.events)), "{s}");
        assert!(s.contains("sim trace:"), "{s}");
        assert!(s.contains("wire faults: 0 dropped"), "{s}");
        assert!(s.contains("engine trace:"), "{s}");
        // Plain workload traces are not mistaken for exports.
        assert!(info_export("# madeleine-trace v1\n").is_none());
    }

    #[test]
    fn explain_shows_the_decision_contest() {
        let s = explain(sample(7), Technology::MyrinetMx, None);
        assert!(s.contains("activation"), "{s}");
        assert!(s.contains("proposed"), "{s}");
        assert!(s.contains("winner:"), "{s}");
        // Unknown activations are reported, not fabricated.
        let s = explain(sample(7), Technology::MyrinetMx, Some(u64::MAX));
        assert!(s.contains("not found"), "{s}");
    }

    #[test]
    fn tech_names_parse() {
        assert_eq!(parse_tech("mx"), Some(Technology::MyrinetMx));
        assert_eq!(parse_tech("ELAN"), Some(Technology::QuadricsElan));
        assert_eq!(parse_tech("nonsense"), None);
    }
}
