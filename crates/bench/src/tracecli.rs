//! Implementation of the `trace-tool` binary: inspect, generate, replay
//! and export workload traces from the command line.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::trace::{ChromeExport, EngineEvent};
use madeleine::{Json, LatencyHistogram, Sampler};
use madware::apps::{FlowSpec, TrafficApp};
use madware::trace::{Recorder, ReplayApp, Trace};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::fmt_f;

/// Default ring capacity for traced replays (simulator + engine events).
pub const EXPORT_TRACE_CAP: usize = 1 << 16;

/// Parse a technology name.
pub fn parse_tech(s: &str) -> Option<Technology> {
    Some(match s.to_ascii_lowercase().as_str() {
        "mx" | "myrinet" => Technology::MyrinetMx,
        "elan" | "quadrics" => Technology::QuadricsElan,
        "ib" | "infiniband" => Technology::InfiniBand,
        "tcp" | "gige" => Technology::TcpEthernet,
        "shm" => Technology::SharedMem,
        _ => return None,
    })
}

/// Render a human summary of a trace.
pub fn info(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flows: {}   messages: {}   payload: {} bytes\n",
        trace.flows.len(),
        trace.len(),
        trace.total_bytes()
    ));
    if let (Some(first), Some(last)) = (trace.msgs.first(), trace.msgs.last()) {
        out.push_str(&format!(
            "span: {} us of virtual time\n",
            fmt_f((last.at_ns - first.at_ns) as f64 / 1e3)
        ));
    }
    for (i, (dst, class)) in trace.flows.iter().enumerate() {
        let msgs = trace.msgs.iter().filter(|m| m.flow_idx == i).count();
        let bytes: u64 = trace
            .msgs
            .iter()
            .filter(|m| m.flow_idx == i)
            .flat_map(|m| m.frags.iter())
            .map(|&(n, _)| n as u64)
            .sum();
        out.push_str(&format!(
            "  flow {i}: -> node {} class {} ({} msgs, {} bytes)\n",
            dst.0,
            class.label(),
            msgs,
            bytes
        ));
    }
    out
}

/// Replay a trace on a fresh two-node cluster; returns a result summary.
pub fn replay(trace: Trace, legacy: bool, tech: Technology) -> String {
    let engine = if legacy {
        EngineKind::legacy()
    } else {
        EngineKind::optimizing()
    };
    let expected = trace.len() as u64;
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine,
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    let end = c.drain();
    let tx = c.handle(0).metrics();
    let rx = c.handle(1).metrics();
    format!(
        "engine: {}   rail: {}\n\
         delivered {}/{} messages in {} (virtual)\n\
         {} wire packets, {} chunks/pkt, mean latency {} us\n",
        if legacy { "legacy" } else { "optimizing" },
        tech.label(),
        rx.delivered_msgs,
        expected,
        end,
        tx.packets_sent,
        fmt_f(tx.aggregation_ratio()),
        fmt_f(rx.latency.summary().mean()),
    )
}

/// Run the same trace on both engines and render a comparison table.
pub fn compare(trace: Trace, tech: Technology) -> String {
    let run = |legacy: bool| {
        let engine = if legacy {
            EngineKind::legacy()
        } else {
            EngineKind::optimizing()
        };
        let spec = ClusterSpec {
            nodes: 2,
            rails: vec![tech],
            engine,
            trace: None,
            engine_trace: None,
        };
        let mut c = Cluster::build(
            &spec,
            vec![Some(Box::new(ReplayApp::new(trace.clone()))), None],
        );
        let end = c.drain();
        let tx = c.handle(0).metrics();
        let rx = c.handle(1).metrics();
        (end, tx, rx)
    };
    let (opt_end, opt_tx, opt_rx) = run(false);
    let (leg_end, leg_tx, leg_rx) = run(true);
    let mut t = crate::Table::new(
        format!("same trace on both engines ({} rail)", tech.label()),
        &["metric", "optimizing", "legacy"],
    );
    t.row(vec![
        "makespan (us)".into(),
        fmt_f(opt_end.as_micros_f64()),
        fmt_f(leg_end.as_micros_f64()),
    ]);
    t.row(vec![
        "wire packets".into(),
        opt_tx.packets_sent.to_string(),
        leg_tx.packets_sent.to_string(),
    ]);
    t.row(vec![
        "chunks/packet".into(),
        fmt_f(opt_tx.aggregation_ratio()),
        fmt_f(leg_tx.aggregation_ratio()),
    ]);
    t.row(vec![
        "mean latency (us)".into(),
        fmt_f(opt_rx.latency.summary().mean()),
        fmt_f(leg_rx.latency.summary().mean()),
    ]);
    t.row(vec![
        "p99-ish latency (us)".into(),
        fmt_f(opt_rx.latency.quantile(0.99).as_micros_f64()),
        fmt_f(leg_rx.latency.quantile(0.99).as_micros_f64()),
    ]);
    t.render()
}

/// Replay a trace on the optimizing engine with the madscope sampler
/// enabled, and render the run as percentile tables plus ASCII timelines
/// of the backlog and per-rail utilization. Returns the rendered report
/// and the sampler's CSV export (for `--csv`).
pub fn stats(trace: Trace, tech: Technology, tick_us: u64) -> (String, String) {
    let tick_us = tick_us.max(1);
    let expected = trace.len() as u64;
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    // Classes the trace opens flows under, captured before the replay
    // consumes it: a class whose every flow was cancelled or shed
    // delivers nothing, and must still show up in the percentile table.
    let mut trace_classes: Vec<u8> = trace.flows.iter().map(|&(_, class)| class.0).collect();
    trace_classes.sort_unstable();
    trace_classes.dedup();
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    c.enable_sampler(SimDuration::from_micros(tick_us));
    let end = c.drain();
    let tx = c.handle(0).metrics();
    let rx = c.handle(1).metrics();

    let mut out = format!(
        "madscope stats: {} rail, delivered {}/{} messages, makespan {} us, \
         sampler tick {tick_us} us\n\n",
        tech.label(),
        rx.delivered_msgs,
        expected,
        fmt_f(end.as_micros_f64()),
    );

    let mut t = crate::Table::new(
        "delivery latency percentiles (us; log2-bucket upper bounds, max exact)",
        &["scope", "count", "p50", "p90", "p99", "max"],
    );
    let mut rows = 0usize;
    let row = |t: &mut crate::Table, name: String, h: &LatencyHistogram| -> bool {
        if h.count() == 0 {
            return false;
        }
        // A single sample makes every log2-bucket percentile the same
        // upper bound, which can overstate the one real value by almost
        // 2x — report the exact value instead of a degenerate spread.
        let q = |q: f64| {
            if h.count() == 1 {
                fmt_f(h.summary().max())
            } else {
                fmt_f(h.quantile(q).as_micros_f64())
            }
        };
        t.row(vec![
            name,
            h.count().to_string(),
            q(0.5),
            q(0.9),
            q(0.99),
            fmt_f(h.summary().max()),
        ]);
        true
    };
    rows += row(&mut t, "all".into(), &rx.latency) as usize;
    for (i, h) in rx.latency_by_class.iter().enumerate() {
        if h.count() == 0 && trace_classes.contains(&(i as u8)) {
            // The trace offered this class but nothing was delivered
            // (every flow cancelled or shed): an explicit zero row beats
            // silently vanishing from the table.
            rows += 1;
            t.row(vec![
                format!("class {}", madeleine::TrafficClass(i as u8).label()),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        rows += row(
            &mut t,
            format!("class {}", madeleine::TrafficClass(i as u8).label()),
            h,
        ) as usize;
    }
    for (flow, h) in &rx.latency_by_flow {
        rows += row(&mut t, format!("flow {flow}"), h) as usize;
    }
    for (r, h) in rx.latency_by_rail.iter().enumerate() {
        rows += row(&mut t, format!("rail {r}"), h) as usize;
    }
    rows += row(&mut t, "queue delay (tx)".into(), &tx.queue_delay) as usize;
    if rows == 0 {
        out.push_str("no deliveries recorded: latency percentile table omitted\n");
    } else {
        out.push_str(&t.render());
    }
    out.push('\n');

    if tx.decision_evals.count() > 0 {
        out.push_str(&format!(
            "optimizer decision work: {} activations, plans scored per \
             activation p50 {} / p99 {} / max {}\n\n",
            tx.decision_evals.count(),
            tx.decision_evals.quantile(0.5),
            tx.decision_evals.quantile(0.99),
            tx.decision_evals.summary().max(),
        ));
    }

    let csv = c.sampler_csv(0).unwrap_or_default();
    if let Some(s) = c.handle(0).opt().and_then(|h| h.sampler_snapshot()) {
        out.push_str(&timelines(&s));
    }
    (out, csv)
}

/// ASCII timelines of one sampler ring: backlog plus per-rail
/// utilization, downsampled to a fixed width (each column shows the
/// segment maximum).
fn timelines(s: &Sampler) -> String {
    let rows: Vec<_> = s.rows().collect();
    if rows.is_empty() {
        return "sampler recorded no ticks\n".to_string();
    }
    let span = format!(
        "sampler timeline: {} ticks ({} dropped), {} -> {}\n",
        rows.len(),
        s.dropped(),
        rows[0].at,
        rows[rows.len() - 1].at,
    );
    let backlog: Vec<u64> = rows.iter().map(|r| r.stats.backlog_bytes).collect();
    let inflight: Vec<u64> = rows.iter().map(|r| r.stats.inflight_pkts).collect();
    let mut out = span;
    out.push_str(&spark_line("backlog bytes", &backlog));
    out.push_str(&spark_line("inflight pkts", &inflight));
    let rails = rows[0].rails.len();
    for r in 0..rails {
        let util: Vec<u64> = rows
            .iter()
            .map(|row| u64::from(row.rails[r].util_milli))
            .collect();
        out.push_str(&spark_line(&format!("rail{r} util"), &util));
        let last = &rows[rows.len() - 1].rails[r];
        if last.dead {
            out.push_str(&format!("    rail{r} is DEAD\n"));
        } else if last.health_milli < 1000 {
            out.push_str(&format!(
                "    rail{r} final health {}.{:03}\n",
                last.health_milli / 1000,
                last.health_milli % 1000
            ));
        }
    }
    out
}

/// One labelled sparkline: `label  [.:-=+*#%@]  peak <max>`.
fn spark_line(label: &str, vals: &[u64]) -> String {
    const WIDTH: usize = 64;
    const LEVELS: &[u8] = b" .:-=+*#%@";
    let peak = vals.iter().copied().max().unwrap_or(0);
    let cols = WIDTH.min(vals.len().max(1));
    let mut bar = String::with_capacity(cols);
    for i in 0..cols {
        // Segment [start, end) of the input mapped onto column i.
        let start = i * vals.len() / cols;
        let end = ((i + 1) * vals.len() / cols).max(start + 1);
        let seg = vals[start..end.min(vals.len())]
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let idx = if peak == 0 {
            0
        } else {
            (seg as usize * (LEVELS.len() - 1)).div_ceil(peak as usize)
        };
        bar.push(LEVELS[idx.min(LEVELS.len() - 1)] as char);
    }
    format!("  {label:>14} |{bar}| peak {peak}\n")
}

/// Build the fully-traced two-node replay cluster used by `export`,
/// `explain` and the bench suite's madprof smoke point.
pub fn traced_replay(trace: Trace, legacy: bool, tech: Technology) -> Cluster {
    let engine = if legacy {
        EngineKind::legacy()
    } else {
        EngineKind::optimizing()
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine,
        trace: Some(EXPORT_TRACE_CAP),
        engine_trace: Some(EXPORT_TRACE_CAP),
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    c.drain();
    c
}

/// Replay a trace with full tracing enabled and export the merged
/// simulator + engine timeline as Chrome trace-event JSON, plus the
/// cluster-wide metrics-registry document.
pub fn export(trace: Trace, legacy: bool, tech: Technology) -> (ChromeExport, String) {
    let c = traced_replay(trace, legacy, tech);
    let export = c.export_chrome_trace();
    let metrics = c.metrics_registry().render();
    (export, metrics)
}

/// Render the optimizer's decision log for one activation of a traced
/// replay: every plan proposed, its veto or score, and the winner.
/// `activation` picks an explicit id; by default the activation with the
/// most proposals (ties: lowest id) is explained.
pub fn explain(trace: Trace, tech: Technology, activation: Option<u64>) -> String {
    let c = traced_replay(trace, false, tech);
    let sink = c.handles[0]
        .opt()
        .expect("optimizing engine")
        .trace_snapshot();
    let mut out = format!(
        "node 0: {} engine events retained ({} dropped), {} activations\n",
        sink.len(),
        sink.dropped(),
        sink.count_matching(|e| matches!(e, EngineEvent::ActivationStart { .. })),
    );
    let target = activation.or_else(|| {
        // Most-contested activation: largest proposal count, lowest id.
        let mut counts: Vec<(u64, usize)> = Vec::new();
        for rec in sink.iter() {
            if let EngineEvent::PlanProposed { activation, .. } = rec.event {
                match counts.iter_mut().find(|(a, _)| *a == activation) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((activation, 1)),
                }
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
            .map(|(a, _)| a)
    });
    let Some(target) = target else {
        out.push_str("no optimizer activations recorded\n");
        return out;
    };
    let fmt_score = |num: u64, den: u64| fmt_f(num as f64 / den.max(1) as f64 / 1000.0);
    let mut seen = false;
    for rec in sink.iter() {
        if rec.event.activation() != Some(target) {
            continue;
        }
        seen = true;
        match &rec.event {
            EngineEvent::ActivationStart {
                cause,
                rail,
                backlog_depth,
                ..
            } => out.push_str(&format!(
                "activation {target} @ {}: cause {}, rail {rail}, backlog {backlog_depth}\n",
                rec.at,
                cause.label(),
            )),
            EngineEvent::PlanProposed {
                strategy,
                chunks,
                bytes,
                ..
            } => out.push_str(&format!(
                "  {strategy}: proposed {chunks} chunk(s) / {bytes} B\n"
            )),
            EngineEvent::PlanVetoed {
                strategy,
                violation,
                ..
            } => out.push_str(&format!("    {strategy} vetoed: {violation}\n")),
            EngineEvent::PlanScored {
                strategy,
                score_num,
                score_den,
                ..
            } => out.push_str(&format!(
                "    {strategy} scored {} ({score_num}/{score_den})\n",
                fmt_score(*score_num, *score_den),
            )),
            EngineEvent::PlanWon {
                strategy,
                score_num,
                score_den,
                ..
            } => out.push_str(&format!(
                "  winner: {strategy} (score {})\n",
                fmt_score(*score_num, *score_den),
            )),
            EngineEvent::PacketEncoded {
                cookie,
                chunks,
                bytes,
                linearized,
                ..
            } => out.push_str(&format!(
                "  encoded: cookie {cookie}, {chunks} chunk(s), {bytes} B{}\n",
                if *linearized { ", linearized" } else { "" },
            )),
            _ => {}
        }
    }
    if !seen {
        out.push_str(&format!("activation {target} not found in the ring\n"));
    }
    out
}

/// Everything `trace-tool profile` produces for one input.
pub struct ProfileOutput {
    /// Human report: truncation warnings, top-N explain table,
    /// critical-path summary.
    pub report: String,
    /// Folded-stack flamegraph text (inferno-compatible).
    pub folded: String,
    /// Per-message attribution CSV.
    pub csv: String,
    /// The profile JSON block.
    pub json: String,
    /// The trace ring dropped events — `--fail-on-overflow` trips on this.
    pub truncated: bool,
    /// How many events were dropped.
    pub dropped_events: u64,
}

/// madprof from the command line: accept either a madtrace Chrome export
/// (profiled directly from the artifact) or a workload trace (replayed on
/// a fully-traced cluster first), attribute every delivered message's
/// latency and explain the `top` slowest.
pub fn profile_input(text: &str, tech: Technology, top: usize) -> Result<ProfileOutput, String> {
    let is_chrome = Json::parse(text)
        .ok()
        .and_then(|doc| {
            doc.get("otherData")?
                .get("exporter")
                .map(|e| e.as_str() == Some("madtrace"))
        })
        .unwrap_or(false);
    let prof = if is_chrome {
        madeleine::ProfInput::from_chrome(text)?.profile()
    } else {
        let trace = Trace::from_text(text).map_err(|e| {
            format!("input is neither a madtrace Chrome export nor a workload trace: {e:?}")
        })?;
        traced_replay(trace, false, tech).profile()
    };
    let mut report = String::new();
    if prof.truncated() {
        report.push_str(&format!(
            "WARNING: {} trace events were dropped by ring overflow — the \
             event stream is TRUNCATED and attribution below may be \
             incomplete or misattributed (raise the trace capacity and \
             re-run)\n\n",
            prof.dropped_events
        ));
    }
    if prof.partition_violations > 0 {
        report.push_str(&format!(
            "WARNING: {} message(s) whose reconstructed lifetime disagrees \
             with the receiver-measured latency — inconsistent streams\n\n",
            prof.partition_violations
        ));
    }
    report.push_str(&prof.explain(top));
    Ok(ProfileOutput {
        report,
        folded: prof.folded_stacks(),
        csv: prof.attribution_csv(),
        json: prof.to_json().render(),
        truncated: prof.truncated(),
        dropped_events: prof.dropped_events,
    })
}

/// Everything `trace-tool diff` produces for one pair of inputs.
pub struct DiffOutput {
    /// Human report: phase deltas, migrations, divergences, top movers.
    pub report: String,
    /// Signed differential folded stacks (`stack a_ns b_ns`, inferno
    /// `difffolded` format).
    pub folded: String,
    /// The diff JSON document.
    pub json: String,
    /// Either input's trace ring dropped events.
    pub truncated: bool,
    /// Total events dropped across both inputs.
    pub dropped_events: u64,
}

/// Normalize one `trace-tool diff` input into a [`madeleine::RunSnapshot`].
/// Accepts, in sniffing order: a maddiff snapshot artifact (loaded
/// as-is), a madtrace Chrome export (profiled from the artifact), or a
/// workload trace (replayed on a fully-traced cluster first).
pub fn snapshot_input(
    text: &str,
    tech: Technology,
    label: &str,
) -> Result<madeleine::RunSnapshot, String> {
    if let Ok(doc) = Json::parse(text) {
        if doc.get("artifact").and_then(|v| v.as_str()) == Some("maddiff-snapshot") {
            return madeleine::RunSnapshot::from_json(&doc);
        }
        let is_chrome = doc
            .get("otherData")
            .and_then(|o| o.get("exporter"))
            .map(|e| e.as_str() == Some("madtrace"))
            .unwrap_or(false);
        if is_chrome {
            let input = madeleine::ProfInput::from_chrome(text)?;
            return Ok(madeleine::RunSnapshot::capture(label, &input));
        }
    }
    let trace = Trace::from_text(text).map_err(|e| {
        format!(
            "input is neither a maddiff snapshot, a madtrace Chrome export, \
             nor a workload trace: {e:?}"
        )
    })?;
    Ok(traced_replay(trace, false, tech).run_snapshot(label))
}

/// maddiff from the command line: normalize two inputs (any mix of
/// snapshot / Chrome export / workload trace) and diff run B against
/// baseline run A.
pub fn diff_inputs(
    a_text: &str,
    b_text: &str,
    tech: Technology,
    top: usize,
) -> Result<DiffOutput, String> {
    let a = snapshot_input(a_text, tech, "a")?;
    let b = snapshot_input(b_text, tech, "b")?;
    let d = madeleine::diff(&a, &b);
    let mut report = String::new();
    if d.truncated() {
        report.push_str(&format!(
            "WARNING: {} trace events were dropped by ring overflow — one \
             or both inputs are TRUNCATED and the deltas below may blame \
             the wrong phase (raise the trace capacity and re-run)\n\n",
            a.dropped_events + b.dropped_events
        ));
    }
    report.push_str(&d.report(top));
    Ok(DiffOutput {
        report,
        folded: d.folded_diff(),
        json: d.to_json().render(),
        truncated: d.truncated(),
        dropped_events: a.dropped_events + b.dropped_events,
    })
}

/// Summarize a Chrome trace-event export produced by `export`: event
/// count plus the retained/dropped counters of every contributing ring.
/// Returns `None` when `text` is not a madtrace Chrome export.
pub fn info_export(text: &str) -> Option<String> {
    let doc = Json::parse(text).ok()?;
    let events = doc.get("traceEvents")?.as_array()?.len();
    let other = doc.get("otherData")?;
    if other.get("exporter")?.as_str() != Some("madtrace") {
        return None;
    }
    let mut out = format!("chrome trace export: {events} events\n");
    out.push_str(&format!(
        "  sim trace: {} retained, {} dropped\n",
        other
            .get("sim_retained")
            .and_then(|v| v.as_u64())
            .unwrap_or(0),
        other
            .get("sim_dropped")
            .and_then(|v| v.as_u64())
            .unwrap_or(0),
    ));
    let fault = |key: &str| other.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
    out.push_str(&format!(
        "  wire faults: {} dropped, {} duplicated, {} stalled\n",
        fault("wire_drops"),
        fault("wire_dups"),
        fault("wire_stalls"),
    ));
    // madnet: exports from switched clusters carry per-rail topology
    // metadata; flat private-pipe rails are simply absent.
    if let Some(Json::Arr(topos)) = other.get("topologies") {
        for t in topos {
            let u = |key: &str| t.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
            out.push_str(&format!(
                "  topology: {} — {} hosts, {} switches, {} links, \
                 oversubscription {:.2}:1\n",
                t.get("name").and_then(|v| v.as_str()).unwrap_or("?"),
                u("hosts"),
                u("switches"),
                u("links"),
                u("oversub_milli") as f64 / 1000.0,
            ));
        }
    }
    if let Some(Json::Obj(retained)) = other.get("engine_retained") {
        for (node, v) in retained {
            let dropped = other
                .get("engine_dropped")
                .and_then(|d| d.get(node))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            out.push_str(&format!(
                "  {node} engine trace: {} retained, {dropped} dropped\n",
                v.as_u64().unwrap_or(0),
            ));
        }
    }
    Some(out)
}

/// Generate a sample multi-flow trace (for demos and tests).
pub fn sample(seed: u64) -> Trace {
    let specs: Vec<FlowSpec> = (0..4)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: madeleine::TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(6)),
            sizes: SizeDist::Uniform(16, 1024),
            express_header: 8,
            stop_after: Some(50),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _) = TrafficApp::new("sample", specs, seed, 0);
    let (recorder, handle) = Recorder::new(Box::new(app));
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(recorder)), None]);
    c.drain();
    let t = handle.borrow().clone();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_traces_are_nonempty_and_parse() {
        let t = sample(7);
        assert_eq!(t.len(), 200);
        let text = t.to_text();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn info_mentions_every_flow() {
        let t = sample(7);
        let s = info(&t);
        assert!(s.contains("messages: 200"));
        assert!(s.contains("flow 3:"));
    }

    #[test]
    fn replay_summary_reports_full_delivery() {
        let t = sample(9);
        let s = replay(t.clone(), false, Technology::MyrinetMx);
        assert!(s.contains("delivered 200/200"), "{s}");
        let s = replay(t, true, Technology::QuadricsElan);
        assert!(s.contains("legacy"));
        assert!(s.contains("delivered 200/200"), "{s}");
    }

    #[test]
    fn compare_renders_both_engines() {
        let t = sample(11);
        let s = compare(t, Technology::MyrinetMx);
        assert!(s.contains("optimizing"));
        assert!(s.contains("legacy"));
        assert!(s.contains("makespan"));
    }

    #[test]
    fn export_round_trips_and_is_deterministic() {
        let t = sample(7);
        let (a, metrics) = export(t.clone(), false, Technology::MyrinetMx);
        assert_eq!(
            madeleine::chrome_event_count(&a.json).unwrap(),
            a.events,
            "export -> parse -> event count must round-trip"
        );
        // Repeat runs of the same seeded workload are byte-identical.
        let (b, _) = export(t, false, Technology::MyrinetMx);
        assert_eq!(a.json, b.json);
        // The metrics registry parses and names both engine sections.
        let doc = Json::parse(&metrics).unwrap();
        assert_eq!(
            doc.get("artifact").and_then(|v| v.as_str()),
            Some("madtrace-metrics")
        );
        // info_export summarizes the export.
        let s = info_export(&a.json).expect("export is sniffable");
        assert!(s.contains(&format!("{} events", a.events)), "{s}");
        assert!(s.contains("sim trace:"), "{s}");
        assert!(s.contains("wire faults: 0 dropped"), "{s}");
        assert!(s.contains("engine trace:"), "{s}");
        // Plain workload traces are not mistaken for exports.
        assert!(info_export("# madeleine-trace v1\n").is_none());
    }

    #[test]
    fn info_export_summarizes_topology_metadata() {
        // A switched rail stamps its topology into the export; the info
        // summary surfaces it. Flat rails (every other test here) don't.
        let profile = nicdrv::calib::params(Technology::MyrinetMx).link_profile();
        let spec = ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx],
            engine: EngineKind::optimizing(),
            trace: Some(1 << 12),
            engine_trace: Some(1 << 12),
        };
        let mut c = Cluster::build_with_topologies(
            &spec,
            vec![Some(simnet::Topology::dumbbell(1, 1, profile, profile))],
            vec![],
        );
        let dst = c.nodes[1];
        let h = c.handles[0].clone();
        let flow = h.open_flow(dst, madeleine::TrafficClass::DEFAULT);
        let src = c.nodes[0];
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                madeleine::MessageBuilder::new()
                    .pack_express(&[1u8; 64])
                    .build_parts(),
            )
        });
        c.drain();
        let s = info_export(&c.export_chrome_trace().json).expect("sniffable");
        assert!(
            s.contains("topology: dumbbell — 2 hosts, 2 switches, 6 links"),
            "{s}"
        );
        assert!(s.contains("oversubscription 1.00:1"), "{s}");
    }

    #[test]
    fn explain_shows_the_decision_contest() {
        let s = explain(sample(7), Technology::MyrinetMx, None);
        assert!(s.contains("activation"), "{s}");
        assert!(s.contains("proposed"), "{s}");
        assert!(s.contains("winner:"), "{s}");
        // Unknown activations are reported, not fabricated.
        let s = explain(sample(7), Technology::MyrinetMx, Some(u64::MAX));
        assert!(s.contains("not found"), "{s}");
    }

    #[test]
    fn stats_renders_percentiles_timeline_and_csv() {
        let (report, csv) = stats(sample(7), Technology::MyrinetMx, 5);
        assert!(report.contains("delivered 200/200"), "{report}");
        assert!(report.contains("p99"), "{report}");
        assert!(report.contains("all"), "{report}");
        assert!(report.contains("queue delay"), "{report}");
        assert!(report.contains("backlog bytes"), "{report}");
        assert!(report.contains("rail0 util"), "{report}");
        assert!(report.contains("sampler timeline:"), "{report}");
        assert!(csv.starts_with("t_us,"), "{csv}");
        assert!(csv.lines().count() > 2, "CSV has data rows");
        // Deterministic end to end.
        let (r2, c2) = stats(sample(7), Technology::MyrinetMx, 5);
        assert_eq!(report, r2);
        assert_eq!(csv, c2);
    }

    #[test]
    fn stats_survives_the_zero_flow_run() {
        // An empty trace delivers nothing: every histogram is empty and
        // the sampler may record no ticks. The report must say so instead
        // of rendering a degenerate headers-only table.
        let (report, csv) = stats(Trace::default(), Technology::MyrinetMx, 5);
        assert!(report.contains("delivered 0/0"), "{report}");
        assert!(
            report.contains("no deliveries recorded"),
            "empty run explains itself: {report}"
        );
        assert!(!report.contains("p99"), "no empty table header: {report}");
        // Deterministic even when empty.
        let (r2, c2) = stats(Trace::default(), Technology::MyrinetMx, 5);
        assert_eq!(report, r2);
        assert_eq!(csv, c2);
    }

    #[test]
    fn profile_replays_and_attributes() {
        let text = sample(7).to_text();
        let out = profile_input(&text, Technology::MyrinetMx, 8).expect("profiles");
        assert!(out.report.contains("delivered messages"), "{}", out.report);
        assert!(out.report.contains("critical path:"), "{}", out.report);
        assert!(!out.report.contains("WARNING"), "{}", out.report);
        assert!(out.csv.starts_with("src,flow,seq,class"), "{}", out.csv);
        assert_eq!(out.csv.lines().count(), 201, "200 messages + header");
        assert!(out.folded.contains(";wire "), "{}", out.folded);
        let doc = Json::parse(&out.json).expect("json parses");
        assert_eq!(
            doc.get("artifact").and_then(|v| v.as_str()),
            Some("madprof-profile")
        );
        assert_eq!(
            doc.get("messages").and_then(|v| v.as_u64()),
            Some(200),
            "{}",
            out.json
        );
        assert_eq!(
            doc.get("partition_violations").and_then(|v| v.as_u64()),
            Some(0)
        );
        // Deterministic end to end.
        let again = profile_input(&text, Technology::MyrinetMx, 8).expect("profiles");
        assert_eq!(out.csv, again.csv);
        assert_eq!(out.folded, again.folded);
        assert_eq!(out.report, again.report);
    }

    #[test]
    fn profile_reads_chrome_exports_identically() {
        // Profiling the exported Chrome artifact must agree with
        // profiling the live rings of the same replay.
        let t = sample(7);
        let (export, _) = export(t.clone(), false, Technology::MyrinetMx);
        let from_chrome =
            profile_input(&export.json, Technology::MyrinetMx, 8).expect("chrome profiles");
        let from_replay =
            profile_input(&t.to_text(), Technology::MyrinetMx, 8).expect("replay profiles");
        assert_eq!(from_chrome.csv, from_replay.csv);
        assert_eq!(from_chrome.folded, from_replay.folded);
    }

    #[test]
    fn profile_rejects_garbage() {
        assert!(profile_input("not a trace", Technology::MyrinetMx, 5).is_err());
    }

    #[test]
    fn diff_of_identical_inputs_is_zero_and_deterministic() {
        let text = sample(7).to_text();
        let out = diff_inputs(&text, &text, Technology::MyrinetMx, 5).expect("diffs");
        assert!(!out.truncated);
        let doc = Json::parse(&out.json).expect("diff json parses");
        assert_eq!(
            doc.get("artifact").and_then(|v| v.as_str()),
            Some("maddiff-diff")
        );
        assert_eq!(doc.get("is_zero").map(|v| v.render()), Some("true".into()));
        assert_eq!(doc.get("aligned").and_then(|v| v.as_u64()), Some(200));
        assert!(
            out.report.contains("decision divergence: none"),
            "{}",
            out.report
        );
        // Every folded line carries equal a/b columns.
        for line in out.folded.lines() {
            let cols: Vec<&str> = line.rsplitn(3, ' ').collect();
            assert_eq!(cols[0], cols[1], "{line}");
        }
        let again = diff_inputs(&text, &text, Technology::MyrinetMx, 5).expect("diffs");
        assert_eq!(out.report, again.report);
        assert_eq!(out.json, again.json);
        assert_eq!(out.folded, again.folded);
    }

    #[test]
    fn diff_mixes_snapshot_chrome_and_trace_inputs() {
        // A workload trace, its Chrome export, and its maddiff snapshot
        // all describe the same run; any pairing must diff to zero.
        let t = sample(7);
        let text = t.to_text();
        let (export, _) = export(t.clone(), false, Technology::MyrinetMx);
        let snap = traced_replay(t, false, Technology::MyrinetMx)
            .run_snapshot("baseline")
            .to_json()
            .render();
        for (a, b) in [(&text, &export.json), (&snap, &text), (&snap, &export.json)] {
            let out = diff_inputs(a, b, Technology::MyrinetMx, 3).expect("diffs");
            let doc = Json::parse(&out.json).unwrap();
            assert_eq!(
                doc.get("is_zero").map(|v| v.render()),
                Some("true".into()),
                "{}",
                out.report
            );
        }
    }

    #[test]
    fn diff_of_different_seeds_reports_divergence() {
        let a = sample(7).to_text();
        let b = sample(8).to_text();
        let out = diff_inputs(&a, &b, Technology::MyrinetMx, 5).expect("diffs");
        let doc = Json::parse(&out.json).unwrap();
        assert_eq!(doc.get("is_zero").map(|v| v.render()), Some("false".into()));
        // Different workloads submit different messages: they land in
        // unmatched, and the aligned partition invariant still holds.
        assert_eq!(
            doc.get("partition_violations").and_then(|v| v.as_u64()),
            Some(0)
        );
        assert!(out.report.contains("top movers") || out.report.contains("unmatched"));
    }

    #[test]
    fn diff_rejects_garbage() {
        let ok = sample(7).to_text();
        assert!(diff_inputs("nope", &ok, Technology::MyrinetMx, 5).is_err());
        assert!(diff_inputs(&ok, "nope", Technology::MyrinetMx, 5).is_err());
    }

    #[test]
    fn single_sample_histograms_report_exact_percentiles() {
        // One delivered message: p50/p90/p99 must equal the exact max,
        // not a log2-bucket upper bound almost 2x larger.
        let mut t = sample(7);
        t.msgs.truncate(1);
        let (report, _) = stats(t, Technology::MyrinetMx, 5);
        assert!(report.contains("delivered 1/1"), "{report}");
        let all = report
            .lines()
            .find(|l| l.split_whitespace().next() == Some("all"))
            .expect("an `all` percentile row");
        let cells: Vec<&str> = all.split_whitespace().collect();
        // cells: [all, count, p50, p90, p99, max]
        assert_eq!(cells[1], "1");
        assert_eq!(cells[2], cells[5], "p50 == exact max: {all}");
        assert_eq!(cells[4], cells[5], "p99 == exact max: {all}");
    }

    #[test]
    fn stats_keeps_zero_delivery_classes_visible() {
        // A trace that opens a BULK flow but never delivers on it (no
        // submissions survive for that class): the percentile table must
        // carry an explicit zero row instead of silently dropping the
        // class.
        let mut t = sample(7);
        t.flows.push((NodeId(1), madeleine::TrafficClass::BULK));
        let (report, _) = stats(t, Technology::MyrinetMx, 5);
        let bulk = report
            .lines()
            .find(|l| l.contains("class bulk"))
            .expect("an explicit zero-delivery row for the bulk class");
        let cells: Vec<&str> = bulk.split_whitespace().collect();
        // cells: [class, bulk, count, p50, p90, p99, max]
        assert_eq!(cells[2], "0", "zero-delivery count: {bulk}");
        assert_eq!(cells[3], "-", "percentiles dashed out: {bulk}");
        // Classes the trace never mentions stay out of the table.
        assert!(
            !report.contains("class put/get"),
            "unoffered class leaked into the table"
        );
    }

    #[test]
    fn spark_line_scales_to_peak() {
        let s = spark_line("x", &[0, 0, 5, 10]);
        assert!(s.contains("peak 10"), "{s}");
        assert!(s.contains('@'), "peak column saturates: {s}");
        assert!(s.contains(' '), "zero column is blank: {s}");
        let flat = spark_line("y", &[0, 0]);
        assert!(flat.contains("peak 0"), "{flat}");
    }

    #[test]
    fn tech_names_parse() {
        assert_eq!(parse_tech("mx"), Some(Technology::MyrinetMx));
        assert_eq!(parse_tech("ELAN"), Some(Technology::QuadricsElan));
        assert_eq!(parse_tech("nonsense"), None);
    }
}
