//! Implementation of the `trace-tool` binary: inspect, generate and replay
//! workload traces from the command line.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::trace::{Recorder, ReplayApp, Trace};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::fmt_f;

/// Parse a technology name.
pub fn parse_tech(s: &str) -> Option<Technology> {
    Some(match s.to_ascii_lowercase().as_str() {
        "mx" | "myrinet" => Technology::MyrinetMx,
        "elan" | "quadrics" => Technology::QuadricsElan,
        "ib" | "infiniband" => Technology::InfiniBand,
        "tcp" | "gige" => Technology::TcpEthernet,
        "shm" => Technology::SharedMem,
        _ => return None,
    })
}

/// Render a human summary of a trace.
pub fn info(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flows: {}   messages: {}   payload: {} bytes\n",
        trace.flows.len(),
        trace.len(),
        trace.total_bytes()
    ));
    if let (Some(first), Some(last)) = (trace.msgs.first(), trace.msgs.last()) {
        out.push_str(&format!(
            "span: {} us of virtual time\n",
            fmt_f((last.at_ns - first.at_ns) as f64 / 1e3)
        ));
    }
    for (i, (dst, class)) in trace.flows.iter().enumerate() {
        let msgs = trace.msgs.iter().filter(|m| m.flow_idx == i).count();
        let bytes: u64 = trace
            .msgs
            .iter()
            .filter(|m| m.flow_idx == i)
            .flat_map(|m| m.frags.iter())
            .map(|&(n, _)| n as u64)
            .sum();
        out.push_str(&format!(
            "  flow {i}: -> node {} class {} ({} msgs, {} bytes)\n",
            dst.0,
            class.label(),
            msgs,
            bytes
        ));
    }
    out
}

/// Replay a trace on a fresh two-node cluster; returns a result summary.
pub fn replay(trace: Trace, legacy: bool, tech: Technology) -> String {
    let engine = if legacy {
        EngineKind::legacy()
    } else {
        EngineKind::optimizing()
    };
    let expected = trace.len() as u64;
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine,
        trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    let end = c.drain();
    let tx = c.handle(0).metrics();
    let rx = c.handle(1).metrics();
    format!(
        "engine: {}   rail: {}\n\
         delivered {}/{} messages in {} (virtual)\n\
         {} wire packets, {} chunks/pkt, mean latency {} us\n",
        if legacy { "legacy" } else { "optimizing" },
        tech.label(),
        rx.delivered_msgs,
        expected,
        end,
        tx.packets_sent,
        fmt_f(tx.aggregation_ratio()),
        fmt_f(rx.latency.summary().mean()),
    )
}

/// Run the same trace on both engines and render a comparison table.
pub fn compare(trace: Trace, tech: Technology) -> String {
    let run = |legacy: bool| {
        let engine = if legacy {
            EngineKind::legacy()
        } else {
            EngineKind::optimizing()
        };
        let spec = ClusterSpec {
            nodes: 2,
            rails: vec![tech],
            engine,
            trace: None,
        };
        let mut c = Cluster::build(
            &spec,
            vec![Some(Box::new(ReplayApp::new(trace.clone()))), None],
        );
        let end = c.drain();
        let tx = c.handle(0).metrics();
        let rx = c.handle(1).metrics();
        (end, tx, rx)
    };
    let (opt_end, opt_tx, opt_rx) = run(false);
    let (leg_end, leg_tx, leg_rx) = run(true);
    let mut t = crate::Table::new(
        format!("same trace on both engines ({} rail)", tech.label()),
        &["metric", "optimizing", "legacy"],
    );
    t.row(vec![
        "makespan (us)".into(),
        fmt_f(opt_end.as_micros_f64()),
        fmt_f(leg_end.as_micros_f64()),
    ]);
    t.row(vec![
        "wire packets".into(),
        opt_tx.packets_sent.to_string(),
        leg_tx.packets_sent.to_string(),
    ]);
    t.row(vec![
        "chunks/packet".into(),
        fmt_f(opt_tx.aggregation_ratio()),
        fmt_f(leg_tx.aggregation_ratio()),
    ]);
    t.row(vec![
        "mean latency (us)".into(),
        fmt_f(opt_rx.latency.summary().mean()),
        fmt_f(leg_rx.latency.summary().mean()),
    ]);
    t.row(vec![
        "p99-ish latency (us)".into(),
        fmt_f(opt_rx.latency.quantile(0.99).as_micros_f64()),
        fmt_f(leg_rx.latency.quantile(0.99).as_micros_f64()),
    ]);
    t.render()
}

/// Generate a sample multi-flow trace (for demos and tests).
pub fn sample(seed: u64) -> Trace {
    let specs: Vec<FlowSpec> = (0..4)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: madeleine::TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(6)),
            sizes: SizeDist::Uniform(16, 1024),
            express_header: 8,
            stop_after: Some(50),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _) = TrafficApp::new("sample", specs, seed, 0);
    let (recorder, handle) = Recorder::new(Box::new(app));
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(recorder)), None]);
    c.drain();
    let t = handle.borrow().clone();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_traces_are_nonempty_and_parse() {
        let t = sample(7);
        assert_eq!(t.len(), 200);
        let text = t.to_text();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn info_mentions_every_flow() {
        let t = sample(7);
        let s = info(&t);
        assert!(s.contains("messages: 200"));
        assert!(s.contains("flow 3:"));
    }

    #[test]
    fn replay_summary_reports_full_delivery() {
        let t = sample(9);
        let s = replay(t.clone(), false, Technology::MyrinetMx);
        assert!(s.contains("delivered 200/200"), "{s}");
        let s = replay(t, true, Technology::QuadricsElan);
        assert!(s.contains("legacy"));
        assert!(s.contains("delivered 200/200"), "{s}");
    }

    #[test]
    fn compare_renders_both_engines() {
        let t = sample(11);
        let s = compare(t, Technology::MyrinetMx);
        assert!(s.contains("optimizing"));
        assert!(s.contains("legacy"));
        assert!(s.contains("makespan"));
    }

    #[test]
    fn tech_names_parse() {
        assert_eq!(parse_tech("mx"), Some(Technology::MyrinetMx));
        assert_eq!(parse_tech("ELAN"), Some(Technology::QuadricsElan));
        assert_eq!(parse_tech("nonsense"), None);
    }
}
