//! Plain-text aligned tables, diffable and recorded in `EXPERIMENTS.md`.

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Optional caption printed above.
    pub caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, col) for tests.
    pub fn cell(&self, r: usize, c: usize) -> &str {
        &self.rows[r][c]
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.caption.is_empty() {
            out.push_str(&format!("   -- {}\n", self.caption));
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("   ");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            s.trim_end().to_string() + "\n"
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        out.push_str(&format!("   {}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("cap", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("cap"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + caption
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), "20000");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
