//! **E4 — Packet lookahead window sizing** (§4 future work: "we intend to
//! experiment with different packet lookahead window sizes").
//!
//! The lookahead window bounds how many backlog chunks the optimizer sees
//! per activation. Tiny windows cannot find merges; past a point the
//! window exceeds the typical backlog and returns diminish.

use madeleine::harness::EngineKind;
use madeleine::{EngineConfig, PolicyKind};
use madware::scenario::eager_flows;
use simnet::{SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Outcome of one window setting.
pub struct WindowPoint {
    /// Makespan (µs).
    pub makespan_us: f64,
    /// Aggregation ratio.
    pub agg: f64,
    /// Plans evaluated per activation.
    pub plans_per_act: f64,
}

/// Run one window size under heavy multi-flow load.
pub fn run_point(window: usize) -> WindowPoint {
    let config = EngineConfig::default().with_window(window);
    let engine = EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    };
    let (mut cluster, _tx, _rx) = eager_flows(
        engine,
        Technology::MyrinetMx,
        16,
        64,
        SimDuration::from_micros(1),
        120,
        23,
    );
    let end = cluster.drain();
    let m = cluster.handle(0).metrics();
    WindowPoint {
        makespan_us: end.as_micros_f64(),
        agg: m.aggregation_ratio(),
        plans_per_act: m.plans_per_activation(),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut t = Table::new(
        "16 flows x 120 msgs of 64B, heavy load, MX rail",
        &["window", "makespan(us)", "chunks/pkt", "plans/act"],
    );
    let base = run_point(1);
    let mut best = base.makespan_us;
    for &w in &[1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let p = run_point(w);
        best = best.min(p.makespan_us);
        t.row(vec![
            w.to_string(),
            fmt_f(p.makespan_us),
            fmt_f(p.agg),
            fmt_f(p.plans_per_act),
        ]);
    }
    Report {
        id: "E4",
        title: "lookahead window size sweep",
        claim:
            "experiment with different packet lookahead window sizes (§4, announced future work)",
        tables: vec![t],
        notes: vec![format!(
            "window=1 degenerates to per-packet sending ({} us); gains saturate \
             once the window covers the typical backlog (best {} us)",
            fmt_f(base.makespan_us),
            fmt_f(best)
        )],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_disables_aggregation() {
        let p = run_point(1);
        assert!((p.agg - 1.0).abs() < 0.05, "agg {}", p.agg);
    }

    #[test]
    fn wider_windows_help_then_saturate() {
        let w1 = run_point(1);
        let w32 = run_point(32);
        let w256 = run_point(256);
        assert!(
            w32.makespan_us < w1.makespan_us * 0.8,
            "window should speed things up"
        );
        // Saturation: 256 is within a few percent of 32.
        let rel = (w256.makespan_us - w32.makespan_us).abs() / w32.makespan_us;
        assert!(rel < 0.25, "saturation expected, rel diff {rel}");
    }
}
