//! **E13 — madflow flow-scale stress**: the engine sustains 100k-flow
//! workloads because candidate collection walks the O(active) flow index
//! instead of the full flow table; admission control converts overload
//! into typed backpressure (`WouldBlock`), deterministic shedding or
//! rejection instead of unbounded queue growth; and DRR fairness keeps
//! mice latency bounded next to an elephant.
//!
//! Methodology: three cells.
//!
//! * **Scale** — `total` flows (swept to 100k) across all four traffic
//!   classes send open-loop Poisson arrivals with bounded-Pareto
//!   ("mice and elephants") sizes over one MX rail; we record makespan,
//!   peak collect-layer backlog (the memory ceiling), per-class tail
//!   latency and express violations. Delivery recording is off, so the
//!   only unbounded state would be engine-internal — there is none.
//! * **Fairness** — one elephant flow (BULK, continuous 8KiB) plus 64
//!   mice (DEFAULT, sparse 256B) under pack-order vs weighted DRR
//!   candidate ordering.
//! * **Overload** — an admission budget of 64KiB with offered load far
//!   above the rail's drain rate, once per [`AdmissionPolicy`]; the
//!   budget-aware [`OverloadApp`] defers `WouldBlock`ed messages and
//!   retries them from [`AppDriver::on_unblocked`].
//!
//! The wall-clock cost of candidate collection vs *total* flow count is
//! measured separately by the `activation_scaling` Criterion bench.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use madeleine::api::{AppDriver, CommApi, NullApp};
use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::{FlowId, TrafficClass};
use madeleine::message::{Fragment, MessageBuilder, PackMode};
use madeleine::trace::EngineEvent;
use madeleine::{AdmissionPolicy, EngineConfig, PolicyKind, SendOutcome};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Seed shared by the scale cell, CI smoke and the bench gate.
pub const SEED: u64 = 1306;

/// Traffic classes cycled across the scale cell's flows.
const CLASS_CYCLE: [TrafficClass; 4] = [
    TrafficClass::DEFAULT,
    TrafficClass::BULK,
    TrafficClass::PUT_GET,
    TrafficClass::CONTROL,
];

/// Flow counts swept by the full scale cell.
pub const SCALE_SWEEP: [usize; 3] = [1_000, 10_000, 100_000];

/// Flow count used by CI smoke and the bench gate.
pub const SMOKE_FLOWS: usize = 2_000;

fn fairness_mode_drr() -> madeleine::FairnessMode {
    madeleine::FairnessMode::Drr
}

/// One measured scale-cell run.
pub struct ScalePoint {
    /// Total flows opened.
    pub flows: usize,
    /// Messages the workload submitted.
    pub expected: u64,
    /// Messages the sink received.
    pub delivered: u64,
    /// Time of the last delivery (µs).
    pub makespan_us: f64,
    /// Peak collect-layer backlog observed (bytes) — the memory ceiling.
    pub peak_backlog: u64,
    /// Overall receive-side median latency (µs).
    pub p50_us: f64,
    /// Overall receive-side tail latency (µs).
    pub p99_us: f64,
    /// Per-class p99 latency (µs), indexed by class slot.
    pub class_p99_us: [f64; 4],
    /// Express-ordering violations observed by the receiver (must be 0).
    pub violations: u64,
    /// Sender + receiver engine metrics as deterministic JSON (byte
    /// comparison across repeats and sampler on/off).
    pub engine_json: String,
    /// Full cluster metrics registry in Prometheus text format.
    pub registry: String,
}

/// Run the scale cell: `total_flows` flows, `msgs_per_flow` messages
/// each, classes cycled, bounded-Pareto sizes, open-loop arrivals.
pub fn run_scale(total_flows: usize, msgs_per_flow: u64, seed: u64, sampler: bool) -> ScalePoint {
    let specs: Vec<FlowSpec> = (0..total_flows)
        .map(|i| FlowSpec {
            dst: NodeId(1),
            class: CLASS_CYCLE[i % CLASS_CYCLE.len()],
            arrival: Arrival::Poisson(SimDuration::from_micros(400)),
            sizes: SizeDist::Pareto {
                min: 64,
                max: 16 << 10,
                alpha: 1.2,
            },
            express_header: 8,
            stop_after: Some(msgs_per_flow),
            // Stagger first arrivals so 100k timers do not fire at t=0.
            start_after: SimDuration::from_nanos((i as u64 % 4096) * 500),
        })
        .collect();
    let (app, _tx) = TrafficApp::new("flowscale", specs, seed, 0);
    let (sink, rx) = TrafficApp::new("sink", vec![], seed, 1);
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: EngineConfig {
                // Bounded memory: no delivery recording on stress runs.
                record_deliveries: false,
                ..EngineConfig::default()
            },
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    if sampler {
        cluster.enable_sampler(SimDuration::from_micros(50));
    }
    let expected = total_flows as u64 * msgs_per_flow;
    let mut peak = 0u64;
    for _ in 0..200_000 {
        cluster.run_for(SimDuration::from_micros(200));
        peak = peak.max(cluster.handle(0).backlog_bytes());
        if rx.borrow().received >= expected {
            break;
        }
    }
    cluster.drain();
    let makespan_us = rx.borrow().last_recv.as_micros_f64();
    let m = cluster.handle(1).metrics();
    let mut class_p99_us = [0.0f64; 4];
    for (slot, p) in class_p99_us.iter_mut().enumerate() {
        *p = m.latency_by_class[slot].quantile(0.99).as_micros_f64();
    }
    let engine_json = format!(
        "{}\n{}",
        cluster.handle(0).metrics().to_json().render(),
        m.to_json().render()
    );
    ScalePoint {
        flows: total_flows,
        expected,
        delivered: m.delivered_msgs,
        makespan_us,
        peak_backlog: peak,
        p50_us: m.latency.quantile(0.5).as_micros_f64(),
        p99_us: m.latency.quantile(0.99).as_micros_f64(),
        class_p99_us,
        violations: cluster.handle(1).receiver_stats().express_violations,
        engine_json,
        registry: cluster.prometheus_text(),
    }
}

/// One measured fairness-cell run.
pub struct FairnessPoint {
    /// Mice (DEFAULT class) median latency (µs).
    pub mice_p50_us: f64,
    /// Mice (DEFAULT class) tail latency (µs).
    pub mice_p99_us: f64,
    /// Elephant (BULK class) tail latency (µs).
    pub elephant_p99_us: f64,
    /// Messages received.
    pub delivered: u64,
    /// Messages expected.
    pub expected: u64,
}

const ELEPHANT_MSGS: u64 = 400;
const MICE: usize = 64;
const MICE_MSGS: u64 = 25;

/// Run the fairness cell: one continuous BULK elephant (flow 0, which
/// pack order always visits first) against 64 sparse DEFAULT mice,
/// under the given candidate-ordering mode.
pub fn run_fairness(mode: madeleine::FairnessMode) -> FairnessPoint {
    fairness_cell(mode, None).0
}

/// The fairness cell with optional madtrace rings (for madprof).
fn fairness_cell(
    mode: madeleine::FairnessMode,
    trace_cap: Option<usize>,
) -> (FairnessPoint, Cluster) {
    let mut specs = vec![FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(10)),
        sizes: SizeDist::Fixed(8 << 10),
        express_header: 0,
        stop_after: Some(ELEPHANT_MSGS),
        start_after: SimDuration::ZERO,
    }];
    specs.extend((0..MICE).map(|_| FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::DEFAULT,
        arrival: Arrival::Poisson(SimDuration::from_micros(200)),
        sizes: SizeDist::Fixed(256),
        express_header: 8,
        stop_after: Some(MICE_MSGS),
        start_after: SimDuration::ZERO,
    }));
    let (app, _tx) = TrafficApp::new("fairness", specs, SEED, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], SEED, 1);
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: EngineConfig {
                fairness: mode,
                drr_quantum: 2048,
                ..EngineConfig::default()
            },
            policy: PolicyKind::Pooled,
        },
        trace: trace_cap,
        engine_trace: trace_cap,
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    cluster.drain();
    let m = cluster.handle(1).metrics();
    let mice = &m.latency_by_class[TrafficClass::DEFAULT.0 as usize];
    let elephant = &m.latency_by_class[TrafficClass::BULK.0 as usize];
    let point = FairnessPoint {
        mice_p50_us: mice.quantile(0.5).as_micros_f64(),
        mice_p99_us: mice.quantile(0.99).as_micros_f64(),
        elephant_p99_us: elephant.quantile(0.99).as_micros_f64(),
        delivered: m.delivered_msgs,
        expected: ELEPHANT_MSGS + MICE as u64 * MICE_MSGS,
    };
    (point, cluster)
}

/// Fully-traced replica of `run_fairness(mode)`, drained and ready to
/// snapshot — maddiff's E13 cell (diffing pack-order vs DRR shows the
/// queueing/decision-wait swap between the elephant and the mice).
pub fn traced_fairness_cell(mode: madeleine::FairnessMode) -> Cluster {
    fairness_cell(mode, Some(1 << 18)).1
}

/// Fully-traced replica of the overload cell for one admission policy.
/// maddiff's explicit E13 Shed case: diffing `Block` against
/// `ShedOldest` must report the shed messages in `unmatched` (submitted
/// but never delivered), never fold them into the phase deltas.
pub fn traced_overload_cell(policy: AdmissionPolicy) -> Cluster {
    let mut config = EngineConfig::default();
    config.admission.max_backlog_bytes = OVERLOAD_BUDGET;
    config.admission.policy = [policy; 4];
    let (app, _stats) = OverloadApp::new(
        NodeId(1),
        TrafficClass::DEFAULT,
        OVERLOAD_MSG,
        SimDuration::from_micros(1),
        OVERLOAD_TARGET,
    );
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: Some(1 << 18),
        engine_trace: Some(1 << 18),
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(NullApp))]);
    cluster.drain();
    cluster
}

/// madprof artifacts for the DRR fairness cell (the EXPERIMENTS
/// "mice-behind-elephant" flamegraph): the traced replica of
/// `run_fairness(Drr)` profiled post-hoc, showing the elephant's
/// decision-wait absorbing the queueing DRR takes away from the mice.
pub fn profile_artifacts() -> Vec<(String, String)> {
    let (_, cluster) = fairness_cell(madeleine::FairnessMode::Drr, Some(1 << 18));
    let prof = cluster.profile();
    vec![
        ("e13_profile.folded".to_string(), prof.folded_stacks()),
        ("e13_attribution.csv".to_string(), prof.attribution_csv()),
        ("e13_profile.json".to_string(), prof.to_json().render()),
    ]
}

/// Externally inspectable counters of one [`OverloadApp`] run.
#[derive(Clone, Debug, Default)]
pub struct OverloadStats {
    /// Messages the generator tried to submit.
    pub attempts: u64,
    /// `Admitted` outcomes (first-try submissions).
    pub admitted: u64,
    /// `WouldBlock` outcomes (message deferred for retry).
    pub blocked: u64,
    /// `Rejected` outcomes (message dropped by the app).
    pub rejected: u64,
    /// Messages shed by the engine to admit newer ones (from `Shed`
    /// outcomes observed by this sender).
    pub shed_seen: u64,
    /// Deferred messages admitted from `on_unblocked` retries.
    pub retried_ok: u64,
}

/// Budget-aware open-loop generator: submits via [`CommApi::try_send`],
/// defers `WouldBlock`ed messages and retries them when the engine
/// reports the class unblocked. The showcase consumer of madflow
/// admission control.
pub struct OverloadApp {
    dst: NodeId,
    class: TrafficClass,
    msg_size: usize,
    period: SimDuration,
    target: u64,
    flow: Option<FlowId>,
    deferred: VecDeque<Vec<Fragment>>,
    stats: Rc<RefCell<OverloadStats>>,
}

impl OverloadApp {
    /// Build the generator and a handle onto its counters.
    pub fn new(
        dst: NodeId,
        class: TrafficClass,
        msg_size: usize,
        period: SimDuration,
        target: u64,
    ) -> (Self, Rc<RefCell<OverloadStats>>) {
        let stats = Rc::new(RefCell::new(OverloadStats::default()));
        (
            OverloadApp {
                dst,
                class,
                msg_size,
                period,
                target,
                flow: None,
                deferred: VecDeque::new(),
                stats: stats.clone(),
            },
            stats,
        )
    }

    fn build_parts(&self, seq: u64) -> Vec<Fragment> {
        let body = vec![(seq & 0xFF) as u8; self.msg_size];
        MessageBuilder::new()
            .pack(&body, PackMode::Cheaper)
            .build_parts()
    }

    fn record_outcome(&mut self, outcome: SendOutcome, parts: Vec<Fragment>) {
        let mut s = self.stats.borrow_mut();
        match outcome {
            SendOutcome::Admitted(_) => s.admitted += 1,
            SendOutcome::Shed { shed, .. } => {
                s.admitted += 1;
                s.shed_seen += shed.len() as u64;
            }
            SendOutcome::WouldBlock => {
                s.blocked += 1;
                drop(s);
                self.deferred.push_back(parts);
            }
            SendOutcome::Rejected => s.rejected += 1,
        }
    }
}

impl AppDriver for OverloadApp {
    fn on_start(&mut self, api: &mut dyn CommApi) {
        self.flow = Some(api.open_flow(self.dst, self.class));
        api.set_timer(self.period, 0);
    }

    fn on_timer(&mut self, api: &mut dyn CommApi, _tag: u64) {
        let flow = self.flow.expect("flow opened at start");
        let attempts = {
            let mut s = self.stats.borrow_mut();
            s.attempts += 1;
            s.attempts
        };
        let parts = self.build_parts(attempts);
        if self.deferred.is_empty() {
            let outcome = api.try_send(flow, parts.clone());
            self.record_outcome(outcome, parts);
        } else {
            // Already backpressured: keep FIFO order, wait for unblock.
            self.deferred.push_back(parts);
        }
        if attempts < self.target {
            api.set_timer(self.period, 0);
        }
    }

    fn on_unblocked(&mut self, api: &mut dyn CommApi, class: TrafficClass) {
        if class != self.class {
            return;
        }
        let flow = self.flow.expect("flow opened at start");
        while let Some(parts) = self.deferred.pop_front() {
            match api.try_send(flow, parts.clone()) {
                SendOutcome::Admitted(_) | SendOutcome::Shed { .. } => {
                    self.stats.borrow_mut().retried_ok += 1;
                }
                SendOutcome::WouldBlock => {
                    self.deferred.push_front(parts);
                    break;
                }
                SendOutcome::Rejected => {
                    self.stats.borrow_mut().rejected += 1;
                }
            }
        }
    }
}

/// One measured overload-cell run.
pub struct OverloadPoint {
    /// Generator counters.
    pub stats: OverloadStats,
    /// Messages the sink engine delivered.
    pub delivered: u64,
    /// Engine counters: refused submissions.
    pub blocked_sends: u64,
    /// Engine counters: shed messages.
    pub shed_msgs: u64,
    /// Engine counters: rejected submissions.
    pub rejected_sends: u64,
    /// Engine counters: pressure episodes that ended.
    pub unblocked_events: u64,
    /// Admission event sequence (`Admitted`/`Shed`/`Unblocked` trace
    /// records) as deterministic text, for byte comparison.
    pub events: String,
}

const OVERLOAD_TARGET: u64 = 300;
const OVERLOAD_MSG: usize = 4 << 10;
const OVERLOAD_BUDGET: u64 = 64 << 10;

/// Run the overload cell: offered load far above the rail drain rate
/// against a 64KiB engine backlog budget under the given policy.
pub fn run_overload(policy: AdmissionPolicy, sampler: bool) -> OverloadPoint {
    let mut config = EngineConfig::default();
    config.admission.max_backlog_bytes = OVERLOAD_BUDGET;
    config.admission.policy = [policy; 4];
    let (app, stats) = OverloadApp::new(
        NodeId(1),
        TrafficClass::DEFAULT,
        OVERLOAD_MSG,
        SimDuration::from_micros(1),
        OVERLOAD_TARGET,
    );
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: Some(1 << 14),
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(NullApp))]);
    if sampler {
        cluster.enable_sampler(SimDuration::from_micros(20));
    }
    cluster.drain();
    let m = cluster.handle(0).metrics();
    let mut events = String::new();
    if let Some(h) = cluster.handle(0).opt() {
        for rec in h.trace_snapshot().iter() {
            if matches!(
                rec.event,
                EngineEvent::Admitted { .. }
                    | EngineEvent::Shed { .. }
                    | EngineEvent::Unblocked { .. }
            ) {
                events.push_str(&format!(
                    "{} {} {}\n",
                    rec.at.as_nanos(),
                    rec.event.name(),
                    rec.event.args().render()
                ));
            }
        }
    }
    let stats = stats.borrow().clone();
    OverloadPoint {
        stats,
        delivered: cluster.handle(1).metrics().delivered_msgs,
        blocked_sends: m.blocked_sends,
        shed_msgs: m.shed_msgs,
        rejected_sends: m.rejected_sends,
        unblocked_events: m.unblocked_events,
        events,
    }
}

fn policy_label(p: AdmissionPolicy) -> &'static str {
    match p {
        AdmissionPolicy::Block => "block",
        AdmissionPolicy::ShedOldest => "shed-oldest",
        AdmissionPolicy::Reject => "reject",
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut notes = Vec::new();

    let mut ts = Table::new(
        "open-loop Poisson arrivals, bounded-Pareto sizes (64B..16KiB, a=1.2), 4 classes, 1 MX rail",
        &[
            "flows",
            "delivered",
            "makespan(ms)",
            "peak backlog(KiB)",
            "p50(us)",
            "p99(us)",
            "ctrl p99(us)",
            "express viol",
        ],
    );
    for &flows in &SCALE_SWEEP {
        let p = run_scale(flows, 2, SEED, false);
        ts.row(vec![
            p.flows.to_string(),
            format!("{}/{}", p.delivered, p.expected),
            fmt_f(p.makespan_us / 1000.0),
            fmt_f(p.peak_backlog as f64 / 1024.0),
            fmt_f(p.p50_us),
            fmt_f(p.p99_us),
            fmt_f(p.class_p99_us[TrafficClass::CONTROL.0 as usize]),
            p.violations.to_string(),
        ]);
    }
    notes.push(
        "candidate collection walks the O(active) flow index, so idle \
         flows are free: the `activation_scaling` Criterion bench holds \
         active flows at 10 while growing the table from 10 to 100k and \
         the per-activation cost stays flat"
            .into(),
    );

    let mut tf = Table::new(
        "1 BULK elephant (8KiB every 10us, flow 0) vs 64 DEFAULT mice (256B, sparse)",
        &[
            "ordering",
            "mice p50(us)",
            "mice p99(us)",
            "elephant p99(us)",
            "delivered",
        ],
    );
    let pack = run_fairness(madeleine::FairnessMode::PackOrder);
    let drr = run_fairness(fairness_mode_drr());
    for (label, p) in [("pack-order", &pack), ("drr", &drr)] {
        tf.row(vec![
            label.into(),
            fmt_f(p.mice_p50_us),
            fmt_f(p.mice_p99_us),
            fmt_f(p.elephant_p99_us),
            format!("{}/{}", p.delivered, p.expected),
        ]);
    }
    notes.push(format!(
        "DRR splits the lookahead window across class slots by weight and \
         rotates a deficit cursor inside each class: mice p99 {} -> {} us \
         next to the elephant",
        fmt_f(pack.mice_p99_us),
        fmt_f(drr.mice_p99_us),
    ));

    let mut to = Table::new(
        "4KiB msgs every 1us (offered >> drain) vs a 64KiB backlog budget",
        &[
            "policy",
            "attempts",
            "admitted",
            "blocked",
            "retried ok",
            "shed",
            "rejected",
            "unblocked",
            "delivered",
        ],
    );
    for policy in [
        AdmissionPolicy::Block,
        AdmissionPolicy::ShedOldest,
        AdmissionPolicy::Reject,
    ] {
        let p = run_overload(policy, false);
        to.row(vec![
            policy_label(policy).into(),
            p.stats.attempts.to_string(),
            p.stats.admitted.to_string(),
            p.stats.blocked.to_string(),
            p.stats.retried_ok.to_string(),
            p.shed_msgs.to_string(),
            p.rejected_sends.to_string(),
            p.unblocked_events.to_string(),
            p.delivered.to_string(),
        ]);
    }
    notes.push(
        "block converts overload into lossless backpressure (every \
         deferred message is retried from on_unblocked and delivered); \
         shed-oldest stays lossy-but-fresh by evicting the oldest \
         uncommitted backlog; reject refuses at the door — all three are \
         deterministic and visible as Admitted/Shed/Unblocked trace events"
            .into(),
    );

    Report {
        id: "E13",
        title: "madflow sustains 100k flows with O(active) scheduling, admission control and weighted fairness",
        claim: "dynamic optimization survives flow-count scale: the backlog index keeps activations O(active), budgets bound memory, and DRR bounds mice latency under an elephant",
        tables: vec![ts, tf, to],
        notes,
        artifacts: profile_artifacts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke (satellite): 2k flows complete with zero express
    /// violations and a bounded backlog.
    #[test]
    fn smoke_flowscale_completes() {
        let p = run_scale(SMOKE_FLOWS, 2, SEED, false);
        assert_eq!(p.delivered, p.expected, "lost messages at 2k flows");
        assert_eq!(p.violations, 0, "express ordering violated");
        assert!(p.peak_backlog > 0, "stress run never built a backlog");
    }

    #[test]
    fn fairness_modes_complete_and_drr_protects_mice() {
        let pack = run_fairness(madeleine::FairnessMode::PackOrder);
        let drr = run_fairness(fairness_mode_drr());
        assert_eq!(pack.delivered, pack.expected);
        assert_eq!(drr.delivered, drr.expected);
        assert!(
            drr.mice_p99_us <= pack.mice_p99_us,
            "DRR mice p99 {} worse than pack-order {}",
            drr.mice_p99_us,
            pack.mice_p99_us
        );
    }

    #[test]
    fn overload_block_backpressures_then_recovers_everything() {
        let p = run_overload(AdmissionPolicy::Block, false);
        assert!(p.blocked_sends > 0, "budget never hit");
        assert!(p.unblocked_events > 0, "pressure never released");
        assert!(p.stats.retried_ok > 0, "no deferred retries");
        assert_eq!(
            p.delivered, p.stats.attempts,
            "block must be lossless: every deferred message retried"
        );
        assert_eq!(p.shed_msgs, 0);
        assert_eq!(p.rejected_sends, 0);
    }

    #[test]
    fn overload_shed_oldest_sheds_and_stays_fresh() {
        let p = run_overload(AdmissionPolicy::ShedOldest, false);
        assert!(p.shed_msgs > 0, "nothing shed at 2x overload");
        assert_eq!(p.stats.blocked, 0, "shed-oldest never blocks");
        assert_eq!(
            p.delivered,
            p.stats.attempts - p.shed_msgs,
            "delivered must equal admitted minus shed"
        );
    }

    #[test]
    fn overload_reject_refuses_at_the_door() {
        let p = run_overload(AdmissionPolicy::Reject, false);
        assert!(p.rejected_sends > 0, "nothing rejected at 2x overload");
        assert_eq!(p.stats.blocked, 0);
        assert_eq!(p.shed_msgs, 0);
        assert_eq!(p.delivered, p.stats.attempts - p.rejected_sends);
    }

    /// Same seed => byte-identical metrics and admission event sequence,
    /// with the sampler on or off (acceptance criterion).
    #[test]
    fn deterministic_across_repeats_and_sampler() {
        let a = run_scale(1_500, 2, SEED, false);
        let b = run_scale(1_500, 2, SEED, false);
        assert_eq!(a.engine_json, b.engine_json, "metrics drift across repeats");
        assert_eq!(a.registry, b.registry, "registry drift across repeats");
        let s = run_scale(1_500, 2, SEED, true);
        assert_eq!(
            a.engine_json, s.engine_json,
            "sampler must observe, not perturb"
        );

        let x = run_overload(AdmissionPolicy::ShedOldest, false);
        let y = run_overload(AdmissionPolicy::ShedOldest, true);
        assert!(!x.events.is_empty(), "no admission events traced");
        assert_eq!(x.events, y.events, "event sequence differs under sampler");
        let z = run_overload(AdmissionPolicy::ShedOldest, false);
        assert_eq!(x.events, z.events, "event sequence drifts across repeats");
    }
}
