//! **E7 — Dynamic load balancing over multiple NICs** (§2: the scheduler
//! "may also perform dynamic load balancing on multiple resources,
//! multiple NICs, or even NICs from multiple technologies").
//!
//! A *single* bulk flow streams large messages. The legacy one-to-one
//! mapping chains the flow to one NIC forever; the pooled optimizer lets
//! every idle rail pull the next chunk, aggregating bandwidth — including
//! across a heterogeneous Myrinet+Quadrics node, where each rail
//! contributes in proportion to its speed with no explicit ratio
//! configured anywhere.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, PolicyKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Result of one rail configuration.
pub struct RailPoint {
    /// Aggregate goodput (MB/s).
    pub mbps: f64,
    /// Payload bytes that left via each sender NIC.
    pub per_nic_bytes: Vec<u64>,
    /// Median delivery latency (µs, madscope histogram).
    pub p50_us: f64,
    /// Tail delivery latency (µs, madscope histogram).
    pub p99_us: f64,
    /// All payloads verified.
    pub intact: bool,
}

/// Stream `msgs` x 24 KiB messages over the given rails with one flow.
pub fn run_point(engine: EngineKind, rails: Vec<Technology>, msgs: u64) -> RailPoint {
    let spec = ClusterSpec {
        nodes: 2,
        rails,
        engine,
        trace: None,
        engine_trace: None,
    };
    let flow = FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(5)),
        sizes: SizeDist::Fixed(24 << 10),
        express_header: 0, // pure bulk: free to split across rails
        stop_after: Some(msgs),
        start_after: SimDuration::ZERO,
    };
    let (app, _tx) = TrafficApp::new("bulk", vec![flow], 29, 0);
    let (sink, rx) = TrafficApp::new("sink", vec![], 29, 1);
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    let end = cluster.drain();
    let bytes = msgs * (24 << 10);
    let per_nic_bytes = cluster.nics[0]
        .iter()
        .map(|&nic| cluster.sim.nic(nic).stats.tx_payload_bytes)
        .collect();
    let intact = rx.borrow().integrity.all_ok();
    let rxm = cluster.handle(1).metrics();
    RailPoint {
        mbps: bytes as f64 / 1e6 / end.as_secs_f64(),
        per_nic_bytes,
        p50_us: rxm.latency.quantile(0.5).as_micros_f64(),
        p99_us: rxm.latency.quantile(0.99).as_micros_f64(),
        intact,
    }
}

/// Pooled optimizer with rendezvous disabled (also the regression gate's
/// engine for the E7 smoke point).
pub fn opt() -> EngineKind {
    // Disable rendezvous so the stream is a continuous eager chunk supply
    // (rendezvous handshakes would serialize on the request rail and make
    // the comparison about protocol, not balancing).
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    }
}

/// Legacy engine under the same rendezvous-free configuration.
pub fn leg() -> EngineKind {
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    EngineKind::Legacy { config }
}

/// madprof artifacts for the two-rail pooled cell: a fully-traced replica
/// of `run_point(opt(), [mx; 2], msgs)` profiled post-hoc, showing how
/// idle-rail pull splits each message's time between decision and wire.
pub fn profile_artifacts(msgs: u64) -> Vec<(String, String)> {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx; 2],
        engine: opt(),
        trace: Some(1 << 16),
        engine_trace: Some(1 << 16),
    };
    let flow = FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(5)),
        sizes: SizeDist::Fixed(24 << 10),
        express_header: 0,
        stop_after: Some(msgs),
        start_after: SimDuration::ZERO,
    };
    let (app, _tx) = TrafficApp::new("bulk", vec![flow], 29, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], 29, 1);
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    cluster.drain();
    let prof = cluster.profile();
    vec![
        ("e7_profile.folded".to_string(), prof.folded_stacks()),
        ("e7_attribution.csv".to_string(), prof.attribution_csv()),
        ("e7_profile.json".to_string(), prof.to_json().render()),
    ]
}

/// Run the experiment.
pub fn run() -> Report {
    let msgs = 300u64;
    let mut t = Table::new(
        "single bulk flow, 300 x 24KiB messages, homogeneous MX rails",
        &[
            "rails",
            "opt MB/s",
            "legacy MB/s",
            "gain",
            "opt p50(us)",
            "opt p99(us)",
        ],
    );
    for k in 1..=4usize {
        let rails = vec![Technology::MyrinetMx; k];
        let o = run_point(opt(), rails.clone(), msgs);
        let l = run_point(leg(), rails, msgs);
        assert!(o.intact && l.intact);
        t.row(vec![
            k.to_string(),
            fmt_f(o.mbps),
            fmt_f(l.mbps),
            format!("{:.2}x", o.mbps / l.mbps),
            fmt_f(o.p50_us),
            fmt_f(o.p99_us),
        ]);
    }

    let hetero = run_point(
        opt(),
        vec![Technology::MyrinetMx, Technology::QuadricsElan],
        msgs,
    );
    let mx_only = run_point(opt(), vec![Technology::MyrinetMx], msgs);
    let elan_only = run_point(opt(), vec![Technology::QuadricsElan], msgs);
    let mut t2 = Table::new(
        "heterogeneous node: Myrinet + Quadrics rails (Figure 1's node)",
        &["config", "MB/s", "bytes via MX", "bytes via Elan"],
    );
    t2.row(vec![
        "MX only".into(),
        fmt_f(mx_only.mbps),
        mx_only.per_nic_bytes[0].to_string(),
        "-".into(),
    ]);
    t2.row(vec![
        "Elan only".into(),
        fmt_f(elan_only.mbps),
        "-".into(),
        elan_only.per_nic_bytes[0].to_string(),
    ]);
    t2.row(vec![
        "MX + Elan pooled".into(),
        fmt_f(hetero.mbps),
        hetero.per_nic_bytes[0].to_string(),
        hetero.per_nic_bytes[1].to_string(),
    ]);

    Report {
        id: "E7",
        title: "multi-rail load balancing, homogeneous and heterogeneous",
        claim:
            "dynamic load balancing on multiple NICs, or even NICs from multiple technologies (§2)",
        tables: vec![t, t2],
        notes: vec![
            "the legacy engine chains a flow to one NIC; the pooled optimizer's \
             idle-rail pull distributes chunks with shares proportional to each \
             rail's drain rate"
                .into(),
        ],
        artifacts: profile_artifacts(msgs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_scales_with_rail_count_legacy_does_not() {
        let msgs = 120;
        let o1 = run_point(opt(), vec![Technology::MyrinetMx], msgs);
        let o2 = run_point(opt(), vec![Technology::MyrinetMx; 2], msgs);
        let l2 = run_point(leg(), vec![Technology::MyrinetMx; 2], msgs);
        assert!(o1.intact && o2.intact && l2.intact);
        assert!(
            o2.mbps > 1.6 * o1.mbps,
            "2 rails: {} vs 1 rail {}",
            o2.mbps,
            o1.mbps
        );
        // Legacy: single flow -> one rail only.
        assert_eq!(
            l2.per_nic_bytes[1], 0,
            "legacy must not use the second rail"
        );
        assert!(o2.mbps > 1.5 * l2.mbps);
    }

    #[test]
    fn heterogeneous_shares_track_rail_speeds() {
        let h = run_point(
            opt(),
            vec![Technology::MyrinetMx, Technology::QuadricsElan],
            150,
        );
        assert!(h.intact);
        let (mx, elan) = (h.per_nic_bytes[0] as f64, h.per_nic_bytes[1] as f64);
        assert!(mx > 0.0 && elan > 0.0, "both rails used");
        // Elan (~900 MB/s) should carry clearly more than MX (~250 MB/s).
        assert!(elan > 1.5 * mx, "elan {elan} vs mx {mx}");
    }
}
