//! **E5 — Bounding the number of rearrangements** (§4 future work: "study
//! how to bound the number of data rearrangements the optimizer has to
//! evaluate so as to determine the best combination of optimization
//! techniques").
//!
//! The rearrangement budget caps how many candidate plans are *scored* per
//! activation. We sweep it and report both the communication outcome
//! (makespan) and the optimizer's own work (plans evaluated) — showing
//! that a small budget captures nearly all of the benefit, which is the
//! result the authors hoped to establish.

use madeleine::harness::EngineKind;
use madeleine::{EngineConfig, PolicyKind};
use madware::scenario::eager_flows;
use simnet::{SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Outcome of one budget setting.
pub struct BudgetPoint {
    /// Makespan (µs).
    pub makespan_us: f64,
    /// Total plans scored.
    pub evaluated: u64,
    /// Plans scored per activation.
    pub per_act: f64,
    /// Aggregation ratio achieved.
    pub agg: f64,
}

/// Run one budget level.
pub fn run_point(budget: usize) -> BudgetPoint {
    let config = EngineConfig::default().with_budget(budget);
    let engine = EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    };
    let (mut cluster, _tx, _rx) = eager_flows(
        engine,
        Technology::MyrinetMx,
        12,
        96,
        SimDuration::from_micros(1),
        120,
        31,
    );
    let end = cluster.drain();
    let m = cluster.handle(0).metrics();
    BudgetPoint {
        makespan_us: end.as_micros_f64(),
        evaluated: m.plans_evaluated,
        per_act: m.plans_per_activation(),
        agg: m.aggregation_ratio(),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut t = Table::new(
        "12 flows x 120 msgs of 96B, heavy load, MX rail",
        &[
            "budget",
            "makespan(us)",
            "plans scored",
            "plans/act",
            "chunks/pkt",
        ],
    );
    for &b in &[1usize, 2, 4, 8, 16, 64, 256, 1024] {
        let p = run_point(b);
        t.row(vec![
            b.to_string(),
            fmt_f(p.makespan_us),
            p.evaluated.to_string(),
            fmt_f(p.per_act),
            fmt_f(p.agg),
        ]);
    }
    Report {
        id: "E5",
        title: "rearrangement-evaluation budget sweep",
        claim: "bound the number of data rearrangements the optimizer has to evaluate (§4, announced future work)",
        tables: vec![t],
        notes: vec![
            "a budget of a handful of evaluations per activation already \
             captures nearly all of the communication benefit; the unbounded \
             search buys little — evaluations can be safely capped".into(),
        ],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_caps_evaluations() {
        let small = run_point(2);
        let large = run_point(256);
        assert!(small.per_act <= 2.0 + 1e-9);
        assert!(large.evaluated > small.evaluated);
    }

    #[test]
    fn small_budget_retains_most_benefit() {
        // Budget 1 scores only the first proposal (rndv/aggregate first in
        // registry order) — still far better than no optimizer; budget 8 is
        // within 20% of budget 1024.
        let b8 = run_point(8);
        let b1024 = run_point(1024);
        let rel = (b8.makespan_us - b1024.makespan_us) / b1024.makespan_us;
        assert!(rel < 0.2, "budget 8 within 20% of unbounded, got {rel}");
    }
}
