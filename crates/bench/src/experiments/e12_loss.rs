//! **E12 — loss sweep and rail death (madrel)**: the reliability subsystem
//! recovers every message under seeded packet loss, while the legacy
//! engine silently loses traffic; under a permanent rail death the
//! rail-health tracker abandons the dead rail and reroutes the backlog.
//!
//! Methodology: the E1 eager-flow workload runs over a `FaultPlan`
//! installed on the wire (deterministic per-link loss drawn from the plan
//! seed). We sweep loss ∈ {0, 0.5, 1, 2, 5}% and compare the optimizing
//! engine with `ReliabilityMode::Recover` against the legacy engine, then
//! kill rail 0 of a two-rail cluster mid-run and confirm completion over
//! the survivor.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::{EngineConfig, PolicyKind, ReliabilityMode, TrafficClass};
use madware::apps::{FlowSpec, TrafficApp};
use madware::scenario::eager_flows;
use madware::workload::{Arrival, SizeDist};
use simnet::{FaultPlan, NodeId, SimDuration, SimTime, Technology};

use crate::{fmt_f, Report, Table};

const FLOWS: usize = 4;
const MSGS_PER_FLOW: u64 = 100;
const MSG_SIZE: usize = 256;
const MEAN_GAP_US: u64 = 20;
const SEED: u64 = 42;

/// Loss rates swept (fraction of packets dropped on the wire).
pub const LOSS_SWEEP: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

/// Optimizing engine with full ack/retransmit recovery enabled.
pub fn recover_engine() -> EngineKind {
    EngineKind::Optimizing {
        config: EngineConfig {
            reliability: ReliabilityMode::Recover,
            ..EngineConfig::default()
        },
        policy: PolicyKind::Pooled,
    }
}

/// One measured run of the eager-flow workload under a fault plan.
pub struct LossPoint {
    /// Messages the sink delivered.
    pub delivered: u64,
    /// Messages the workload submitted.
    pub expected: u64,
    /// Sender retransmissions.
    pub retransmits: u64,
    /// Sender ack timeouts.
    pub timeouts: u64,
    /// Acks consumed by the sender.
    pub acks: u64,
    /// Messages the sender abandoned (retry budget exhausted, no rail).
    pub lost: u64,
    /// Packets the fault layer dropped on the wire.
    pub wire_drops: u64,
    /// Median delivery latency (µs).
    pub p50_us: f64,
    /// Tail delivery latency (µs).
    pub p99_us: f64,
}

fn measure(cluster: &mut Cluster) -> LossPoint {
    cluster.drain();
    let tx = cluster.handle(0).metrics();
    let rx = cluster.handle(1).metrics();
    let wire_drops = cluster
        .nics
        .iter()
        .flatten()
        .map(|&n| cluster.sim.nic(n).stats.wire_drops)
        .sum();
    LossPoint {
        delivered: rx.delivered_msgs,
        expected: FLOWS as u64 * MSGS_PER_FLOW,
        retransmits: tx.retransmits,
        timeouts: tx.timeouts,
        acks: tx.acks_received,
        lost: tx.lost_msgs,
        wire_drops,
        p50_us: rx.latency.quantile(0.5).as_micros_f64(),
        p99_us: rx.latency.quantile(0.99).as_micros_f64(),
    }
}

/// Run the eager-flow workload on one rail under `loss`, with the given
/// engine. Identical seeds give identical traces: the fault plan is a pure
/// function of (seed, transmission order).
pub fn run_point(engine: EngineKind, loss: f64) -> LossPoint {
    let (mut cluster, _tx, _rx) = eager_flows(
        engine,
        Technology::MyrinetMx,
        FLOWS,
        MSG_SIZE,
        SimDuration::from_micros(MEAN_GAP_US),
        MSGS_PER_FLOW,
        SEED,
    );
    if loss > 0.0 {
        cluster.set_fault_plan(0, FaultPlan::new(SEED).with_loss(loss));
    }
    measure(&mut cluster)
}

/// Two-rail pooled run where rail 0 dies permanently mid-run; returns the
/// measured point plus the sender's `rails_dead` counter.
pub fn run_rail_death() -> (LossPoint, u64) {
    let specs: Vec<FlowSpec> = (0..FLOWS)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(MEAN_GAP_US)),
            sizes: SizeDist::Fixed(MSG_SIZE),
            express_header: 8,
            stop_after: Some(MSGS_PER_FLOW),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _tx) = TrafficApp::new("eager", specs, SEED, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], SEED, 1);
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx; 2],
        engine: recover_engine(),
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    cluster.set_fault_plan(
        0,
        FaultPlan::new(SEED).with_death(SimTime::from_nanos(500_000)),
    );
    let point = measure(&mut cluster);
    let rails_dead = cluster.handle(0).metrics().rails_dead;
    (point, rails_dead)
}

/// Fully-traced replica of `run_point(recover_engine(), 0.01)`, drained
/// and ready to profile. Also the bench suite's madprof smoke cell: the
/// 1% seeded loss makes every phase — including `retx_recovery` —
/// carry real time, so the `prof_*` share gates bite.
pub fn traced_cell() -> Cluster {
    let specs: Vec<FlowSpec> = (0..FLOWS)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(MEAN_GAP_US)),
            sizes: SizeDist::Fixed(MSG_SIZE),
            express_header: 8,
            stop_after: Some(MSGS_PER_FLOW),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _tx) = TrafficApp::new("eager", specs, SEED, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], SEED, 1);
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: recover_engine(),
        trace: Some(1 << 16),
        engine_trace: Some(1 << 16),
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    cluster.set_fault_plan(0, FaultPlan::new(SEED).with_loss(0.01));
    cluster.drain();
    cluster
}

/// madprof artifacts for the 1%-loss recover cell, so the report ships
/// folded stacks + per-message attribution showing where retransmission
/// recovery puts the time.
pub fn profile_artifacts() -> Vec<(String, String)> {
    let prof = traced_cell().profile();
    vec![
        ("e12_profile.folded".to_string(), prof.folded_stacks()),
        ("e12_attribution.csv".to_string(), prof.attribution_csv()),
        ("e12_profile.json".to_string(), prof.to_json().render()),
    ]
}

/// Run the experiment.
pub fn run() -> Report {
    let mut t = Table::new(
        "4 flows x 100 msgs of 256B, MX rail; seeded wire loss vs engine",
        &[
            "loss(%)",
            "engine",
            "delivered",
            "drops",
            "retrans",
            "timeouts",
            "lost",
            "p50(us)",
            "p99(us)",
        ],
    );
    let mut notes = Vec::new();
    let mut lossless_p50 = 0.0f64;
    for &loss in &LOSS_SWEEP {
        for legacy in [false, true] {
            let engine = if legacy {
                EngineKind::legacy()
            } else {
                recover_engine()
            };
            let p = run_point(engine, loss);
            if !legacy && loss == 0.0 {
                lossless_p50 = p.p50_us;
            }
            t.row(vec![
                fmt_f(loss * 100.0),
                if legacy { "legacy" } else { "madrel" }.into(),
                format!("{}/{}", p.delivered, p.expected),
                p.wire_drops.to_string(),
                p.retransmits.to_string(),
                p.timeouts.to_string(),
                p.lost.to_string(),
                fmt_f(p.p50_us),
                fmt_f(p.p99_us),
            ]);
        }
    }
    let one_pct = run_point(recover_engine(), 0.01);
    notes.push(format!(
        "madrel delivers every message at every swept loss rate; median \
         latency at 1% loss is {}x the lossless median (retransmissions \
         land in the tail, not the median)",
        fmt_f(one_pct.p50_us / lossless_p50.max(1e-9)),
    ));

    let (death, rails_dead) = run_rail_death();
    let mut td = Table::new(
        "two MX rails, pooled policy; rail 0 dies permanently at t=500us",
        &[
            "delivered",
            "retrans",
            "timeouts",
            "rails dead",
            "p50(us)",
            "p99(us)",
        ],
    );
    td.row(vec![
        format!("{}/{}", death.delivered, death.expected),
        death.retransmits.to_string(),
        death.timeouts.to_string(),
        rails_dead.to_string(),
        fmt_f(death.p50_us),
        fmt_f(death.p99_us),
    ]);
    notes.push(
        "after the retry budget is exhausted the sender declares rail 0 \
         dead, reroutes the pending backlog to rail 1, and the optimizer \
         stops scheduling onto the dead rail (health penalty -> infinite)"
            .into(),
    );
    notes.push(
        "fault plans are deterministic: two runs with the same seed drop, \
         duplicate and stall exactly the same packets, so traces and \
         metrics are byte-identical across repeats"
            .into(),
    );
    Report {
        id: "E12",
        title: "madrel recovers from wire loss and rail death",
        claim: "ack/retransmit recovery plus rail-health-aware re-optimization completes every transfer under loss the legacy engine silently drops",
        tables: vec![t, td],
        notes,
        artifacts: profile_artifacts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke: one seed, one loss point (satellite 6).
    #[test]
    fn smoke_one_percent_loss_completes() {
        let p = run_point(recover_engine(), 0.01);
        assert!(p.wire_drops > 0, "fault plan must actually drop packets");
        assert_eq!(p.delivered, p.expected, "madrel must recover every message");
        assert_eq!(p.lost, 0);
        assert!(p.retransmits > 0);
    }

    #[test]
    fn every_swept_loss_rate_completes_with_madrel() {
        let base = run_point(recover_engine(), 0.0);
        assert_eq!(base.delivered, base.expected);
        assert_eq!(base.retransmits, 0, "no spurious retransmits when lossless");
        for &loss in &LOSS_SWEEP[1..] {
            let p = run_point(recover_engine(), loss);
            assert_eq!(
                p.delivered, p.expected,
                "lost flows at loss rate {loss}: {}/{}",
                p.delivered, p.expected
            );
            assert_eq!(p.lost, 0, "abandoned messages at loss rate {loss}");
        }
    }

    #[test]
    fn legacy_engine_loses_messages_under_loss() {
        let p = run_point(EngineKind::legacy(), 0.05);
        assert!(p.wire_drops > 0);
        assert!(
            p.delivered < p.expected,
            "legacy has no recovery; drops must surface as missing messages"
        );
    }

    #[test]
    fn median_latency_inflation_below_2x_at_one_percent() {
        let base = run_point(recover_engine(), 0.0);
        let lossy = run_point(recover_engine(), 0.01);
        assert!(
            lossy.p50_us < 2.0 * base.p50_us,
            "median inflation {} vs {}",
            lossy.p50_us,
            base.p50_us
        );
    }

    #[test]
    fn rail_death_completes_on_survivor() {
        let (p, rails_dead) = run_rail_death();
        assert_eq!(p.delivered, p.expected, "rail death must not lose flows");
        assert_eq!(rails_dead, 1, "exactly one rail declared dead");
        assert!(p.timeouts > 0, "death is detected via ack timeouts");
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let a = run_point(recover_engine(), 0.02);
        let b = run_point(recover_engine(), 0.02);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.wire_drops, b.wire_drops);
        assert_eq!(a.p50_us, b.p50_us);
        assert_eq!(a.p99_us, b.p99_us);
    }
}
