//! **E15 — madcoll algorithm selection across fabrics**: collective
//! communication turns the optimizer's cost model into a *schedule*
//! question. The same barrier/broadcast/allreduce can run as a flat
//! star, a binomial tree, or a ring — and which schedule wins depends
//! on the member count, the vector size, the rail's PIO/DMA envelope
//! and the fabric underneath. Four cells:
//!
//! * **Selection grid** — three shapes (each the empirical home turf of
//!   one algorithm) × two madnet fabrics (oversubscribed dumbbell,
//!   full-bisection fat-tree) × every fixed algorithm plus cost-model
//!   selection. Selection is a pure function of the shared
//!   capability/cost/fabric inputs, so members agree on the winner
//!   without coordination traffic; the claim is that `auto` matches the
//!   best fixed algorithm in every cell while no single fixed algorithm
//!   does.
//! * **Elephant + DRR fairness** — member 0 of a core-crossing
//!   allreduce also pumps a BULK elephant through the shared dumbbell
//!   core. Under pack-order fairness the elephant's 8 KiB packs camp in
//!   front of the collective's backlog; DRR round-robins flows within
//!   each class and weights across classes, bounding the collective
//!   tail without starving the elephant.
//! * **madrel fault sweep** — the same allreduce under loss, burst
//!   loss, duplication and reorder with `Recover` reliability: every
//!   collective completes with the right value at every member, because
//!   the round-gated state machine sits entirely above madrel's
//!   exactly-once delivery.
//! * **Distributed-ML training** — `madware::MlTrainApp` steps
//!   (compute → gradient exchange → barrier) under ring-allreduce and
//!   parameter-server exchange styles; the barrier fan-in p999 feeds
//!   the bench gate.
//!
//! Everything runs in virtual time on seeded RNGs: repeat runs are
//! byte-identical, schedules included.

use madeleine::coll::{CollAlgo, CollApp, CollConfig, CollHub, CollOp};
use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madeleine::{
    coll_hub, AppDriver, CommApi, EngineConfig, FairnessMode, LatencyHistogram, PolicyKind,
    ReliabilityMode,
};
use madware::mltrain::{MlTrainApp, MlTrainMode, MlTrainSpec};
use simnet::{FaultPlan, NodeId, SimDuration, SimTime, Technology, Topology};

use crate::{fmt_f, Report, Table};

/// Seed shared by every cell, CI smoke and the bench gate.
pub const SEED: u64 = 1506;

/// Tolerance for "auto matches the best fixed algorithm": selection
/// runs the winner's exact schedule, so this only absorbs estimate
/// mis-rankings, not measurement noise (there is none — virtual time).
pub const AUTO_TOLERANCE: f64 = 1.05;

/// The two madnet fabrics of the selection grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fabric {
    /// `dumbbell(n/2, n−n/2)`: every core crossing shares one link, so
    /// the fan-in of a star pays the oversubscription factor.
    Dumbbell,
    /// `fat_tree(4)`: 16 hosts, full bisection, but every host pair is
    /// several store-and-forward hops apart — rounds cost latency.
    FatTree,
}

impl Fabric {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Fabric::Dumbbell => "dumbbell",
            Fabric::FatTree => "fat-tree",
        }
    }

    /// Topology instance and cluster node count for `members`.
    fn build(self, members: u32) -> (Topology, usize) {
        let profile = nicdrv::calib::params(Technology::MyrinetMx).link_profile();
        match self {
            Fabric::Dumbbell => {
                let left = members / 2;
                (
                    Topology::dumbbell(left, members - left, profile, profile),
                    members as usize,
                )
            }
            Fabric::FatTree => (Topology::fat_tree(4, profile), 16),
        }
    }
}

/// One grid shape: an (op, members, elems) point chosen so that exactly
/// one algorithm is on home turf.
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    /// Display label.
    pub label: &'static str,
    /// Collective operation.
    pub op: CollOp,
    /// Member count (≤ 16 so the fat-tree holds every shape).
    pub members: u32,
    /// Vector elements (8 bytes each).
    pub elems: u32,
    /// Back-to-back iterations per run.
    pub iters: u32,
}

/// The three grid shapes. Small-star broadcast favors the flat star
/// (one round); mid-size broadcast over many members favors the
/// binomial tree (log₂ rounds); a large allreduce favors the ring
/// (bandwidth-optimal chunked reduce-scatter + allgather).
pub fn shapes() -> [Shape; 3] {
    [
        Shape {
            label: "bcast 4x32B",
            op: CollOp::Broadcast { root: 0 },
            members: 4,
            elems: 4,
            iters: 20,
        },
        Shape {
            label: "bcast 16x8KiB",
            op: CollOp::Broadcast { root: 0 },
            members: 16,
            elems: 1024,
            iters: 12,
        },
        Shape {
            label: "allreduce 8x256KiB",
            op: CollOp::Allreduce,
            members: 8,
            elems: 32768,
            iters: 8,
        },
    ]
}

/// One measured grid cell.
pub struct GridPoint {
    /// Member completion p99 (µs) across all iterations and members.
    pub p99_us: f64,
    /// Member completion p999 (µs).
    pub p999_us: f64,
    /// Collectives completed / started (member 0's count).
    pub completed: u64,
    /// Collectives started.
    pub started: u64,
    /// Completed collectives whose verified value was wrong (must be 0).
    pub wrong: u64,
    /// For the auto cell: the algorithm the cost model selected.
    pub selected: Option<CollAlgo>,
    /// Quiescence time (µs).
    pub makespan_us: f64,
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        reliability: ReliabilityMode::Recover,
        record_deliveries: false,
        // Large collectives serialize several long injections at one
        // member; the default 50 us base timeout then fires spuriously
        // and the retransmit storm congests the very links the schedule
        // is waiting on, while a 6-attempt budget would declare the rail
        // dead mid-collective. A 500 us base rides out a serialized
        // fan-in, and backoff doubles per attempt from there.
        retransmit_timeout: SimDuration::from_micros(500),
        retry_budget: 16,
        ..EngineConfig::default()
    }
}

fn grid_cluster(
    fabric: Fabric,
    shape: &Shape,
    algo: Option<CollAlgo>,
    trace_cap: Option<usize>,
) -> (Cluster, CollHub) {
    let (topo, nodes) = fabric.build(shape.members);
    let cfg = CollConfig {
        algo,
        ..CollConfig::for_fabric(Technology::MyrinetMx, &topo)
    };
    let (apps, hub) = CollApp::ranks(shape.op, shape.elems, shape.members, shape.iters, &cfg);
    let spec = ClusterSpec {
        nodes,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: engine_config(),
            policy: PolicyKind::Pooled,
        },
        trace: trace_cap,
        engine_trace: trace_cap,
    };
    (
        Cluster::build_with_topologies(&spec, vec![Some(topo)], apps),
        hub,
    )
}

/// Run one selection-grid cell: `algo` fixed, or `None` for cost-model
/// selection.
pub fn run_grid_cell(fabric: Fabric, shape: &Shape, algo: Option<CollAlgo>) -> GridPoint {
    let (mut cluster, hub) = grid_cluster(fabric, shape, algo, None);
    let end = cluster.drain();
    let stats = hub.borrow();
    let h = &stats.completion[shape.op.index()];
    let selected = if algo.is_none() {
        CollAlgo::ALL
            .into_iter()
            .find(|a| stats.wins[a.index()] > 0)
    } else {
        None
    };
    GridPoint {
        p99_us: h.quantile(0.99).as_micros_f64(),
        p999_us: h.quantile(0.999).as_micros_f64(),
        completed: stats.completed,
        started: stats.started,
        wrong: stats.wrong_results,
        selected,
        makespan_us: end.as_micros_f64(),
    }
}

/// Fully-traced replica of the auto `bcast 16x8KiB` dumbbell cell —
/// maddiff's E15 cell. `salt` XORs into nothing here (collective
/// schedules are deterministic functions of the shape); instead it
/// perturbs the iteration count so cross-seed diffs compare genuinely
/// different runs; salt 0 is the canonical cell.
pub fn traced_cell(salt: u64) -> Cluster {
    let mut shape = shapes()[1];
    shape.iters += (salt % 3) as u32;
    let (mut cluster, _hub) = grid_cluster(Fabric::Dumbbell, &shape, None, Some(1 << 18));
    cluster.drain();
    cluster
}

/// madprof artifacts for the EXPERIMENTS E15 reading guide: folded
/// stacks and the attribution CSV of the auto large-allreduce dumbbell
/// cell (where the flamegraph separates "slow algorithm" — wide
/// injection spans on the root — from "congested fabric" — queueing
/// attributed to the shared core).
pub fn profile_artifacts() -> Vec<(String, String)> {
    let shape = shapes()[2];
    let (mut cluster, _hub) = grid_cluster(Fabric::Dumbbell, &shape, None, Some(1 << 18));
    cluster.drain();
    let prof = cluster.profile();
    vec![
        ("e15_coll_profile.folded".to_string(), prof.folded_stacks()),
        (
            "e15_coll_attribution.csv".to_string(),
            prof.attribution_csv(),
        ),
    ]
}

/// Member 0 of the contention cell: a plain [`CollApp`] member that
/// *also* pumps a BULK elephant at a non-member node through the shared
/// dumbbell core — the two traffic streams share this node's engine, so
/// the engine's fairness mode decides who waits.
struct BulkyMember {
    inner: CollApp,
    elephant_dst: NodeId,
    bulk_bytes: usize,
    period: SimDuration,
    remaining: u64,
    flow: Option<madeleine::ids::FlowId>,
}

const BULK_TIMER_TAG: u64 = 1;

impl AppDriver for BulkyMember {
    fn on_start(&mut self, api: &mut dyn CommApi) {
        // Open the elephant's flow before the collective opens its own:
        // pack-order fairness serves flows id-ascending, so the
        // elephant gets the most favorable position it could ask for.
        self.flow = Some(api.open_flow(self.elephant_dst, TrafficClass::BULK));
        self.inner.on_start(api);
        self.on_timer(api, BULK_TIMER_TAG);
    }

    fn on_timer(&mut self, api: &mut dyn CommApi, tag: u64) {
        if tag != BULK_TIMER_TAG || self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let flow = self.flow.expect("opened at start");
        let parts = MessageBuilder::new()
            .pack_cheaper(&vec![0xE1u8; self.bulk_bytes])
            .build_parts();
        api.send(flow, parts);
        api.flush();
        if self.remaining > 0 {
            api.set_timer(self.period, BULK_TIMER_TAG);
        }
    }

    fn on_message(&mut self, api: &mut dyn CommApi, msg: &madeleine::DeliveredMessage) {
        self.inner.on_message(api, msg);
    }
}

/// Elephant messages pumped through the core by member 0.
const ELEPHANT_MSGS: u64 = 150;
/// Elephant message payload.
const ELEPHANT_BYTES: usize = 8 << 10;

/// One measured contention run.
pub struct FairPoint {
    /// Collective member-completion p99 (µs).
    pub p99_us: f64,
    /// Collective member-completion p999 (µs).
    pub p999_us: f64,
    /// Collectives completed / started.
    pub completed: u64,
    /// Collectives started.
    pub started: u64,
    /// Wrong verified results (must be 0).
    pub wrong: u64,
    /// Elephant messages the far receiver's engine accepted.
    pub elephant_delivered: u64,
    /// Quiescence time (µs).
    pub makespan_us: f64,
    /// All-node engine metrics as deterministic JSON.
    pub engine_json: String,
}

/// Run the elephant + fairness cell: an 8-member core-crossing
/// allreduce on `dumbbell(5,5)` whose member 0 also pumps
/// [`ELEPHANT_MSGS`] × 8 KiB of BULK at node 9, under the given engine
/// fairness mode.
pub fn run_fairness_cell(fairness: FairnessMode) -> FairPoint {
    let profile = nicdrv::calib::params(Technology::MyrinetMx).link_profile();
    let topo = Topology::dumbbell(5, 5, profile, profile);
    // Members sit 4 per side so every collective round crosses the
    // core; nodes 4 (left) and 9 (right) stay free for the elephant.
    let member_nodes: Vec<NodeId> = [0u32, 1, 2, 3, 5, 6, 7, 8].map(NodeId).to_vec();
    let cfg = CollConfig {
        algo: None,
        ..CollConfig::for_fabric(Technology::MyrinetMx, &topo)
    };
    let (op, elems, iters) = (CollOp::Allreduce, 4096u32, 12u32);
    let hub = coll_hub();
    let mut apps: Vec<Option<Box<dyn AppDriver>>> = (0..10).map(|_| None).collect();
    for (m, &node) in member_nodes.iter().enumerate() {
        let coll = CollApp::new(
            m as u32,
            member_nodes.clone(),
            op,
            elems,
            iters,
            cfg.clone(),
            hub.clone(),
        );
        apps[node.0 as usize] = if m == 0 {
            Some(Box::new(BulkyMember {
                inner: coll,
                elephant_dst: NodeId(9),
                bulk_bytes: ELEPHANT_BYTES,
                period: SimDuration::from_micros(15),
                remaining: ELEPHANT_MSGS,
                flow: None,
            }))
        } else {
            Some(Box::new(coll))
        };
    }
    let config = EngineConfig {
        fairness,
        ..engine_config()
    };
    let spec = ClusterSpec {
        nodes: 10,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build_with_topologies(&spec, vec![Some(topo)], apps);
    let end = cluster.drain();
    let mut engine_json = String::new();
    for i in 0..10 {
        engine_json.push_str(&cluster.handle(i).metrics().to_json().render());
        engine_json.push('\n');
    }
    let stats = hub.borrow();
    let h = &stats.completion[op.index()];
    FairPoint {
        p99_us: h.quantile(0.99).as_micros_f64(),
        p999_us: h.quantile(0.999).as_micros_f64(),
        completed: stats.completed,
        started: stats.started,
        wrong: stats.wrong_results,
        elephant_delivered: cluster.handle(9).metrics().delivered_msgs,
        makespan_us: end.as_micros_f64(),
        engine_json,
    }
}

/// One measured fault-sweep run.
pub struct FaultPoint {
    /// Collectives completed / started (must be equal).
    pub completed: u64,
    /// Collectives started.
    pub started: u64,
    /// Member-level completions (must be members × iterations).
    pub member_completions: u64,
    /// Wrong verified results (must be 0).
    pub wrong: u64,
    /// Retransmissions across all members (madrel recovery work).
    pub retransmits: u64,
    /// Member completion p99 (µs).
    pub p99_us: f64,
    /// Quiescence time (µs).
    pub makespan_us: f64,
}

/// Run the madrel fault cell: an 8-member allreduce on `dumbbell(4,4)`
/// with `Recover` reliability under the given wire fault plan.
pub fn run_fault_cell(plan: FaultPlan) -> FaultPoint {
    let profile = nicdrv::calib::params(Technology::MyrinetMx).link_profile();
    let topo = Topology::dumbbell(4, 4, profile, profile);
    let cfg = CollConfig {
        algo: None,
        ..CollConfig::for_fabric(Technology::MyrinetMx, &topo)
    };
    let (op, members, elems, iters) = (CollOp::Allreduce, 8u32, 1024u32, 10u32);
    let (apps, hub) = CollApp::ranks(op, elems, members, iters, &cfg);
    let spec = ClusterSpec {
        nodes: members as usize,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: engine_config(),
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build_with_topologies(&spec, vec![Some(topo)], apps);
    cluster.set_fault_plan(0, plan);
    let end = cluster.drain();
    let mut retransmits = 0;
    for i in 0..members as usize {
        retransmits += cluster.handle(i).metrics().retransmits;
    }
    let stats = hub.borrow();
    FaultPoint {
        completed: stats.completed,
        started: stats.started,
        member_completions: stats.member_completions,
        wrong: stats.wrong_results,
        retransmits,
        p99_us: stats.completion[op.index()].quantile(0.99).as_micros_f64(),
        makespan_us: end.as_micros_f64(),
    }
}

/// The fault sweep: clean wire, steady loss, loss + duplication +
/// reorder, and a burst-loss window on top.
pub fn fault_sweep() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::new(SEED)),
        ("loss 1%", FaultPlan::new(SEED).with_loss(0.01)),
        (
            "loss 2% + dup 1% + reorder 5%",
            FaultPlan::new(SEED)
                .with_loss(0.02)
                .with_dup(0.01)
                .with_reorder(0.05, SimDuration::from_micros(5)),
        ),
        (
            "burst 30% for 200us",
            FaultPlan::new(SEED).with_loss(0.01).with_burst(
                SimTime::from_nanos(100_000),
                SimTime::from_nanos(300_000),
                0.30,
            ),
        ),
    ]
}

/// One measured training run.
pub struct TrainPoint {
    /// Training steps completed per rank (must be `steps`).
    pub steps_done: u32,
    /// Full-step p50 (µs), merged across ranks.
    pub step_p50_us: f64,
    /// Full-step p99 (µs).
    pub step_p99_us: f64,
    /// Gradient-exchange p99 (µs).
    pub exchange_p99_us: f64,
    /// Barrier fan-in p999 (µs) — the bench-gate tail.
    pub barrier_p999_us: f64,
    /// Steps with a wrong verified gradient, summed over ranks (0).
    pub wrong: u32,
    /// Quiescence time (µs).
    pub makespan_us: f64,
}

/// Run the distributed-ML cell: 8 ranks × 10 steps of
/// compute → gradient exchange → barrier on a flat MX rail.
pub fn run_train_cell(mode: MlTrainMode) -> TrainPoint {
    let ranks = 8u32;
    let spec = MlTrainSpec {
        gradient_elems: 8192,
        compute_delay: SimDuration::from_micros(50),
        steps: 10,
        mode,
        step_barrier: true,
        coll: CollConfig::for_tech(Technology::MyrinetMx),
    };
    let (apps, handles) = MlTrainApp::ranks(ranks, spec);
    let cluster_spec = ClusterSpec {
        nodes: ranks as usize,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: engine_config(),
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build(&cluster_spec, apps);
    let end = cluster.drain();
    let mut step = LatencyHistogram::new();
    let mut exchange = LatencyHistogram::new();
    let mut barrier = LatencyHistogram::new();
    let mut wrong = 0;
    let mut steps_done = u32::MAX;
    for h in &handles {
        let s = h.borrow();
        step.merge(&s.step);
        exchange.merge(&s.exchange);
        barrier.merge(&s.barrier);
        wrong += s.wrong_results;
        steps_done = steps_done.min(s.steps_done);
    }
    TrainPoint {
        steps_done,
        step_p50_us: step.quantile(0.5).as_micros_f64(),
        step_p99_us: step.quantile(0.99).as_micros_f64(),
        exchange_p99_us: exchange.quantile(0.99).as_micros_f64(),
        barrier_p999_us: barrier.quantile(0.999).as_micros_f64(),
        wrong,
        makespan_us: end.as_micros_f64(),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut notes = Vec::new();

    let mut tg = Table::new(
        "member completion p99 (us) per fixed algorithm vs cost-model selection, MyrinetMx rails",
        &[
            "fabric",
            "shape",
            "flat",
            "binomial",
            "ring",
            "auto",
            "auto picked",
        ],
    );
    let mut winners: Vec<&'static str> = Vec::new();
    for fabric in [Fabric::Dumbbell, Fabric::FatTree] {
        for shape in shapes() {
            let mut row = vec![fabric.label().to_string(), shape.label.to_string()];
            for algo in CollAlgo::ALL {
                let p = run_grid_cell(fabric, &shape, Some(algo));
                row.push(fmt_f(p.p99_us));
            }
            let auto = run_grid_cell(fabric, &shape, None);
            let picked = auto.selected.map_or("-", |a| a.label());
            winners.push(picked);
            row.push(fmt_f(auto.p99_us));
            row.push(picked.to_string());
            tg.row(row);
        }
    }
    winners.sort_unstable();
    winners.dedup();
    notes.push(format!(
        "no single fixed algorithm is safe: across the grid the cost \
         model hands wins to {} — selection is a pure function of \
         (op, members, bytes, rail capabilities, fabric hint), so every \
         member picks the same schedule without coordination traffic",
        winners.join(", "),
    ));

    let mut tf = Table::new(
        "8-member core-crossing allreduce (32KiB) while member 0 pumps a BULK elephant (150 x 8KiB) through the same core",
        &[
            "fairness",
            "coll p99(us)",
            "coll p999(us)",
            "completed",
            "elephant delivered",
            "makespan(ms)",
        ],
    );
    let pack = run_fairness_cell(FairnessMode::PackOrder);
    let drr = run_fairness_cell(FairnessMode::Drr);
    for (label, p) in [("pack-order", &pack), ("drr", &drr)] {
        tf.row(vec![
            label.into(),
            fmt_f(p.p99_us),
            fmt_f(p.p999_us),
            format!("{}/{}", p.completed, p.started),
            format!("{}/{}", p.elephant_delivered, ELEPHANT_MSGS),
            fmt_f(p.makespan_us / 1000.0),
        ]);
    }
    notes.push(format!(
        "the elephant shares member 0's engine, so fairness is decided \
         at pack time: pack-order serves the elephant's earlier flow id \
         first and the collective tail stretches to p99 {} us; DRR \
         round-robins flows within each class and weights classes, \
         holding it to {} us while still delivering every elephant \
         message",
        fmt_f(pack.p99_us),
        fmt_f(drr.p99_us),
    ));

    let mut tr = Table::new(
        "8-member auto allreduce (8KiB) x 10 iterations under madrel Recover and wire faults",
        &[
            "fault plan",
            "completed",
            "member completions",
            "wrong",
            "retx",
            "p99(us)",
            "makespan(ms)",
        ],
    );
    for (label, plan) in fault_sweep() {
        let p = run_fault_cell(plan);
        tr.row(vec![
            label.into(),
            format!("{}/{}", p.completed, p.started),
            p.member_completions.to_string(),
            p.wrong.to_string(),
            p.retransmits.to_string(),
            fmt_f(p.p99_us),
            fmt_f(p.makespan_us / 1000.0),
        ]);
    }
    notes.push(
        "the round-gated state machine never re-orders or re-sends on its \
         own: it sits above madrel's exactly-once delivery, so loss, \
         duplication, reorder and burst windows cost only retransmit \
         latency — completion stays 100% with the right value at every \
         member"
            .to_string(),
    );

    let mut tt = Table::new(
        "8 ranks x 10 training steps (64KiB gradient, 50us compute, step barrier), flat MX rail",
        &[
            "exchange",
            "step p50(us)",
            "step p99(us)",
            "exchange p99(us)",
            "barrier p999(us)",
            "steps",
        ],
    );
    let ring = run_train_cell(MlTrainMode::RingAllreduce);
    let ps = run_train_cell(MlTrainMode::ParamServer);
    for (label, p) in [("ring-allreduce", &ring), ("param-server", &ps)] {
        tt.row(vec![
            label.into(),
            fmt_f(p.step_p50_us),
            fmt_f(p.step_p99_us),
            fmt_f(p.exchange_p99_us),
            fmt_f(p.barrier_p999_us),
            p.steps_done.to_string(),
        ]);
    }
    notes.push(format!(
        "training steps are chained collectives (exchange + barrier): \
         ring-allreduce spreads the gradient over every link (step \
         p99 {} us) where the parameter server serializes push and \
         broadcast through rank 0 (step p99 {} us)",
        fmt_f(ring.step_p99_us),
        fmt_f(ps.step_p99_us),
    ));

    Report {
        id: "E15",
        title: "madcoll: cost-model algorithm selection for collectives across fabrics",
        claim: "no fixed collective algorithm wins everywhere; selection parameterized by rail capabilities and fabric shape matches the best fixed choice in every cell, and the round-gated schedules survive faults and fairness pressure unchanged",
        tables: vec![tg, tf, tr, tt],
        notes,
        artifacts: profile_artifacts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance criterion: auto matches/beats the best fixed
    /// algorithm in every fabric × shape cell, and each of
    /// flat/binomial/ring is the selected winner somewhere.
    #[test]
    fn smoke_selection_beats_any_fixed_algorithm() {
        let mut winners = [false; 3];
        for fabric in [Fabric::Dumbbell, Fabric::FatTree] {
            for shape in shapes() {
                let mut best = f64::INFINITY;
                for algo in CollAlgo::ALL {
                    let p = run_grid_cell(fabric, &shape, Some(algo));
                    assert_eq!(
                        p.completed,
                        shape.iters as u64,
                        "{} {} {}: incomplete",
                        fabric.label(),
                        shape.label,
                        algo.label()
                    );
                    assert_eq!(p.wrong, 0);
                    best = best.min(p.p99_us);
                }
                let auto = run_grid_cell(fabric, &shape, None);
                assert_eq!(auto.completed, shape.iters as u64);
                assert_eq!(auto.wrong, 0);
                assert!(
                    auto.p99_us <= best * AUTO_TOLERANCE,
                    "{} {}: auto p99 {} us vs best fixed {} us",
                    fabric.label(),
                    shape.label,
                    auto.p99_us,
                    best
                );
                if let Some(a) = auto.selected {
                    winners[a.index()] = true;
                }
            }
        }
        assert_eq!(
            winners, [true; 3],
            "each algorithm must win at least one cell (flat, binomial, ring)"
        );
    }

    /// Acceptance criterion: 100% collective completion with correct
    /// values under the madrel fault sweep.
    #[test]
    fn smoke_fault_sweep_completes_everything() {
        let mut faulty_retx = 0;
        for (label, plan) in fault_sweep() {
            let clean = plan.loss_rate == 0.0;
            let p = run_fault_cell(plan);
            assert_eq!(p.completed, p.started, "{label}: incomplete collectives");
            assert_eq!(p.member_completions, 8 * 10, "{label}: member shortfall");
            assert_eq!(p.wrong, 0, "{label}: wrong reduced value");
            if !clean {
                faulty_retx += p.retransmits;
            }
        }
        assert!(faulty_retx > 0, "fault sweep never exercised recovery");
    }

    /// DRR fairness bounds the collective tail under elephant pressure
    /// without losing elephant traffic.
    #[test]
    fn smoke_drr_protects_the_collective() {
        let pack = run_fairness_cell(FairnessMode::PackOrder);
        let drr = run_fairness_cell(FairnessMode::Drr);
        for (label, p) in [("pack-order", &pack), ("drr", &drr)] {
            assert_eq!(p.completed, p.started, "{label}: incomplete collectives");
            assert_eq!(p.wrong, 0, "{label}: wrong reduced value");
            assert_eq!(
                p.elephant_delivered, ELEPHANT_MSGS,
                "{label}: elephant lost messages"
            );
        }
        assert!(
            drr.p99_us <= pack.p99_us,
            "drr p99 {} us worse than pack-order {} us",
            drr.p99_us,
            pack.p99_us
        );
    }

    /// Both training modes finish every step with verified gradients.
    #[test]
    fn smoke_training_steps_verify() {
        for mode in [MlTrainMode::RingAllreduce, MlTrainMode::ParamServer] {
            let p = run_train_cell(mode);
            assert_eq!(p.steps_done, 10, "{mode:?}: steps missing");
            assert_eq!(p.wrong, 0, "{mode:?}: wrong gradient");
            assert!(p.barrier_p999_us > 0.0, "{mode:?}: barrier never measured");
        }
    }

    /// Same seed => byte-identical engine metrics across repeats.
    #[test]
    fn deterministic_across_repeats() {
        let a = run_fairness_cell(FairnessMode::Drr);
        let b = run_fairness_cell(FairnessMode::Drr);
        assert_eq!(a.engine_json, b.engine_json, "fairness cell drifts");
    }
}
