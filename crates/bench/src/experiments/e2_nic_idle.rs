//! **E2 — NIC-idle-triggered scheduling** (§3 and Figure 1): "The
//! scheduler is not activated each time the application submits a new
//! packet, but rather when one of the NICs becomes idle. While the NIC is
//! busy sending a packet, the scheduler simply accumulates a backlog of
//! packets."
//!
//! We drive a bursty multi-flow workload and report, per load level, how
//! the optimizer was activated (idle vs submit vs timer), how many
//! submissions each activation absorbed, and how submission remained
//! non-blocking (submissions during NIC-busy periods simply extend the
//! backlog).

use madeleine::harness::EngineKind;
use madware::scenario::eager_flows;
use simnet::{SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Run the experiment.
pub fn run() -> Report {
    let mut t = Table::new(
        "8 flows x 200 msgs of 64B, MX rail; load varies via mean inter-arrival gap",
        &[
            "gap(us)",
            "submits",
            "act(idle)",
            "act(submit)",
            "act(timer)",
            "pkts",
            "submits/act",
            "chunks/pkt",
            "mean backlog",
        ],
    );
    let mut notes = Vec::new();
    for &gap_us in &[1u64, 2, 5, 10, 50, 200] {
        let (mut cluster, _tx, _rx) = eager_flows(
            EngineKind::optimizing(),
            Technology::MyrinetMx,
            8,
            64,
            SimDuration::from_micros(gap_us),
            200,
            7,
        );
        cluster.drain();
        let m = cluster.handle(0).metrics();
        let acts = m.activations().max(1);
        t.row(vec![
            gap_us.to_string(),
            m.submitted_msgs.to_string(),
            m.activations_idle.to_string(),
            m.activations_submit.to_string(),
            m.activations_timer.to_string(),
            m.packets_sent.to_string(),
            fmt_f(m.submitted_msgs as f64 / acts as f64),
            fmt_f(m.aggregation_ratio()),
            fmt_f(m.backlog_depth.mean()),
        ]);
    }
    notes.push(
        "under heavy load (small gaps) most activations are NIC-idle events \
         and each absorbs several submissions (backlog accumulation); under \
         light load activations track submissions one-to-one — the 'send \
         packets as they become available' regime of §3"
            .into(),
    );
    Report {
        id: "E2",
        title: "optimizer activation is driven by NIC idleness, not submissions",
        claim: "the application simply enqueues packets and returns; the scheduler runs when a NIC becomes idle (§3, Fig. 1)",
        tables: vec![t],
        notes,
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_load_batches_submissions_per_activation() {
        let (mut cluster, _tx, _rx) = eager_flows(
            EngineKind::optimizing(),
            Technology::MyrinetMx,
            8,
            64,
            SimDuration::from_micros(1),
            100,
            3,
        );
        cluster.drain();
        let m = cluster.handle(0).metrics();
        // Backlogs form: far fewer packets than submissions, and idle
        // activations dominate the submit-triggered ones.
        assert!(m.packets_sent < m.submitted_msgs / 2);
        assert!(m.activations_idle > m.activations_submit);
        assert!(
            m.backlog_depth.mean() > 4.0,
            "backlog {}",
            m.backlog_depth.mean()
        );
    }

    #[test]
    fn light_load_sends_as_available() {
        let (mut cluster, _tx, _rx) = eager_flows(
            EngineKind::optimizing(),
            Technology::MyrinetMx,
            2,
            64,
            SimDuration::from_micros(500),
            20,
            3,
        );
        cluster.drain();
        let m = cluster.handle(0).metrics();
        // No queueing: one packet per message (each message is two chunks,
        // an express header plus its body — still a single packet).
        assert_eq!(m.packets_sent, m.submitted_msgs);
        assert!(
            (m.aggregation_ratio() - 2.0).abs() < 0.05,
            "{}",
            m.aggregation_ratio()
        );
    }
}
