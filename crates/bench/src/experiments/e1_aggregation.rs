//! **E1 — Cross-flow eager aggregation** (the headline claim, §4: "the
//! aggregation of eager segments collected from several independent
//! communication flows brings huge performance gains").
//!
//! N independent flows send fixed-size eager messages between one node
//! pair over MX. We measure the makespan (time to deliver everything),
//! mean latency and aggregation ratio for the optimizer and for the legacy
//! engine, across flow counts and segment sizes.

use madeleine::harness::EngineKind;
use madware::scenario::eager_flows;
use simnet::{SimDuration, Technology};

use crate::{fmt_bytes, fmt_f, Report, Table};

/// Result of one cell of the sweep.
pub struct Cell {
    /// Virtual makespan in microseconds.
    pub makespan_us: f64,
    /// Mean delivery latency in microseconds.
    pub latency_us: f64,
    /// Median delivery latency (µs, madscope histogram).
    pub p50_us: f64,
    /// Tail delivery latency (µs, madscope histogram).
    pub p99_us: f64,
    /// Mean chunks per packet.
    pub agg_ratio: f64,
    /// Data packets sent.
    pub packets: u64,
    /// All payloads verified intact.
    pub intact: bool,
}

/// Run one configuration.
pub fn run_cell(engine: EngineKind, flows: usize, size: usize, msgs: u64, seed: u64) -> Cell {
    let (mut cluster, _tx, rx) = eager_flows(
        engine,
        Technology::MyrinetMx,
        flows,
        size,
        SimDuration::from_micros(2), // heavy load: backlog forms
        msgs,
        seed,
    );
    let end = cluster.drain();
    let m = cluster.handle(0).metrics();
    let rxm = cluster.handle(1).metrics();
    assert_eq!(
        rxm.delivered_msgs,
        flows as u64 * msgs,
        "all messages delivered"
    );
    let rx_stats = rx.borrow();
    Cell {
        makespan_us: end.as_micros_f64(),
        latency_us: rxm.latency.summary().mean(),
        p50_us: rxm.latency.quantile(0.5).as_micros_f64(),
        p99_us: rxm.latency.quantile(0.99).as_micros_f64(),
        agg_ratio: m.aggregation_ratio(),
        packets: m.packets_sent,
        intact: rx_stats.integrity.all_ok(),
    }
}

/// Run the full experiment.
pub fn run() -> Report {
    let msgs = 150u64;
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    let mut peak: f64 = 0.0;
    for &size in &[8usize, 64, 512, 4096] {
        let mut t = Table::new(
            format!(
                "eager segments of {} (x{} msgs/flow, MX rail)",
                fmt_bytes(size as u64),
                msgs
            ),
            &[
                "flows",
                "opt makespan(us)",
                "leg makespan(us)",
                "speedup",
                "opt lat(us)",
                "leg lat(us)",
                "opt p50(us)",
                "opt p99(us)",
                "agg ratio",
                "opt pkts",
                "leg pkts",
            ],
        );
        for &flows in &[1usize, 2, 4, 8, 16, 32] {
            let opt = run_cell(EngineKind::optimizing(), flows, size, msgs, 42);
            let leg = run_cell(EngineKind::legacy(), flows, size, msgs, 42);
            assert!(opt.intact && leg.intact, "payload corruption detected");
            let speedup = leg.makespan_us / opt.makespan_us;
            peak = peak.max(speedup);
            t.row(vec![
                flows.to_string(),
                fmt_f(opt.makespan_us),
                fmt_f(leg.makespan_us),
                format!("{speedup:.2}x"),
                fmt_f(opt.latency_us),
                fmt_f(leg.latency_us),
                fmt_f(opt.p50_us),
                fmt_f(opt.p99_us),
                fmt_f(opt.agg_ratio),
                opt.packets.to_string(),
                leg.packets.to_string(),
            ]);
        }
        tables.push(t);
    }
    notes.push(format!(
        "peak speedup {peak:.2}x; gains grow with flow count and shrink with \
         segment size, matching the paper's 'huge gains' for small eager \
         segments from several independent flows"
    ));
    // Madtrace artifacts: a fully-instrumented replay of the sample
    // workload — the merged Chrome timeline plus the metrics registry.
    let (export, metrics) =
        crate::tracecli::export(crate::tracecli::sample(42), false, Technology::MyrinetMx);
    notes.push(format!(
        "madtrace: {} Chrome trace events exported from the seed-42 sample \
         workload (rails as tracks, messages as flow arrows)",
        export.events
    ));
    let artifacts = vec![
        ("e1_sample_trace.json".to_string(), export.json),
        ("e1_metrics.json".to_string(), metrics),
    ];
    Report {
        id: "E1",
        title: "cross-flow eager aggregation vs legacy Madeleine",
        claim: "aggregation of eager segments collected from several independent flows brings huge performance gains (§4)",
        tables,
        notes,
        artifacts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_wins_for_many_small_flows() {
        let opt = run_cell(EngineKind::optimizing(), 8, 16, 60, 1);
        let leg = run_cell(EngineKind::legacy(), 8, 16, 60, 1);
        assert!(opt.intact && leg.intact);
        assert!(opt.agg_ratio > 2.0, "agg ratio {}", opt.agg_ratio);
        assert!(
            leg.makespan_us > 1.5 * opt.makespan_us,
            "legacy {} vs optimizer {}",
            leg.makespan_us,
            opt.makespan_us
        );
        assert!(opt.packets < leg.packets / 2);
    }

    #[test]
    fn single_flow_parity_is_close() {
        // With one flow of well-spaced messages there is little to merge:
        // the optimizer must not be drastically worse than legacy.
        let opt = run_cell(EngineKind::optimizing(), 1, 512, 60, 2);
        let leg = run_cell(EngineKind::legacy(), 1, 512, 60, 2);
        assert!(opt.makespan_us < leg.makespan_us * 1.25);
    }
}
