//! **E9 — Per-packet protocol and transfer-mode selection** (§1:
//! communication libraries "combine a variety of techniques ... PIO and
//! DMA transfer modes, eager, rendez-vous and remote memory access
//! protocols ... to select how to send a given packet the best way").
//!
//! One-shot message latency versus size on every calibrated technology,
//! annotated with the injection mode the driver's cost model selects and
//! the protocol (eager vs rendezvous) the engine uses. The crossover
//! points — where PIO yields to DMA and eager yields to rendezvous — are
//! the capability parameters the optimizer keys on.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madware::pattern;
use nicdrv::{calib, CostModel, Driver};
use simnet::{Technology, TxMode};

use crate::{fmt_bytes, fmt_f, Report, Table};

/// Measured one-shot latency for a message of `size` over `tech`.
pub fn measure(tech: Technology, size: usize) -> (f64, bool) {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![tech],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build(&spec, vec![]);
    let h = cluster.handle(0).clone();
    let dst = cluster.nodes[1];
    let flow = h.open_flow(dst, TrafficClass::DEFAULT);
    let src = cluster.nodes[0];
    cluster.sim.inject(src, |ctx| {
        let body = pattern(flow.0, 0, 0, size);
        h.send(
            ctx,
            flow,
            MessageBuilder::new().pack_cheaper(&body).build_parts(),
        );
    });
    cluster.drain();
    let m = cluster.handle(1).metrics();
    let rndv = cluster.handle(0).metrics().rndv_requests > 0;
    assert_eq!(m.delivered_msgs, 1);
    (m.latency.summary().mean(), rndv)
}

/// Run the experiment.
pub fn run() -> Report {
    let sizes: Vec<usize> = vec![
        1,
        64,
        256,
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
    ];
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for tech in [
        Technology::MyrinetMx,
        Technology::QuadricsElan,
        Technology::InfiniBand,
        Technology::TcpEthernet,
        Technology::SharedMem,
    ] {
        let caps = calib::capabilities(tech);
        let cost = CostModel::from_params(&calib::params(tech));
        let drv = calib::driver(tech, simnet::NicId(0));
        let mut t = Table::new(
            format!("{} one-shot message latency vs size", tech.label()),
            &["size", "latency(us)", "mode", "protocol"],
        );
        for &s in &sizes {
            let (lat, rndv) = measure(tech, s);
            let mode = match drv.select_mode(s as u64, 1) {
                TxMode::Pio => "PIO",
                TxMode::Dma => "DMA",
            };
            let proto = if rndv { "rndv" } else { "eager" };
            t.row(vec![
                fmt_bytes(s as u64),
                fmt_f(lat),
                mode.into(),
                proto.into(),
            ]);
        }
        tables.push(t);
        notes.push(format!(
            "{}: PIO→DMA crossover at {} bytes (cost model), eager→rndv at {}",
            tech.label(),
            cost.pio_dma_crossover().min(caps.pio_max_bytes + 1),
            if caps.rndv_threshold_hint == u64::MAX {
                "never".to_string()
            } else {
                fmt_bytes(caps.rndv_threshold_hint)
            }
        ));
    }
    Report {
        id: "E9",
        title: "PIO/DMA and eager/rendezvous selection across technologies",
        claim:
            "select how to send a given packet the best way: PIO vs DMA, eager vs rendez-vous (§1)",
        tables,
        notes,
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_monotone_in_size() {
        let small = measure(Technology::MyrinetMx, 8).0;
        let large = measure(Technology::MyrinetMx, 256 << 10).0;
        assert!(small < large);
        assert!(small < 6.0, "MX 8B one-way {small}us should be a few us");
    }

    #[test]
    fn rndv_engages_above_threshold() {
        let caps = calib::capabilities(Technology::MyrinetMx);
        let (_, below) = measure(
            Technology::MyrinetMx,
            (caps.rndv_threshold_hint / 2) as usize,
        );
        let (_, above) = measure(
            Technology::MyrinetMx,
            (caps.rndv_threshold_hint * 2) as usize,
        );
        assert!(!below);
        assert!(above);
    }

    #[test]
    fn tech_ordering_for_small_messages() {
        let shm = measure(Technology::SharedMem, 8).0;
        let elan = measure(Technology::QuadricsElan, 8).0;
        let mx = measure(Technology::MyrinetMx, 8).0;
        let tcp = measure(Technology::TcpEthernet, 8).0;
        assert!(shm < elan && elan < mx && mx < tcp);
    }
}
