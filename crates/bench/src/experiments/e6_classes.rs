//! **E6 — Traffic classes on dedicated channels** (§2: the scheduler "may
//! assign some of these resources to different classes of traffic
//! (assigning different channel to large synchronous sends, put/get
//! transfers and control/signalling messages) and help the receiver in
//! sorting out the incoming packets").
//!
//! A bulk stream and a latency-critical control stream share a two-rail
//! node pair. With the pooled policy, control messages queue behind bulk
//! packets; pinning the control class to its own rail restores its
//! latency, at a bounded cost in bulk throughput. A second table shows the
//! receiver-sorting effect of per-class virtual channels.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, PolicyKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Outcome of one policy setting.
pub struct ClassPoint {
    /// Mean control-message latency (µs).
    pub ctrl_mean_us: f64,
    /// p99-ish control latency (µs) from the log2 histogram.
    pub ctrl_p99_us: f64,
    /// Bulk goodput (MB/s over the run).
    pub bulk_mbps: f64,
    /// Packets per virtual channel at the receiver.
    pub vchan_packets: Vec<u64>,
}

fn workload() -> Vec<FlowSpec> {
    vec![
        // Saturating bulk stream: 16 KiB messages back to back.
        FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::BULK,
            arrival: Arrival::Periodic(SimDuration::from_micros(30)),
            sizes: SizeDist::Fixed(16 << 10),
            express_header: 0,
            stop_after: Some(400),
            start_after: SimDuration::ZERO,
        },
        // Latency-critical control stream.
        FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::CONTROL,
            arrival: Arrival::Poisson(SimDuration::from_micros(25)),
            sizes: SizeDist::Fixed(16),
            express_header: 0,
            stop_after: Some(400),
            start_after: SimDuration::ZERO,
        },
    ]
}

/// Run the mixed workload under a policy; `pin` separates the classes.
pub fn run_point(pin: bool, collapse_vchans: bool) -> ClassPoint {
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    let policy = if pin {
        PolicyKind::ClassPinned
    } else {
        PolicyKind::Pooled
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx, Technology::MyrinetMx],
        engine: EngineKind::Optimizing { config, policy },
        trace: None,
        engine_trace: None,
    };
    let (app, _tx) = TrafficApp::new("mix", workload(), 17, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], 17, 1);
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    if pin {
        if let NodeHandle::Opt(h) = cluster.handle(0) {
            h.pin_class(TrafficClass::CONTROL, &[0]);
            h.pin_class(TrafficClass::BULK, &[1]);
            h.pin_class(TrafficClass::DEFAULT, &[1]);
        }
    }
    if collapse_vchans {
        if let NodeHandle::Opt(h) = cluster.handle(0) {
            h.collapse_classes();
        }
    }
    let end = cluster.drain();
    let rx = cluster.handle(1).metrics();
    let ctrl = &rx.latency_by_class[TrafficClass::CONTROL.0 as usize];
    let bulk_bytes = 400u64 * (16 << 10);
    ClassPoint {
        ctrl_mean_us: ctrl.summary().mean(),
        ctrl_p99_us: ctrl.quantile(0.99).as_micros_f64(),
        bulk_mbps: bulk_bytes as f64 / 1e6 / end.as_secs_f64(),
        vchan_packets: cluster.handle(1).receiver_stats().per_vchan_packets,
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let pooled = run_point(false, false);
    let pinned = run_point(true, false);
    let collapsed = run_point(false, true);

    let mut t = Table::new(
        "bulk (16KiB x 400) + control (16B x 400) over 2 MX rails",
        &["policy", "ctrl mean(us)", "ctrl p99(us)", "bulk MB/s"],
    );
    for (name, p) in [
        ("pooled (shared)", &pooled),
        ("class-pinned rails", &pinned),
    ] {
        t.row(vec![
            name.to_string(),
            fmt_f(p.ctrl_mean_us),
            fmt_f(p.ctrl_p99_us),
            fmt_f(p.bulk_mbps),
        ]);
    }

    let mut t2 = Table::new(
        "receiver demultiplexing: packets per virtual channel (rail vchans)",
        &["classmap", "per-vchan packet counts"],
    );
    t2.row(vec![
        "per-class channels".into(),
        format!("{:?}", pooled.vchan_packets),
    ]);
    t2.row(vec![
        "collapsed (1 channel)".into(),
        format!("{:?}", collapsed.vchan_packets),
    ]);

    Report {
        id: "E6",
        title: "traffic classes: dedicated channels for control vs bulk",
        claim:
            "assign resources to traffic classes and help the receiver sort incoming packets (§2)",
        tables: vec![t, t2],
        notes: vec![format!(
            "class pinning cuts control p99 latency {}x while bulk keeps one \
             full rail",
            fmt_f(pooled.ctrl_p99_us / pinned.ctrl_p99_us.max(0.001))
        )],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_improves_control_tail_latency() {
        let pooled = run_point(false, false);
        let pinned = run_point(true, false);
        assert!(
            pinned.ctrl_p99_us < pooled.ctrl_p99_us,
            "pinned {} !< pooled {}",
            pinned.ctrl_p99_us,
            pooled.ctrl_p99_us
        );
        // Bulk keeps moving in both configurations.
        assert!(pinned.bulk_mbps > 50.0);
        assert!(pooled.bulk_mbps > 50.0);
    }

    #[test]
    fn per_class_vchans_presort_packets_for_receiver() {
        let separated = run_point(false, false);
        let collapsed = run_point(false, true);
        let used = |v: &Vec<u64>| v.iter().filter(|&&n| n > 0).count();
        assert!(
            used(&separated.vchan_packets) > used(&collapsed.vchan_packets),
            "separated {:?} vs collapsed {:?}",
            separated.vchan_packets,
            collapsed.vchan_packets
        );
    }
}
