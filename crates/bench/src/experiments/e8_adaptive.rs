//! **E8 — Dynamic policy switching** (§2: "the scheduler may also choose
//! to dynamically change the assignment of networking resources to traffic
//! classes, thus selecting different policies, as the needs of the
//! application evolve during the execution").
//!
//! A two-phase application over four rails: phase 1 is put/get-heavy,
//! phase 2 is default-class-heavy. A static class→rail assignment tuned
//! for phase 1 (put/get gets 3 rails, default gets 1) strands bandwidth in
//! phase 2; the adaptive policy re-assigns rails from observed per-class
//! traffic every epoch and recovers it.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, PolicyKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::{fmt_f, Report, Table};

const PHASE_MSGS: u64 = 300;
const MSG: usize = 8 << 10;

/// Outcome of one policy across the phased run.
pub struct AdaptivePoint {
    /// Total makespan (µs).
    pub makespan_us: f64,
    /// Phase-2 duration (µs): from first phase-2 submission to completion.
    pub phase2_us: f64,
    /// Rebalances performed.
    pub rebalances: u64,
}

fn phased_workload(phase2_start: SimDuration) -> Vec<FlowSpec> {
    let mut specs: Vec<FlowSpec> = (0..3)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::PUT_GET,
            arrival: Arrival::Periodic(SimDuration::from_micros(25)),
            sizes: SizeDist::Fixed(MSG),
            express_header: 0,
            stop_after: Some(PHASE_MSGS / 3),
            start_after: SimDuration::ZERO,
        })
        .collect();
    specs.extend((0..3).map(|_| FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::DEFAULT,
        arrival: Arrival::Periodic(SimDuration::from_micros(25)),
        sizes: SizeDist::Fixed(MSG),
        express_header: 0,
        stop_after: Some(PHASE_MSGS / 3),
        start_after: phase2_start,
    }));
    specs
}

/// Run the phased application under one policy.
pub fn run_point(adaptive: bool) -> AdaptivePoint {
    let phase2_start = SimDuration::from_millis(4);
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        adaptive_epoch: SimDuration::from_micros(200),
        ..EngineConfig::default()
    };
    let policy = if adaptive {
        PolicyKind::Adaptive
    } else {
        PolicyKind::ClassPinned
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx; 4],
        engine: EngineKind::Optimizing { config, policy },
        trace: None,
        engine_trace: None,
    };
    let (app, _tx) = TrafficApp::new("phased", phased_workload(phase2_start), 41, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], 41, 1);
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    let (rebalances, _) = {
        if let NodeHandle::Opt(h) = cluster.handle(0) {
            if !adaptive {
                // Static assignment tuned for phase 1.
                h.pin_class(TrafficClass::PUT_GET, &[0, 1, 2]);
                h.pin_class(TrafficClass::DEFAULT, &[3]);
                h.pin_class(TrafficClass::BULK, &[3]);
                h.pin_class(TrafficClass::CONTROL, &[3]);
            }
            (h.clone(), ())
        } else {
            unreachable!("optimizing cluster")
        }
    };
    let end = cluster.drain();
    AdaptivePoint {
        makespan_us: end.as_micros_f64(),
        phase2_us: end.as_micros_f64() - phase2_start.as_micros_f64(),
        rebalances: rebalances.rebalances(),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let fixed = run_point(false);
    let adaptive = run_point(true);
    let mut t = Table::new(
        "two-phase app (put/get heavy then default heavy), 4 MX rails",
        &["policy", "makespan(us)", "phase-2 time(us)", "rebalances"],
    );
    t.row(vec![
        "static (phase-1 tuned)".into(),
        fmt_f(fixed.makespan_us),
        fmt_f(fixed.phase2_us),
        fixed.rebalances.to_string(),
    ]);
    t.row(vec![
        "adaptive".into(),
        fmt_f(adaptive.makespan_us),
        fmt_f(adaptive.phase2_us),
        adaptive.rebalances.to_string(),
    ]);
    Report {
        id: "E8",
        title: "dynamic class-to-rail reassignment across application phases",
        claim: "dynamically change the assignment of networking resources to traffic classes as the needs of the application evolve (§2)",
        tables: vec![t],
        notes: vec![format!(
            "adaptive finishes phase 2 {:.2}x faster than the stale static \
             assignment",
            fixed.phase2_us / adaptive.phase2_us
        )],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_stale_static_assignment() {
        let fixed = run_point(false);
        let adaptive = run_point(true);
        assert!(adaptive.rebalances > 0, "adaptive must rebalance");
        assert_eq!(fixed.rebalances, 0);
        assert!(
            adaptive.phase2_us < fixed.phase2_us * 0.8,
            "adaptive {} vs fixed {}",
            adaptive.phase2_us,
            fixed.phase2_us
        );
    }
}
