//! **E10 — Copy-aggregation vs gather/scatter** (§1: merge packets "at the
//! cost of additional processing ... or even to use a gather/scatter
//! request").
//!
//! Two views of the same trade-off:
//!
//! 1. *Analytic*: the driver cost model's transmit-engine occupancy for an
//!    N-chunk packet sent linearized (one memcpy + single-segment DMA) vs
//!    gathered (zero copy, per-segment descriptor cost), across chunk
//!    sizes — the crossover the optimizer's scoring discovers per packet.
//! 2. *Measured*: a marshalled (CORBA-like) workload run with the gather
//!    variants enabled (optimizer picks per packet) vs forcibly linearized.

use madeleine::harness::EngineKind;
use madeleine::{EngineConfig, PolicyKind};
use madware::scenario::eager_flows;
use nicdrv::{calib, CostModel};
use simnet::{Technology, TxMode};

use crate::{fmt_bytes, fmt_f, Report, Table};

/// Analytic occupancy of an `n`-chunk packet of `chunk` bytes each.
pub fn analytic(cost: &CostModel, n: usize, chunk: u64) -> (f64, f64) {
    let framing = madeleine::proto::framing_bytes(n);
    let bytes = n as u64 * chunk + framing;
    let gather = cost.injection_time(TxMode::Dma, bytes, 1 + n).as_nanos() as f64 / 1e3;
    let copy = (cost.injection_time(TxMode::Dma, bytes, 1) + cost.copy_time(bytes)).as_nanos()
        as f64
        / 1e3;
    (copy, gather)
}

/// Measured makespan of an aggregating workload with `size`-byte
/// messages, µs.
pub fn measured(force_copy: bool, size: usize) -> (f64, u64, u64) {
    let config = EngineConfig {
        enable_gather: !force_copy,
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    let engine = EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    };
    let (mut cluster, _tx, _rx) = eager_flows(
        engine,
        Technology::MyrinetMx,
        8,
        size,
        simnet::SimDuration::from_micros(2),
        150,
        53,
    );
    let end = cluster.drain();
    let m = cluster.handle(0).metrics();
    (
        end.as_micros_f64(),
        m.gathered_packets,
        m.linearized_packets,
    )
}

/// Run the experiment.
pub fn run() -> Report {
    let cost = CostModel::from_params(&calib::params(Technology::MyrinetMx));
    let mut t = Table::new(
        "analytic tx-engine occupancy (us) per aggregated MX packet: copy vs gather",
        &["chunks", "chunk size", "copy(us)", "gather(us)", "winner"],
    );
    for &n in &[2usize, 4, 8] {
        for &sz in &[16u64, 128, 1024, 4096] {
            let (copy, gather) = analytic(&cost, n, sz);
            t.row(vec![
                n.to_string(),
                fmt_bytes(sz),
                fmt_f(copy),
                fmt_f(gather),
                if copy < gather { "copy" } else { "gather" }.into(),
            ]);
        }
    }

    let mut t2 = Table::new(
        "measured: 8 flows x 150 msgs on MX, auto vs forced copy",
        &[
            "msg size",
            "mode",
            "makespan(us)",
            "gathered pkts",
            "copied pkts",
        ],
    );
    for &size in &[512usize, 4096] {
        let (auto_us, gathered, linearized) = measured(false, size);
        let (copy_us, g2, l2) = measured(true, size);
        t2.row(vec![
            fmt_bytes(size as u64),
            "auto (cost-model choice)".into(),
            fmt_f(auto_us),
            gathered.to_string(),
            linearized.to_string(),
        ]);
        t2.row(vec![
            fmt_bytes(size as u64),
            "forced copy".into(),
            fmt_f(copy_us),
            g2.to_string(),
            l2.to_string(),
        ]);
    }

    Report {
        id: "E10",
        title: "by-copy aggregation vs gather/scatter requests",
        claim:
            "aggregate at the cost of additional processing, or use a gather/scatter request (§1)",
        tables: vec![t, t2],
        notes: vec![
            "small chunks favour the memcpy (per-segment descriptor costs \
             dominate); large chunks favour zero-copy gather (memcpy bytes \
             dominate); the optimizer's scoring picks per packet"
                .into(),
        ],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_crossover_exists() {
        let cost = CostModel::from_params(&calib::params(Technology::MyrinetMx));
        let (copy_small, gather_small) = analytic(&cost, 8, 16);
        let (copy_big, gather_big) = analytic(&cost, 8, 8192);
        assert!(copy_small < gather_small, "tiny chunks: copy should win");
        assert!(gather_big < copy_big, "big chunks: gather should win");
    }

    #[test]
    fn forced_copy_linearizes_everything() {
        let (_, gathered, linearized) = measured(true, 512);
        assert_eq!(gathered, 0);
        assert!(linearized > 0);
    }

    #[test]
    fn auto_picks_gather_for_large_chunks() {
        let (_, gathered, linearized) = measured(false, 4096);
        assert!(
            gathered > linearized,
            "gathered {gathered} vs copied {linearized}"
        );
    }

    #[test]
    fn auto_mode_is_no_worse_than_forced_copy() {
        for &size in &[512usize, 4096] {
            let (auto_us, ..) = measured(false, size);
            let (copy_us, ..) = measured(true, size);
            assert!(
                auto_us <= copy_us * 1.05,
                "auto {auto_us} vs copy {copy_us} at {size}"
            );
        }
    }
}
