//! The numbered experiments (see `DESIGN.md` §3 for the index).

pub mod e10_gather;
pub mod e11_ablation;
pub mod e12_loss;
pub mod e13_flowscale;
pub mod e14_incast;
pub mod e15_coll;
pub mod e1_aggregation;
pub mod e2_nic_idle;
pub mod e3_nagle;
pub mod e4_window;
pub mod e5_budget;
pub mod e6_classes;
pub mod e7_multirail;
pub mod e8_adaptive;
pub mod e9_protocols;

use crate::Report;

/// An experiment runner.
pub type Runner = fn() -> Report;

/// All experiments in order, as (id, runner) pairs.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("e1", e1_aggregation::run as Runner),
        ("e2", e2_nic_idle::run),
        ("e3", e3_nagle::run),
        ("e4", e4_window::run),
        ("e5", e5_budget::run),
        ("e6", e6_classes::run),
        ("e7", e7_multirail::run),
        ("e8", e8_adaptive::run),
        ("e9", e9_protocols::run),
        ("e10", e10_gather::run),
        ("e11", e11_ablation::run),
        ("e12", e12_loss::run),
        ("e13", e13_flowscale::run),
        ("e14", e14_incast::run),
        ("e15", e15_coll::run),
    ]
}

/// Run one experiment by id (case-insensitive), if it exists.
pub fn run_by_id(id: &str) -> Option<Report> {
    let id = id.to_ascii_lowercase();
    all().into_iter().find(|(k, _)| *k == id).map(|(_, f)| f())
}
