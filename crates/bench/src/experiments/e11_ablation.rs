//! **E11 (ablation)** — which strategies earn their keep?
//!
//! `DESIGN.md` commits to ablation benches for the engine's design
//! choices. A mixed workload (many small flows + one bulk stream, two MX
//! rails) is run with strategy families disabled one at a time; the table
//! shows what each contributes. The FIFO fallback is always present, so
//! "fifo-only" is the optimizer degenerated to a plain library while still
//! keeping NIC-idle activation.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, PolicyKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

use crate::{fmt_f, Report, Table};

fn workload() -> Vec<FlowSpec> {
    let mut specs: Vec<FlowSpec> = (0..6)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(3)),
            sizes: SizeDist::Uniform(16, 256),
            express_header: 8,
            stop_after: Some(150),
            start_after: SimDuration::ZERO,
        })
        .collect();
    specs.push(FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(40)),
        sizes: SizeDist::Fixed(24 << 10),
        express_header: 0,
        stop_after: Some(100),
        start_after: SimDuration::ZERO,
    });
    specs
}

/// Outcome of one configuration.
pub struct AblationPoint {
    /// Makespan (µs).
    pub makespan_us: f64,
    /// Mean small-message latency (µs, DEFAULT class).
    pub small_lat_us: f64,
    /// Aggregation ratio.
    pub agg: f64,
    /// Data packets.
    pub packets: u64,
    /// Scoring-contest wins per strategy.
    pub wins: std::collections::BTreeMap<&'static str, u64>,
}

/// Run the mixed workload under a configuration.
pub fn run_config(config: EngineConfig) -> AblationPoint {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx; 2],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let (app, _) = TrafficApp::new("mixed", workload(), 61, 0);
    let (sink, rx) = TrafficApp::new("sink", vec![], 61, 1);
    let mut c = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    let end = c.drain();
    assert!(
        rx.borrow().integrity.all_ok(),
        "payload corruption in ablation"
    );
    let m = c.handle(0).metrics();
    let rxm = c.handle(1).metrics();
    AblationPoint {
        makespan_us: end.as_micros_f64(),
        small_lat_us: rxm.latency_by_class[TrafficClass::DEFAULT.0 as usize]
            .summary()
            .mean(),
        agg: m.aggregation_ratio(),
        packets: m.packets_sent,
        wins: m.strategy_wins.clone(),
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("full engine", EngineConfig::default()),
        (
            "no aggregation",
            EngineConfig {
                enable_aggregation: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no reorder",
            EngineConfig {
                enable_reorder: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no bulk-chunking",
            EngineConfig {
                enable_split: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no gather (copy only)",
            EngineConfig {
                enable_gather: false,
                ..EngineConfig::default()
            },
        ),
        (
            "no rendezvous",
            EngineConfig {
                enable_rndv: false,
                ..EngineConfig::default()
            },
        ),
        ("fifo only", EngineConfig::fifo_only()),
    ];
    let mut t = Table::new(
        "6 small flows + 1 bulk stream, 2 MX rails; one strategy family disabled at a time",
        &[
            "configuration",
            "makespan(us)",
            "small lat(us)",
            "chunks/pkt",
            "pkts",
        ],
    );
    for (name, cfg) in configs {
        let p = run_config(cfg);
        t.row(vec![
            name.to_string(),
            fmt_f(p.makespan_us),
            fmt_f(p.small_lat_us),
            fmt_f(p.agg),
            p.packets.to_string(),
        ]);
    }
    // How deep should aggregation go? Sweep the chunk cap.
    let mut t3 = Table::new(
        "aggregation-depth sweep (same workload, full engine)",
        &["agg chunk limit", "makespan(us)", "chunks/pkt", "pkts"],
    );
    for &limit in &[2usize, 4, 8, 16, 32] {
        let p = run_config(EngineConfig {
            agg_chunk_limit: limit,
            ..EngineConfig::default()
        });
        t3.row(vec![
            limit.to_string(),
            fmt_f(p.makespan_us),
            fmt_f(p.agg),
            p.packets.to_string(),
        ]);
    }

    // Which strategy wins the scoring contest, full engine.
    let full = run_config(EngineConfig::default());
    let mut t2 = Table::new(
        "scoring-contest wins per strategy (full engine, same workload)",
        &["strategy", "plans won"],
    );
    for (name, wins) in &full.wins {
        t2.row(vec![name.to_string(), wins.to_string()]);
    }

    Report {
        id: "E11",
        title: "strategy-database ablation",
        claim: "(repository ablation — quantifies each predefined strategy's contribution)",
        tables: vec![t, t3, t2],
        notes: vec![
            "aggregation carries most of the win on this mix; the other \
             families matter in their own regimes (reorder under class mixes, \
             bulk-chunking for multi-rail streams, gather for large chunks)"
                .into(),
        ],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabling_aggregation_hurts() {
        let full = run_config(EngineConfig::default());
        let no_agg = run_config(EngineConfig {
            enable_aggregation: false,
            ..EngineConfig::default()
        });
        assert!(full.agg > no_agg.agg);
        assert!(
            full.small_lat_us < no_agg.small_lat_us * 1.05,
            "full {} vs no-agg {}",
            full.small_lat_us,
            no_agg.small_lat_us
        );
    }

    #[test]
    fn fifo_only_still_correct_but_slower() {
        let full = run_config(EngineConfig::default());
        let fifo = run_config(EngineConfig::fifo_only());
        assert!((fifo.agg - 1.0).abs() < 0.01, "fifo sends single chunks");
        assert!(fifo.packets > full.packets);
    }
}
