//! **E3 — Nagle-style artificial delay** (§3): "If the NIC never stays
//! busy long enough for packets to accumulate, the scheduler ... may
//! artificially delay them for a short time to increase the potential of
//! interesting aggregations (in a TCP NAGLE's algorithm fashion)."
//!
//! Sparse traffic (the NIC is mostly idle) with the Nagle delay swept from
//! off to 32 µs: aggregation rises with the delay, at the cost of added
//! latency — the trade-off curve the knob exists to navigate.

use madeleine::harness::EngineKind;
use madeleine::{EngineConfig, PolicyKind};
use madware::scenario::eager_flows;
use simnet::{SimDuration, Technology};

use crate::{fmt_f, Report, Table};

/// Outcome of one Nagle setting.
pub struct NaglePoint {
    /// Mean delivery latency (µs).
    pub latency_us: f64,
    /// Aggregation ratio.
    pub agg: f64,
    /// Packets sent.
    pub packets: u64,
    /// Timer-triggered activations.
    pub timer_acts: u64,
}

/// Run one Nagle configuration under sparse multi-flow traffic.
pub fn run_point(delay_us: u64) -> NaglePoint {
    let config = EngineConfig::default().with_nagle(SimDuration::from_micros(delay_us));
    let engine = EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    };
    let (mut cluster, _tx, _rx) = eager_flows(
        engine,
        Technology::MyrinetMx,
        6,
        32,
        SimDuration::from_micros(15), // sparse: NIC idles between messages
        150,
        11,
    );
    cluster.drain();
    let tx = cluster.handle(0).metrics();
    let rx = cluster.handle(1).metrics();
    NaglePoint {
        latency_us: rx.latency.summary().mean(),
        agg: tx.aggregation_ratio(),
        packets: tx.packets_sent,
        timer_acts: tx.activations_timer,
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut t = Table::new(
        "6 flows x 150 msgs of 32B, mean gap 15us (sparse), MX rail",
        &[
            "nagle(us)",
            "mean lat(us)",
            "chunks/pkt",
            "pkts",
            "timer acts",
        ],
    );
    for &d in &[0u64, 1, 2, 4, 8, 16, 32] {
        let p = run_point(d);
        t.row(vec![
            d.to_string(),
            fmt_f(p.latency_us),
            fmt_f(p.agg),
            p.packets.to_string(),
            p.timer_acts.to_string(),
        ]);
    }
    Report {
        id: "E3",
        title: "Nagle-style delayed flush under sparse traffic",
        claim: "artificially delay packets for a short time to increase the potential of interesting aggregations (§3)",
        tables: vec![t],
        notes: vec![
            "delay=0 reproduces the 'send as they become available' default; \
             growing delays trade latency for aggregation (fewer, fuller packets)"
                .into(),
        ],
        artifacts: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nagle_increases_aggregation_and_latency() {
        let off = run_point(0);
        let on = run_point(16);
        assert!(on.agg > off.agg, "agg {} !> {}", on.agg, off.agg);
        assert!(on.packets < off.packets);
        assert!(
            on.latency_us > off.latency_us,
            "latency {} !> {}",
            on.latency_us,
            off.latency_us
        );
        assert!(on.timer_acts > 0, "Nagle timers must fire");
        assert_eq!(off.timer_acts, 0, "no timers when disabled");
    }
}
