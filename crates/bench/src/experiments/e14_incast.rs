//! **E14 — madnet incast and congestion-aware steering**: switched
//! topologies give the optimizer a fabric worth reacting to. Two cells:
//!
//! * **Incast** — N senders burst at one receiver across a dumbbell
//!   whose core carries all N edge links (N:1 oversubscription). The
//!   naive open-loop burst collapses: the core switch queue overflows,
//!   packets drop, and madrel's retransmit timeouts stretch the tail by
//!   orders of magnitude. The same workload behind madflow admission
//!   control (Block policy, small per-sender budget) keeps the engine
//!   backlog — and therefore each message's measured lifetime — bounded,
//!   and recovers every message.
//! * **Steering** — an elephant (BULK, node 1 → node 3) saturates the
//!   shared dumbbell core of rail 0 while mice (DEFAULT, node 0 →
//!   node 2) need the same core. Rail 1 is a flat private-pipe rail.
//!   With `congestion_aware` scoring, ECN marks echoed in acks inflate
//!   rail 0's congestion penalty: idle rails pull the shared backlog in
//!   penalty order, and a rail whose penalty sits far above the best
//!   live rail's is gated out of pulling entirely, so both the mice and
//!   the elephant migrate onto rail 1 after the first marked ack.
//!   Congestion-blind scoring counts the same marks but keeps feeding
//!   the collapsing core until timeouts do the steering the hard, slow
//!   way.
//!
//! Everything runs in virtual time on seeded RNGs: repeat runs are
//! byte-identical, including fabric queue evolution and mark timing.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::{AdmissionPolicy, EngineConfig, PolicyKind, ReliabilityMode};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{LinkProfile, NodeId, SimDuration, Technology, Topology};

use super::e13_flowscale::OverloadApp;
use crate::{fmt_f, Report, Table};

/// Seed shared by both cells, CI smoke and the bench gate.
pub const SEED: u64 = 1406;

/// Senders in the incast cell (the dumbbell's left side).
pub const INCAST_SENDERS: usize = 8;
/// Messages each incast sender offers.
const INCAST_MSGS: u64 = 40;
/// Incast message payload.
const INCAST_MSG_BYTES: usize = 8 << 10;
/// Per-sender engine backlog budget in the admission-controlled cell.
const INCAST_BUDGET: u64 = 32 << 10;

/// One measured incast run.
pub struct IncastPoint {
    /// Messages the receiver's engine delivered.
    pub delivered: u64,
    /// Messages the senders offered.
    pub expected: u64,
    /// Time of quiescence (µs).
    pub makespan_us: f64,
    /// Receiver-measured median latency (µs).
    pub p50_us: f64,
    /// Receiver-measured tail latency (µs).
    pub p99_us: f64,
    /// Fabric packets dropped at full switch queues (per-link sum).
    pub fabric_drops: u64,
    /// Fabric ECN marks (per-link sum).
    pub ecn_marks: u64,
    /// Retransmissions across all senders (madrel).
    pub retransmits: u64,
    /// Messages abandoned after retry-budget exhaustion (must be 0).
    pub lost: u64,
    /// `WouldBlock` outcomes across all senders (0 without admission).
    pub blocked: u64,
    /// Sender + receiver metrics as deterministic JSON.
    pub engine_json: String,
}

/// Run the incast cell: [`INCAST_SENDERS`] → 1 across a dumbbell whose
/// core equals one edge link, with or without admission control.
pub fn run_incast(admission: bool) -> IncastPoint {
    let (point, _cluster) = incast_cell(admission, None, 0);
    point
}

/// `salt` perturbs the senders' submission period (nanoseconds added to
/// the 2 µs base) so maddiff's cross-seed smoke can compare genuinely
/// different timings; salt 0 is the canonical cell.
fn incast_cell(admission: bool, trace_cap: Option<usize>, salt: u64) -> (IncastPoint, Cluster) {
    let n = INCAST_SENDERS;
    let profile = nicdrv::calib::params(Technology::MyrinetMx).link_profile();
    let topo = Topology::dumbbell(n as u32, 1, profile, profile);
    let mut config = EngineConfig {
        reliability: ReliabilityMode::Recover,
        record_deliveries: false,
        // A full incast queue takes ~1 ms to drain at the core rate;
        // a 6-attempt budget with 50 µs base timeout would declare the
        // rail dead mid-collapse instead of riding it out.
        retry_budget: 16,
        ..EngineConfig::default()
    };
    if admission {
        config.admission.max_backlog_bytes = INCAST_BUDGET;
        config.admission.policy = [AdmissionPolicy::Block; 4];
    }
    let mut apps: Vec<Option<Box<dyn madeleine::api::AppDriver>>> = Vec::new();
    let mut stats = Vec::new();
    for _ in 0..n {
        let (app, s) = OverloadApp::new(
            NodeId(n as u32),
            TrafficClass::DEFAULT,
            INCAST_MSG_BYTES,
            SimDuration::from_nanos(2_000 + salt),
            INCAST_MSGS,
        );
        apps.push(Some(Box::new(app)));
        stats.push(s);
    }
    apps.push(None); // the receiver runs a bare engine
    let spec = ClusterSpec {
        nodes: n + 1,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: trace_cap,
        engine_trace: trace_cap,
    };
    let mut cluster = Cluster::build_with_topologies(&spec, vec![Some(topo)], apps);
    let end = cluster.drain();
    let fab = cluster
        .sim
        .fabric(cluster.networks[0])
        .expect("switched rail");
    let (mut drops, mut marks) = (0u64, 0u64);
    for s in fab.link_stats() {
        drops += s.queue_drops;
        marks += s.ecn_marks;
    }
    let (mut retransmits, mut lost, mut blocked) = (0u64, 0u64, 0u64);
    let mut engine_json = String::new();
    for i in 0..n {
        let m = cluster.handle(i).metrics();
        retransmits += m.retransmits;
        lost += m.lost_msgs;
        engine_json.push_str(&m.to_json().render());
        engine_json.push('\n');
    }
    for s in &stats {
        blocked += s.borrow().blocked;
    }
    let rx = cluster.handle(n).metrics();
    engine_json.push_str(&rx.to_json().render());
    let point = IncastPoint {
        delivered: rx.delivered_msgs,
        expected: n as u64 * INCAST_MSGS,
        makespan_us: end.as_micros_f64(),
        p50_us: rx.latency.quantile(0.5).as_micros_f64(),
        p99_us: rx.latency.quantile(0.99).as_micros_f64(),
        fabric_drops: drops,
        ecn_marks: marks,
        retransmits,
        lost,
        blocked,
        engine_json,
    };
    (point, cluster)
}

/// Fully-traced replica of `run_incast(true)` — maddiff's E14 cell.
/// The admission-controlled variant is used because the naive collapse
/// overflows even generous rings, and a truncated baseline would poison
/// every diff against it.
pub fn traced_cell(salt: u64) -> Cluster {
    incast_cell(true, Some(1 << 18), salt).1
}

/// madprof artifacts for the naive incast cell (the EXPERIMENTS E14
/// reading guide): folded stacks and the attribution CSV whose
/// `queueing_ns` column carries the fabric's echoed congestion marks.
pub fn profile_artifacts() -> Vec<(String, String)> {
    let (_, cluster) = incast_cell(false, Some(1 << 18), 0);
    let prof = cluster.profile();
    vec![
        (
            "e14_incast_profile.folded".to_string(),
            prof.folded_stacks(),
        ),
        (
            "e14_incast_attribution.csv".to_string(),
            prof.attribution_csv(),
        ),
    ]
}

/// Mice flows in the steering cell.
const MICE: usize = 8;
/// Messages per mouse.
const MICE_MSGS: u64 = 40;
/// Messages the elephant sends.
const ELEPHANT_MSGS: u64 = 200;

/// One measured steering run.
pub struct SteerPoint {
    /// Mice (DEFAULT) median latency (µs), receiver-measured.
    pub mice_p50_us: f64,
    /// Mice (DEFAULT) tail latency (µs).
    pub mice_p99_us: f64,
    /// Mice exact mean latency (µs) — the log2 buckets quantize the
    /// quantiles, the mean separates the cells continuously.
    pub mice_mean_us: f64,
    /// Mice exact worst-case latency (µs).
    pub mice_max_us: f64,
    /// Elephant (BULK) tail latency (µs).
    pub elephant_p99_us: f64,
    /// Messages delivered across both receivers.
    pub delivered: u64,
    /// Messages offered.
    pub expected: u64,
    /// ECN echoes observed by the mice sender (its congestion signal).
    pub mice_ecn_echoes: u64,
    /// Rails declared dead across all senders (blind mode's failure
    /// path; aware mode steers before the retry budget burns).
    pub rails_dead: u64,
    /// Sender + receiver metrics as deterministic JSON.
    pub engine_json: String,
}

/// Run the steering cell: elephant and mice share rail 0's dumbbell
/// core (4:1 undersized), rail 1 is a flat private-pipe rail, and
/// `aware` toggles congestion-aware plan scoring.
pub fn run_steering(aware: bool) -> SteerPoint {
    let params = nicdrv::calib::params(Technology::MyrinetMx);
    let edge = params.link_profile();
    let core = LinkProfile {
        bandwidth: edge.bandwidth / 4,
        queue_capacity: 64 << 10,
        ecn_threshold: 16 << 10,
        ..edge
    };
    // Hosts fill in node order: nodes 0,1 left of the core, 2,3 right.
    let topo = Topology::dumbbell(2, 2, edge, core);
    let config = EngineConfig {
        reliability: ReliabilityMode::Recover,
        record_deliveries: false,
        congestion_aware: aware,
        // The blind cell rides out the collapsing core on timeouts; a
        // 6-attempt budget would kill both rails and lose messages.
        retry_budget: 16,
        ..EngineConfig::default()
    };
    let mice_specs: Vec<FlowSpec> = (0..MICE)
        .map(|_| FlowSpec {
            dst: NodeId(2),
            class: TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(100)),
            sizes: SizeDist::Fixed(256),
            express_header: 8,
            stop_after: Some(MICE_MSGS),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let elephant_spec = vec![FlowSpec {
        dst: NodeId(3),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(40)),
        sizes: SizeDist::Fixed(8 << 10),
        express_header: 0,
        stop_after: Some(ELEPHANT_MSGS),
        start_after: SimDuration::ZERO,
    }];
    let (mice, _mtx) = TrafficApp::new("mice", mice_specs, SEED, 0);
    let (elephant, _etx) = TrafficApp::new("elephant", elephant_spec, SEED, 1);
    let spec = ClusterSpec {
        nodes: 4,
        rails: vec![Technology::MyrinetMx; 2],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let mut cluster = Cluster::build_with_topologies(
        &spec,
        vec![Some(topo), None],
        vec![Some(Box::new(mice)), Some(Box::new(elephant))],
    );
    cluster.drain();
    let mice_rx = cluster.handle(2).metrics();
    let elephant_rx = cluster.handle(3).metrics();
    let mice_lat = &mice_rx.latency_by_class[TrafficClass::DEFAULT.0 as usize];
    let elephant_lat = &elephant_rx.latency_by_class[TrafficClass::BULK.0 as usize];
    let mut engine_json = String::new();
    let mut rails_dead = 0;
    for i in 0..4 {
        let m = cluster.handle(i).metrics();
        rails_dead += m.rails_dead;
        engine_json.push_str(&m.to_json().render());
        engine_json.push('\n');
    }
    SteerPoint {
        mice_p50_us: mice_lat.quantile(0.5).as_micros_f64(),
        mice_p99_us: mice_lat.quantile(0.99).as_micros_f64(),
        mice_mean_us: mice_lat.summary().mean(),
        mice_max_us: mice_lat.summary().max(),
        elephant_p99_us: elephant_lat.quantile(0.99).as_micros_f64(),
        delivered: mice_rx.delivered_msgs + elephant_rx.delivered_msgs,
        expected: MICE as u64 * MICE_MSGS + ELEPHANT_MSGS,
        mice_ecn_echoes: cluster.handle(0).metrics().ecn_echoes,
        rails_dead,
        engine_json,
    }
}

/// Run the experiment.
pub fn run() -> Report {
    let mut notes = Vec::new();

    let mut ti = Table::new(
        "8 senders x 40 x 8KiB bursts -> 1 receiver over dumbbell(8,1), core = 1 edge link, madrel recover",
        &[
            "admission",
            "delivered",
            "makespan(ms)",
            "p50(us)",
            "p99(us)",
            "fabric drops",
            "ecn marks",
            "retx",
            "blocked",
        ],
    );
    let naive = run_incast(false);
    let admitted = run_incast(true);
    for (label, p) in [("open-loop", &naive), ("block 32KiB", &admitted)] {
        ti.row(vec![
            label.into(),
            format!("{}/{}", p.delivered, p.expected),
            fmt_f(p.makespan_us / 1000.0),
            fmt_f(p.p50_us),
            fmt_f(p.p99_us),
            p.fabric_drops.to_string(),
            p.ecn_marks.to_string(),
            p.retransmits.to_string(),
            p.blocked.to_string(),
        ]);
    }
    notes.push(format!(
        "incast collapse is a queue phenomenon: the open-loop burst \
         overflows the core switch queue ({} drops, {} retransmits) and \
         p99 stretches to {} us; the same offered load behind a 32KiB \
         Block budget keeps the engine lifetime bounded (p99 {} us) and \
         recovers every message",
        naive.fabric_drops,
        naive.retransmits,
        fmt_f(naive.p99_us),
        fmt_f(admitted.p99_us),
    ));

    let mut ts = Table::new(
        "elephant (BULK, 8KiB/25us) + 8 mice (DEFAULT, 256B) share rail0's dumbbell core (1/4 edge bw); rail1 flat",
        &[
            "scoring",
            "mice p50(us)",
            "mice mean(us)",
            "mice p99(us)",
            "elephant p99(ms)",
            "delivered",
            "mice ecn echoes",
            "rails dead",
        ],
    );
    let blind = run_steering(false);
    let aware = run_steering(true);
    for (label, p) in [("congestion-blind", &blind), ("congestion-aware", &aware)] {
        ts.row(vec![
            label.into(),
            fmt_f(p.mice_p50_us),
            fmt_f(p.mice_mean_us),
            fmt_f(p.mice_p99_us),
            fmt_f(p.elephant_p99_us / 1000.0),
            format!("{}/{}", p.delivered, p.expected),
            p.mice_ecn_echoes.to_string(),
            p.rails_dead.to_string(),
        ]);
    }
    notes.push(format!(
        "echoed ECN marks inflate rail0's congestion penalty, which both \
         reorders the idle-rail pull and *gates* rail0 out of pulling \
         backlog at all while a cleaner rail exists, so traffic migrates \
         to the flat rail after the first marked ack: mice p99 {} -> {} \
         us, elephant p99 {} -> {} ms; blind scoring counts the same \
         marks but only reacts to loss, paying timeout after timeout on \
         the collapsing core",
        fmt_f(blind.mice_p99_us),
        fmt_f(aware.mice_p99_us),
        fmt_f(blind.elephant_p99_us / 1000.0),
        fmt_f(aware.elephant_p99_us / 1000.0),
    ));

    Report {
        id: "E14",
        title: "madnet: incast collapse vs admission recovery, and congestion-aware rail steering",
        claim: "a switched fabric makes congestion a first-class signal: admission control bounds incast lifetimes, and ECN-fed plan scoring steers traffic off a collapsing shared core",
        tables: vec![ti, ts],
        notes,
        artifacts: profile_artifacts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke (satellite): the naive burst collapses the core queue;
    /// admission control recovers every message with a bounded tail.
    #[test]
    fn smoke_incast_collapse_and_recovery() {
        let naive = run_incast(false);
        assert!(naive.fabric_drops > 0, "incast never overflowed the core");
        assert!(
            naive.ecn_marks > 0,
            "incast never crossed the ECN threshold"
        );
        assert!(naive.retransmits > 0, "drops never triggered recovery");
        let admitted = run_incast(true);
        assert!(admitted.blocked > 0, "budget never exerted backpressure");
        assert_eq!(
            admitted.delivered, admitted.expected,
            "admission-controlled incast must be lossless"
        );
        assert_eq!(admitted.lost, 0);
        assert!(
            admitted.p99_us < naive.p99_us / 4.0,
            "admission p99 {} us not clearly better than naive {} us",
            admitted.p99_us,
            naive.p99_us
        );
    }

    /// Acceptance criterion: congestion-aware scoring beats blind
    /// scoring on mice p99 across the shared bottleneck.
    #[test]
    fn aware_scoring_protects_mice() {
        let blind = run_steering(false);
        let aware = run_steering(true);
        assert_eq!(blind.delivered, blind.expected, "blind run lost messages");
        assert_eq!(aware.delivered, aware.expected, "aware run lost messages");
        assert!(
            aware.mice_ecn_echoes > 0,
            "mice sender never saw a congestion echo"
        );
        assert!(
            aware.mice_p99_us < blind.mice_p99_us,
            "aware mice p99 {} us not better than blind {} us",
            aware.mice_p99_us,
            blind.mice_p99_us
        );
    }

    /// Same seed => byte-identical engine metrics across repeats, fabric
    /// contention included.
    #[test]
    fn deterministic_across_repeats() {
        let a = run_incast(false);
        let b = run_incast(false);
        assert_eq!(a.engine_json, b.engine_json, "incast metrics drift");
        let x = run_steering(true);
        let y = run_steering(true);
        assert_eq!(x.engine_json, y.engine_json, "steering metrics drift");
    }
}
