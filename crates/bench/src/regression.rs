//! madscope bench regression gate.
//!
//! `run_suite` drives one smoke point of each flagship experiment
//! (E1 aggregation, E2 NIC-idle batching, E7 multi-rail balancing,
//! E12 loss recovery, E13 flow scale + admission, E14 incast +
//! congestion steering) plus a
//! sampler-instrumented replay, and collects the headline numbers into
//! a schema-versioned [`BenchDoc`].
//! `cargo xtask bench` serializes it as `BENCH_<label>.json`;
//! `cargo xtask bench --check <baseline>` re-runs the suite and feeds
//! both documents to [`check`], which fails the build when any gated
//! metric moved past the threshold in its bad direction.
//!
//! Every experiment runs in virtual time, so each metric is an exact
//! function of the seed: on unchanged code the comparison is
//! byte-for-byte equal on any machine, and the threshold only exists to
//! tolerate *intentional* small behavioral drift (a strategy tweak that
//! shuffles a packet boundary), not host noise. The one wall-clock
//! measurement (`prof_events_per_sec`) is reported saturated at
//! [`PROF_EVENTS_PER_SEC_CAP`] so it too stays byte-identical on any
//! healthy machine: the gate is an O(events) throughput *floor* for the
//! madprof reconstruction, not a drift tracker.
//!
//! Makespan-bearing smoke points run with the sampler **off**: a
//! sampler keeps its tick timer armed for up to [`SAMPLER_SLEEP_TICKS`]
//! drained ticks past the last delivery, which stretches
//! `run_until_quiescent` without touching any latency. The separate
//! sampler replay supplies the time-series digest and the stats CSV.
//!
//! [`SAMPLER_SLEEP_TICKS`]: madeleine::scope::SAMPLER_SLEEP_TICKS

use madeleine::harness::EngineKind;
use madeleine::json::{obj, Json};
use madeleine::{AdmissionPolicy, FairnessMode, Phase};
use madware::scenario::eager_flows;
use simnet::{SimDuration, Technology};

use crate::experiments::{
    e12_loss, e13_flowscale, e14_incast, e15_coll, e1_aggregation, e7_multirail,
};

/// Document schema tag; bump when metric names or semantics change so a
/// stale committed baseline fails loudly instead of comparing garbage.
pub const SCHEMA: &str = "madscope-bench-v1";

/// Default per-metric regression threshold (fraction of the baseline).
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// Sampler tick used by the instrumented replay.
pub const SAMPLER_TICK_US: u64 = 5;

/// Saturation cap for `prof_events_per_sec` (events per wall-clock
/// second). Any machine reconstructing faster than this — which is every
/// healthy one by an order of magnitude — reports exactly the cap, so
/// the metric stays deterministic; only a pathological slowdown in the
/// profiler (an accidental O(events^2) pass) can pull the value below
/// the cap and trip the `HigherIsBetter` gate.
pub const PROF_EVENTS_PER_SEC_CAP: f64 = 2_000_000.0;

/// Which way a metric is allowed to move without tripping the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like: the gate fires when the fresh value grows.
    LowerIsBetter,
    /// Throughput-like: the gate fires when the fresh value shrinks.
    HigherIsBetter,
    /// Recorded for trend inspection only; never gated.
    Info,
}

impl Direction {
    /// Stable serialization label.
    pub fn label(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
            Direction::Info => "info",
        }
    }

    /// Inverse of [`Direction::label`].
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            "info" => Some(Direction::Info),
            _ => None,
        }
    }
}

/// One named measurement with its gating direction.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Stable metric name (`e1_opt_makespan_us`, ...).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Gating direction.
    pub direction: Direction,
}

/// A full bench document: one suite run, serialized as
/// `BENCH_<label>.json`.
#[derive(Clone, Debug)]
pub struct BenchDoc {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Run label (`baseline`, `ci`, ...).
    pub label: String,
    /// Metrics in suite order.
    pub metrics: Vec<Metric>,
}

impl BenchDoc {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The document as JSON (field order fixed, rendering deterministic).
    pub fn to_json(&self) -> Json {
        let metrics: Vec<Json> = self
            .metrics
            .iter()
            .map(|m| {
                obj()
                    .field("name", m.name.as_str())
                    .field("value", m.value)
                    .field("direction", m.direction.label())
                    .build()
            })
            .collect();
        obj()
            .field("artifact", "madscope-bench")
            .field("schema", self.schema.as_str())
            .field("label", self.label.as_str())
            .field("metrics", Json::Arr(metrics))
            .build()
    }

    /// Deterministic JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse a document previously produced by [`BenchDoc::render`].
    /// Rejects schema mismatches so `--check` never compares documents
    /// from different suite generations.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing schema field".to_string())?
            .to_string();
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: document is '{schema}', this binary speaks '{SCHEMA}' \
                 (regenerate the baseline with `cargo xtask bench`)"
            ));
        }
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing label field".to_string())?
            .to_string();
        let mut metrics = Vec::new();
        for m in doc
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing metrics array".to_string())?
        {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "metric without name".to_string())?
                .to_string();
            let value = m
                .get("value")
                .and_then(as_number)
                .ok_or_else(|| format!("metric '{name}' has no numeric value"))?;
            let direction = m
                .get("direction")
                .and_then(Json::as_str)
                .and_then(Direction::parse)
                .ok_or_else(|| format!("metric '{name}' has no valid direction"))?;
            metrics.push(Metric {
                name,
                value,
                direction,
            });
        }
        Ok(BenchDoc {
            schema,
            label,
            metrics,
        })
    }
}

fn as_number(j: &Json) -> Option<f64> {
    match j {
        Json::Int(v) => Some(*v as f64),
        Json::UInt(v) => Some(*v as f64),
        Json::Float(v) => Some(*v),
        Json::Fixed3(v) => Some(*v as f64 / 1000.0),
        _ => None,
    }
}

/// Everything one suite run produces: the gate document plus the
/// sampler time-series CSV artifact.
pub struct SuiteOutput {
    /// The gate document.
    pub doc: BenchDoc,
    /// Sampler CSV from the instrumented replay (`BENCH_<label>_sampler.csv`).
    pub sampler_csv: String,
}

/// Run the smoke suite and collect the gate document.
pub fn run_suite(label: &str) -> SuiteOutput {
    let mut metrics = Vec::new();
    fn push(v: &mut Vec<Metric>, name: &str, value: f64, direction: Direction) {
        v.push(Metric {
            name: name.to_string(),
            value,
            direction,
        });
    }

    // E1: cross-flow eager aggregation, 8 flows x 60 x 64B, seed 42.
    let opt = e1_aggregation::run_cell(EngineKind::optimizing(), 8, 64, 60, 42);
    let leg = e1_aggregation::run_cell(EngineKind::legacy(), 8, 64, 60, 42);
    assert!(opt.intact && leg.intact, "E1 smoke: payload corruption");
    push(
        &mut metrics,
        "e1_opt_makespan_us",
        opt.makespan_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e1_opt_p50_us",
        opt.p50_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e1_opt_p99_us",
        opt.p99_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e1_speedup_vs_legacy",
        leg.makespan_us / opt.makespan_us,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e1_agg_ratio",
        opt.agg_ratio,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e1_opt_packets",
        opt.packets as f64,
        Direction::LowerIsBetter,
    );

    // E2: NIC-idle batching under heavy load (gap 2us), seed 7.
    let (mut cluster, _tx, _rx) = eager_flows(
        EngineKind::optimizing(),
        Technology::MyrinetMx,
        8,
        64,
        SimDuration::from_micros(2),
        200,
        7,
    );
    let end = cluster.drain();
    let m = cluster.handle(0).metrics();
    let acts = m.activations().max(1) as f64;
    push(
        &mut metrics,
        "e2_makespan_us",
        end.as_micros_f64(),
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e2_submits_per_activation",
        m.submitted_msgs as f64 / acts,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e2_idle_activation_share",
        m.activations_idle as f64 / acts,
        Direction::Info,
    );
    push(
        &mut metrics,
        "e2_mean_backlog",
        m.backlog_depth.mean(),
        Direction::Info,
    );

    // E7: two pooled MX rails vs legacy, 120 x 24KiB.
    let rails = vec![Technology::MyrinetMx; 2];
    let o = e7_multirail::run_point(e7_multirail::opt(), rails.clone(), 120);
    let l = e7_multirail::run_point(e7_multirail::leg(), rails, 120);
    assert!(o.intact && l.intact, "E7 smoke: payload corruption");
    push(
        &mut metrics,
        "e7_2rail_opt_mbps",
        o.mbps,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e7_2rail_gain_vs_legacy",
        o.mbps / l.mbps,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e7_2rail_p50_us",
        o.p50_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e7_2rail_p99_us",
        o.p99_us,
        Direction::LowerIsBetter,
    );

    // E12: madrel recovery at 1% seeded wire loss.
    let p = e12_loss::run_point(e12_loss::recover_engine(), 0.01);
    push(
        &mut metrics,
        "e12_delivered_fraction",
        p.delivered as f64 / p.expected as f64,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e12_p99_us",
        p.p99_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e12_retransmits",
        p.retransmits as f64,
        Direction::Info,
    );

    // E13: madflow flow scale + admission. One smoke-sized open-loop
    // scale point, the DRR mice-protection cell, and the lossless
    // Block-policy overload cell.
    let s = e13_flowscale::run_scale(e13_flowscale::SMOKE_FLOWS, 2, e13_flowscale::SEED, false);
    assert_eq!(s.violations, 0, "E13 smoke: express ordering violated");
    push(
        &mut metrics,
        "e13_scale_makespan_us",
        s.makespan_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e13_scale_p99_us",
        s.p99_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e13_delivered_fraction",
        s.delivered as f64 / s.expected as f64,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e13_peak_backlog_bytes",
        s.peak_backlog as f64,
        Direction::Info,
    );
    let fair = e13_flowscale::run_fairness(FairnessMode::Drr);
    push(
        &mut metrics,
        "e13_drr_mice_p99_us",
        fair.mice_p99_us,
        Direction::LowerIsBetter,
    );
    let ov = e13_flowscale::run_overload(AdmissionPolicy::Block, false);
    push(
        &mut metrics,
        "e13_overload_delivered_fraction",
        ov.delivered as f64 / ov.stats.attempts as f64,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e13_overload_unblocked_events",
        ov.unblocked_events as f64,
        Direction::Info,
    );

    // E14: madnet incast + congestion-aware steering. The naive incast
    // point is informational (it *should* collapse); the admission point
    // and the congestion-aware mice tail are the gated claims.
    let ni = e14_incast::run_incast(false);
    let ai = e14_incast::run_incast(true);
    push(
        &mut metrics,
        "e14_incast_naive_p99_us",
        ni.p99_us,
        Direction::Info,
    );
    push(
        &mut metrics,
        "e14_incast_admission_p99_us",
        ai.p99_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e14_incast_recovered_fraction",
        ai.delivered as f64 / ai.expected as f64,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "e14_incast_fabric_drops",
        ni.fabric_drops as f64,
        Direction::Info,
    );
    let blind = e14_incast::run_steering(false);
    let aware = e14_incast::run_steering(true);
    push(
        &mut metrics,
        "e14_mice_blind_p99_us",
        blind.mice_p99_us,
        Direction::Info,
    );
    push(
        &mut metrics,
        "e14_mice_aware_p99_us",
        aware.mice_p99_us,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e14_steering_gain",
        blind.mice_mean_us / aware.mice_mean_us,
        Direction::HigherIsBetter,
    );

    // E15: madcoll algorithm selection. The win rate counts grid cells
    // (fabric × shape) where cost-model selection matches the best
    // fixed algorithm within the experiment's tolerance; the allreduce
    // tail and the training barrier fan-in are the gated latencies.
    let mut cells = 0u32;
    let mut wins = 0u32;
    let mut allreduce_p99 = 0.0f64;
    for fabric in [e15_coll::Fabric::Dumbbell, e15_coll::Fabric::FatTree] {
        for shape in e15_coll::shapes() {
            let mut best = f64::INFINITY;
            for algo in madeleine::CollAlgo::ALL {
                best = best.min(e15_coll::run_grid_cell(fabric, &shape, Some(algo)).p99_us);
            }
            let auto = e15_coll::run_grid_cell(fabric, &shape, None);
            cells += 1;
            if auto.p99_us <= best * e15_coll::AUTO_TOLERANCE {
                wins += 1;
            }
            if fabric == e15_coll::Fabric::Dumbbell
                && matches!(shape.op, madeleine::CollOp::Allreduce)
            {
                allreduce_p99 = auto.p99_us;
            }
        }
    }
    push(
        &mut metrics,
        "e15_allreduce_auto_p99_us",
        allreduce_p99,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "e15_selection_win_rate",
        wins as f64 / cells as f64,
        Direction::HigherIsBetter,
    );
    let train = e15_coll::run_train_cell(madware::mltrain::MlTrainMode::RingAllreduce);
    push(
        &mut metrics,
        "e15_barrier_fanin_p999_us",
        train.barrier_p999_us,
        Direction::LowerIsBetter,
    );

    // madprof: phase attribution of the traced E12 loss cell (the 1%
    // seeded loss puts real time in every phase, so the share gates
    // bite). Shares are exact per-mille integers over virtual time —
    // deterministic like everything else; the events/sec floor is the
    // suite's only wall-clock measurement (see PROF_EVENTS_PER_SEC_CAP).
    let cell = e12_loss::traced_cell();
    let prof = cell.profile();
    assert_eq!(
        prof.partition_violations, 0,
        "madprof smoke: phase partition invariant violated"
    );
    assert!(!prof.truncated(), "madprof smoke: event ring overflowed");
    push(
        &mut metrics,
        "prof_wire_share_p50",
        prof.phase_share_mille(Phase::Wire, 0.5) as f64,
        Direction::HigherIsBetter,
    );
    push(
        &mut metrics,
        "prof_retx_share_p99",
        prof.phase_share_mille(Phase::Retx, 0.99) as f64,
        Direction::LowerIsBetter,
    );
    push(
        &mut metrics,
        "prof_decision_share_p99",
        prof.phase_share_mille(Phase::Decision, 0.99) as f64,
        Direction::LowerIsBetter,
    );
    let input = cell.prof_input();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        // Deliberate wall-clock read: the events/sec floor measures real
        // attribution throughput over a prebuilt input (ring collection
        // and decision-log extraction are one-time capture costs, not
        // the O(events) reconstruction this floor pins); the saturation
        // cap keeps the reported value deterministic.
        let t0 = std::time::Instant::now(); // madlint: allow(nondet-source) — see above
        let rerun = input.profile();
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(rerun.flows.len(), prof.flows.len());
    }
    let events_per_sec = prof.events_processed as f64 / best.max(1e-9);
    push(
        &mut metrics,
        "prof_events_per_sec",
        events_per_sec.min(PROF_EVENTS_PER_SEC_CAP),
        Direction::HigherIsBetter,
    );

    // Sampler replay of the E2 workload: time-series digest + CSV. Kept
    // out of the gated makespans (the tick timer outlives the last
    // delivery by up to SAMPLER_SLEEP_TICKS ticks).
    let (mut cluster, _tx, _rx) = eager_flows(
        EngineKind::optimizing(),
        Technology::MyrinetMx,
        8,
        64,
        SimDuration::from_micros(2),
        200,
        7,
    );
    cluster.enable_sampler(SimDuration::from_micros(SAMPLER_TICK_US));
    cluster.drain();
    let sampler_csv = cluster.sampler_csv(0).unwrap_or_default();
    if let Some(s) = cluster.handle(0).opt().and_then(|h| h.sampler_snapshot()) {
        let backlog_peak = s.rows().map(|r| r.stats.backlog_bytes).max();
        let inflight_peak = s.rows().map(|r| r.stats.inflight_pkts).max();
        push(
            &mut metrics,
            "madscope_sampler_rows",
            s.len() as f64,
            Direction::Info,
        );
        push(
            &mut metrics,
            "madscope_backlog_peak_bytes",
            backlog_peak.unwrap_or(0) as f64,
            Direction::Info,
        );
        push(
            &mut metrics,
            "madscope_inflight_peak_pkts",
            inflight_peak.unwrap_or(0) as f64,
            Direction::Info,
        );
    }

    SuiteOutput {
        doc: BenchDoc {
            schema: SCHEMA.to_string(),
            label: label.to_string(),
            metrics,
        },
        sampler_csv,
    }
}

/// Compare a fresh run against a baseline. Returns one human-readable
/// violation per gated metric that moved past `threshold` in its bad
/// direction (or disappeared); empty means the gate passes. `Info`
/// metrics never gate.
pub fn check(base: &BenchDoc, fresh: &BenchDoc, threshold: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for bm in &base.metrics {
        if bm.direction == Direction::Info {
            continue;
        }
        let Some(fm) = fresh.get(&bm.name) else {
            violations.push(format!(
                "{}: present in baseline but missing from fresh run",
                bm.name
            ));
            continue;
        };
        if !bm.value.is_finite() || bm.value.abs() < 1e-12 {
            continue;
        }
        let delta = match bm.direction {
            Direction::LowerIsBetter => (fm.value - bm.value) / bm.value,
            Direction::HigherIsBetter => (bm.value - fm.value) / bm.value,
            Direction::Info => unreachable!(),
        };
        if delta > threshold {
            let dir = match bm.direction {
                Direction::LowerIsBetter => "rose",
                _ => "fell",
            };
            violations.push(format!(
                "{}: {} {:.3} -> {:.3} ({:.1}% worse, limit {:.1}%)",
                bm.name,
                dir,
                bm.value,
                fm.value,
                delta * 100.0,
                threshold * 100.0
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(metrics: Vec<(&str, f64, Direction)>) -> BenchDoc {
        BenchDoc {
            schema: SCHEMA.to_string(),
            label: "test".to_string(),
            metrics: metrics
                .into_iter()
                .map(|(n, v, d)| Metric {
                    name: n.to_string(),
                    value: v,
                    direction: d,
                })
                .collect(),
        }
    }

    #[test]
    fn identical_docs_pass() {
        let d = doc(vec![
            ("lat", 100.0, Direction::LowerIsBetter),
            ("bw", 50.0, Direction::HigherIsBetter),
            ("note", 7.0, Direction::Info),
        ]);
        assert!(check(&d, &d, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn injected_latency_regression_fails() {
        let base = doc(vec![("lat", 100.0, Direction::LowerIsBetter)]);
        let worse = doc(vec![("lat", 115.0, Direction::LowerIsBetter)]);
        let v = check(&base, &worse, DEFAULT_THRESHOLD);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("lat"), "{v:?}");
        // Improvements never trip the gate.
        assert!(check(&worse, &base, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn throughput_drop_and_missing_metric_fail_but_info_is_free() {
        let base = doc(vec![
            ("bw", 100.0, Direction::HigherIsBetter),
            ("gone", 1.0, Direction::LowerIsBetter),
            ("note", 5.0, Direction::Info),
        ]);
        let fresh = doc(vec![
            ("bw", 90.0, Direction::HigherIsBetter),
            ("note", 500.0, Direction::Info),
        ]);
        let v = check(&base, &fresh, DEFAULT_THRESHOLD);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|s| s.contains("bw")));
        assert!(v.iter().any(|s| s.contains("gone")));
    }

    #[test]
    fn tiny_drift_within_threshold_passes() {
        let base = doc(vec![("lat", 100.0, Direction::LowerIsBetter)]);
        let fresh = doc(vec![("lat", 104.0, Direction::LowerIsBetter)]);
        assert!(check(&base, &fresh, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn json_round_trips_and_rejects_wrong_schema() {
        let d = doc(vec![
            ("lat", 123.456, Direction::LowerIsBetter),
            ("bw", 50.0, Direction::HigherIsBetter),
            ("note", 7.0, Direction::Info),
        ]);
        let text = d.render();
        let back = BenchDoc::parse(&text).expect("round trip");
        assert_eq!(back.label, "test");
        assert_eq!(back.metrics.len(), 3);
        for (a, b) in d.metrics.iter().zip(&back.metrics) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.direction, b.direction);
            assert_eq!(a.value, b.value, "{}", a.name);
        }
        assert_eq!(back.render(), text, "re-render is byte-identical");

        let other = text.replace(SCHEMA, "madscope-bench-v0");
        assert!(BenchDoc::parse(&other).is_err());
    }

    /// The full smoke suite is a pure function of its seeds: two runs
    /// must produce byte-identical JSON and CSV, and the gate must pass
    /// against itself.
    #[test]
    fn suite_is_deterministic_and_self_consistent() {
        let a = run_suite("selftest");
        let b = run_suite("selftest");
        assert_eq!(a.doc.render(), b.doc.render());
        assert_eq!(a.sampler_csv, b.sampler_csv);
        assert!(check(&a.doc, &b.doc, 0.0).is_empty());
        assert!(!a.sampler_csv.is_empty(), "sampler replay produced no CSV");
        assert!(
            a.doc.get("madscope_sampler_rows").map(|m| m.value) > Some(0.0),
            "sampler replay recorded no rows"
        );
        // Spot-check the suite covers all five experiments + madprof.
        for name in [
            "e1_opt_makespan_us",
            "e2_submits_per_activation",
            "e7_2rail_opt_mbps",
            "e12_delivered_fraction",
            "e13_scale_makespan_us",
            "e13_overload_delivered_fraction",
            "e15_allreduce_auto_p99_us",
            "e15_selection_win_rate",
            "e15_barrier_fanin_p999_us",
            "prof_wire_share_p50",
            "prof_retx_share_p99",
            "prof_decision_share_p99",
        ] {
            assert!(a.doc.get(name).is_some(), "missing {name}");
        }
        // The E12 loss cell must exercise every gated phase: zero shares
        // here would leave the prof_* gates comparing 0 vs 0 forever.
        let wire = a.doc.get("prof_wire_share_p50").unwrap().value;
        let retx = a.doc.get("prof_retx_share_p99").unwrap().value;
        assert!(wire > 0.0, "wire share p50 is zero");
        assert!(
            retx > 0.0,
            "retx share p99 is zero (loss cell lost nothing?)"
        );
        // The wall-clock floor must be saturated at the cap — that is
        // what keeps the document byte-identical across runs.
        assert_eq!(
            a.doc.get("prof_events_per_sec").unwrap().value,
            PROF_EVENTS_PER_SEC_CAP,
            "profiler fell below the events/sec saturation cap"
        );
    }
}
