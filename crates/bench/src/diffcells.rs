//! maddiff cells: the seeded, fully-traced workloads the bench gate
//! re-runs to explain a metric regression.
//!
//! Every gated metric prefix (`e1_`, `e7_`, `prof_`, ...) maps to one
//! **diff cell** — a small traced replica of the experiment that feeds
//! the metric. `cargo xtask bench` snapshots every cell at salt 0 into
//! `BENCH_<label>_diffseeds.json` next to the benchmark document; when
//! a later `--check` run trips a gate, xtask rebuilds the violated
//! metric's cell on the current code, diffs it against the committed
//! snapshot with maddiff, and writes a `BENCH_diff_<metric>.md`
//! root-cause report (phase share deltas, migrated rails, first
//! divergent decision).
//!
//! The `salt` parameter perturbs each cell's seed (salt 0 is the
//! canonical baseline); the nightly cross-seed smoke diffs salt 0
//! against salt 1 to exercise alignment under genuinely different
//! workload randomness — message identity `(node, flow, seq)` is
//! timing-independent, so salted runs still align fully.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::json::obj;
use madeleine::{EngineConfig, Json, PolicyKind, ReliabilityMode, RunSnapshot, TrafficClass};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{FaultPlan, NodeId, SimDuration, Technology};
use std::collections::BTreeMap;

use crate::experiments::{e13_flowscale, e14_incast, e15_coll};

/// Ring capacity shared by the locally-built cells.
const TRACE_CAP: usize = 1 << 16;

/// One gated-metric family's traced workload.
pub struct DiffCell {
    /// Cell name (also the snapshot label), e.g. `"e12"`.
    pub name: &'static str,
    /// Gated-metric name prefixes this cell explains.
    pub prefixes: &'static [&'static str],
    /// Build and drain the traced cluster for a seed salt (0 = baseline).
    pub build: fn(u64) -> Cluster,
}

/// Build a drained, fully-traced eager-flow cluster: `flows` identical
/// flows of `msgs` × `msg_size`-byte messages with Poisson gaps.
#[allow(clippy::too_many_arguments)]
fn traced_eager(
    engine: EngineKind,
    rails: usize,
    flows: usize,
    msg_size: usize,
    gap_us: u64,
    msgs: u64,
    seed: u64,
    fault: Option<FaultPlan>,
) -> Cluster {
    let specs: Vec<FlowSpec> = (0..flows)
        .map(|_| FlowSpec {
            dst: NodeId(1),
            class: TrafficClass::DEFAULT,
            arrival: Arrival::Poisson(SimDuration::from_micros(gap_us)),
            sizes: SizeDist::Fixed(msg_size),
            express_header: 8,
            stop_after: Some(msgs),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _tx) = TrafficApp::new("diffcell", specs, seed, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], seed, 1);
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx; rails],
        engine,
        trace: Some(TRACE_CAP),
        engine_trace: Some(TRACE_CAP),
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    if let Some(plan) = fault {
        cluster.set_fault_plan(0, plan);
    }
    cluster.drain();
    cluster
}

fn e1_cell(salt: u64) -> Cluster {
    traced_eager(
        EngineKind::optimizing(),
        1,
        4,
        64,
        5,
        30,
        42 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        None,
    )
}

fn e2_cell(salt: u64) -> Cluster {
    traced_eager(
        EngineKind::optimizing(),
        1,
        4,
        64,
        2,
        50,
        7 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        None,
    )
}

fn e7_cell(salt: u64) -> Cluster {
    traced_eager(
        EngineKind::Optimizing {
            config: EngineConfig::default(),
            policy: PolicyKind::Pooled,
        },
        2,
        1,
        24 << 10,
        4,
        30,
        1777 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        None,
    )
}

fn e12_cell(salt: u64) -> Cluster {
    let seed = 42 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    traced_eager(
        e13_mode_free_recover(),
        1,
        4,
        256,
        20,
        40,
        seed,
        Some(FaultPlan::new(seed).with_loss(0.01)),
    )
}

fn e13_mode_free_recover() -> EngineKind {
    EngineKind::Optimizing {
        config: EngineConfig {
            reliability: ReliabilityMode::Recover,
            ..EngineConfig::default()
        },
        policy: PolicyKind::Pooled,
    }
}

/// Mini fairness cell: one BULK elephant against 8 DEFAULT mice under
/// weighted DRR — the same shape as E13's fairness cell at a size a
/// gate-failure re-run can afford.
fn e13_cell(salt: u64) -> Cluster {
    let mut specs = vec![FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(10)),
        sizes: SizeDist::Fixed(8 << 10),
        express_header: 0,
        stop_after: Some(100),
        start_after: SimDuration::ZERO,
    }];
    specs.extend((0..8).map(|_| FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::DEFAULT,
        arrival: Arrival::Poisson(SimDuration::from_micros(200)),
        sizes: SizeDist::Fixed(256),
        express_header: 8,
        stop_after: Some(25),
        start_after: SimDuration::ZERO,
    }));
    let seed = e13_flowscale::SEED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let (app, _tx) = TrafficApp::new("fairness", specs, seed, 0);
    let (sink, _rx) = TrafficApp::new("sink", vec![], seed, 1);
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: EngineConfig {
                fairness: madeleine::FairnessMode::Drr,
                drr_quantum: 2048,
                ..EngineConfig::default()
            },
            policy: PolicyKind::Pooled,
        },
        trace: Some(TRACE_CAP),
        engine_trace: Some(TRACE_CAP),
    };
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    cluster.drain();
    cluster
}

fn e14_cell(salt: u64) -> Cluster {
    e14_incast::traced_cell(salt)
}

fn e15_cell(salt: u64) -> Cluster {
    e15_coll::traced_cell(salt)
}

/// Every diff cell, in report order. Prefix → cell resolution walks this
/// list first-match.
pub const CELLS: &[DiffCell] = &[
    DiffCell {
        name: "e1",
        prefixes: &["e1_"],
        build: e1_cell,
    },
    DiffCell {
        name: "e2",
        prefixes: &["e2_", "madscope_"],
        build: e2_cell,
    },
    DiffCell {
        name: "e7",
        prefixes: &["e7_"],
        build: e7_cell,
    },
    DiffCell {
        name: "e12",
        prefixes: &["e12_", "prof_"],
        build: e12_cell,
    },
    DiffCell {
        name: "e13",
        prefixes: &["e13_"],
        build: e13_cell,
    },
    DiffCell {
        name: "e14",
        prefixes: &["e14_"],
        build: e14_cell,
    },
    DiffCell {
        name: "e15",
        prefixes: &["e15_"],
        build: e15_cell,
    },
];

/// Resolve the diff cell that explains a gated metric, by name prefix.
pub fn cell_for_metric(metric: &str) -> Option<&'static DiffCell> {
    CELLS
        .iter()
        .find(|c| c.prefixes.iter().any(|p| metric.starts_with(p)))
}

/// Look a cell up by its name.
pub fn cell_named(name: &str) -> Option<&'static DiffCell> {
    CELLS.iter().find(|c| c.name == name)
}

/// Snapshot every cell at salt 0 into one `maddiff-seeds` bundle — the
/// committed-baseline half of every future root-cause diff.
pub fn write_seeds(label: &str) -> String {
    let mut cells = obj();
    for cell in CELLS {
        let snap = (cell.build)(0).run_snapshot(cell.name);
        cells = cells.field(cell.name, snap.to_json());
    }
    obj()
        .field("artifact", "maddiff-seeds")
        .field("schema", "maddiff-seeds-v1")
        .field("label", label)
        .field("cells", cells.build())
        .build()
        .render()
}

/// Parse a `maddiff-seeds` bundle back into per-cell snapshots.
pub fn parse_seeds(text: &str) -> Result<BTreeMap<String, RunSnapshot>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    if doc.get("artifact").and_then(|v| v.as_str()) != Some("maddiff-seeds") {
        return Err("not a maddiff-seeds document".to_string());
    }
    let mut out = BTreeMap::new();
    if let Some(Json::Obj(fields)) = doc.get("cells") {
        for (name, snap) in fields {
            out.insert(name.clone(), RunSnapshot::from_json(snap)?);
        }
    }
    Ok(out)
}

/// Render the `BENCH_diff_<metric>.md` root-cause report for one gate
/// violation: the committed baseline snapshot vs a fresh re-run of the
/// metric's cell on the current code.
pub fn root_cause_report(
    metric: &str,
    violation: &str,
    baseline: &RunSnapshot,
    fresh: &RunSnapshot,
) -> String {
    let d = madeleine::diff(baseline, fresh);
    let mut out = String::new();
    out.push_str(&format!("# maddiff root cause: `{metric}`\n\n"));
    out.push_str(&format!("Gate violation: {violation}\n\n"));
    out.push_str(&format!(
        "Cell `{}` re-run on the current code and aligned against the \
         committed baseline seed by message identity `(node, flow, seq)`. \
         All deltas read fresh minus baseline — positive means the fresh \
         run got slower.\n\n",
        baseline.label
    ));
    out.push_str(&format!(
        "- aligned messages: {}\n- unmatched messages: {}\n\
         - aligned latency delta: {:+} ns\n- partition violations: {}\n",
        d.aligned.len(),
        d.unmatched.len(),
        d.total_delta_ns(),
        d.partition_violations
    ));
    if d.truncated() {
        out.push_str(
            "- **WARNING**: a trace ring overflowed; attribution below may \
             be incomplete\n",
        );
    }
    out.push_str("\n## Phase share deltas (aligned messages, per-mille)\n\n");
    out.push_str("| phase | baseline ns | fresh ns | delta ns | baseline ‰ | fresh ‰ |\n");
    out.push_str("|---|---:|---:|---:|---:|---:|\n");
    for p in madeleine::Phase::ALL {
        let pd = &d.phases[p.rank() as usize];
        if pd.a_total_ns == 0 && pd.b_total_ns == 0 {
            continue;
        }
        out.push_str(&format!(
            "| {} | {} | {} | {:+} | {} | {} |\n",
            p.label(),
            pd.a_total_ns,
            pd.b_total_ns,
            pd.delta_ns,
            pd.a_share_mille,
            pd.b_share_mille
        ));
    }
    out.push_str("\n## Migrations\n\n");
    if d.rail_migrations.is_empty() && d.strategy_migrations.is_empty() {
        out.push_str("No traffic changed rail or winning strategy.\n");
    } else {
        for (&(ra, rb), &n) in &d.rail_migrations {
            out.push_str(&format!("- rail {ra} → rail {rb}: {n} messages\n"));
        }
        for ((sa, sb), n) in &d.strategy_migrations {
            out.push_str(&format!("- strategy {sa} → {sb}: {n} messages\n"));
        }
    }
    out.push_str("\n## First divergent decision\n\n");
    match &d.decision_divergence {
        None => out.push_str("The optimizer made identical decisions in both runs.\n"),
        Some(div) => {
            out.push_str(&format!(
                "Node {} activation {} diverges at record #{}:\n\n",
                div.node, div.activation, div.index
            ));
            let show = |r: &String| {
                if r.is_empty() {
                    "(log ended)".to_string()
                } else {
                    format!("`{r}`")
                }
            };
            out.push_str(&format!("- baseline: {}\n", show(&div.a_record)));
            out.push_str(&format!("- fresh: {}\n", show(&div.b_record)));
            out.push_str(
                "\n(records: `P:` proposed, `V:` vetoed, `S:` scored \
                 num/den, `W:` won)\n",
            );
        }
    }
    out.push_str("\n## Critical path\n\n");
    if d.crit.identical() {
        out.push_str(&format!(
            "Identical blame assignment across {} hops.\n",
            d.crit.a_len
        ));
    } else {
        out.push_str(&format!(
            "Shared prefix {} of {} (baseline) / {} (fresh) hops.\n",
            d.crit.shared_prefix, d.crit.a_len, d.crit.b_len
        ));
        if let Some(s) = &d.crit.b_diverges {
            out.push_str(&format!(
                "Fresh run first diverges blaming {} in `{}`.\n",
                s.key,
                s.phase.label()
            ));
        }
    }
    if !d.unmatched.is_empty() {
        out.push_str("\n## Unmatched messages (excluded from every delta)\n\n");
        for u in &d.unmatched {
            out.push_str(&format!("- {} ({}): {}\n", u.key, u.class, u.reason));
        }
    }
    out.push_str("\n## Full report\n\n```text\n");
    out.push_str(&d.report(10));
    out.push_str("```\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use madeleine::AdmissionPolicy;

    #[test]
    fn every_prefix_resolves_and_names_are_unique() {
        for metric in [
            "e1_makespan_us",
            "e2_p50_us",
            "madscope_overhead",
            "e7_two_rail_speedup",
            "e12_retransmits",
            "prof_wire_share_p50",
            "e13_mice_p99",
            "e14_incast_p99",
        ] {
            assert!(cell_for_metric(metric).is_some(), "unmapped: {metric}");
        }
        assert!(cell_for_metric("nonexistent_metric").is_none());
        let mut names: Vec<_> = CELLS.iter().map(|c| c.name).collect();
        names.dedup();
        assert_eq!(names.len(), CELLS.len());
    }

    #[test]
    fn e1_cell_self_diff_is_zero_and_seed_bundle_round_trips() {
        let snap = e1_cell(0).run_snapshot("e1");
        assert!(!snap.rows.is_empty());
        assert!(!snap.truncated(), "cell must fit its rings");
        let again = e1_cell(0).run_snapshot("e1");
        assert_eq!(
            snap.to_json().render(),
            again.to_json().render(),
            "same salt twice must snapshot byte-identically"
        );
        assert!(madeleine::diff(&snap, &again).is_zero());
    }

    #[test]
    fn shed_policy_diff_reports_unmatched_not_phase_deltas() {
        // The explicit E13 Shed case: Block delivers everything,
        // ShedOldest sheds under pressure. Diffing them must put the
        // shed messages in `unmatched` with the shed-or-abandoned
        // reason and keep the aligned partition exact.
        let block = e13_flowscale::traced_overload_cell(AdmissionPolicy::Block);
        let shed = e13_flowscale::traced_overload_cell(AdmissionPolicy::ShedOldest);
        let d = madeleine::diff(
            &block.run_snapshot("block"),
            &shed.run_snapshot("shed-oldest"),
        );
        assert!(
            !d.unmatched.is_empty(),
            "shed-oldest under overload must shed something"
        );
        assert!(
            d.unmatched
                .iter()
                .any(|u| u.reason.contains("shed or abandoned")),
            "shed victims were submitted, so they must carry the \
             shed-or-abandoned reason"
        );
        assert_eq!(d.partition_violations, 0);
        for m in &d.aligned {
            assert_eq!(m.phase_deltas.iter().sum::<i64>(), m.delta_ns);
        }
    }

    #[test]
    fn root_cause_report_names_phase_and_decision() {
        let base = e12_cell(0).run_snapshot("e12");
        let fresh = e12_cell(1).run_snapshot("e12");
        let md = root_cause_report(
            "e12_p50_us",
            "e12_p50_us: 1.20x over baseline",
            &base,
            &fresh,
        );
        assert!(md.contains("# maddiff root cause: `e12_p50_us`"));
        assert!(md.contains("## Phase share deltas"));
        assert!(md.contains("wire"), "{md}");
        assert!(md.contains("## First divergent decision"));
        // Deterministic report bytes.
        let md2 = root_cause_report(
            "e12_p50_us",
            "e12_p50_us: 1.20x over baseline",
            &base,
            &fresh,
        );
        assert_eq!(md, md2);
    }

    #[test]
    fn seeds_bundle_parses_and_diffs_zero_against_rebuild() {
        // Keep this fast: a single-cell bundle exercising the exact
        // xtask path (write at salt 0, parse, diff against a rebuild).
        let cell = cell_named("e2").unwrap();
        let snap = (cell.build)(0).run_snapshot(cell.name);
        let bundle = obj()
            .field("artifact", "maddiff-seeds")
            .field("schema", "maddiff-seeds-v1")
            .field("label", "test")
            .field("cells", obj().field(cell.name, snap.to_json()).build())
            .build()
            .render();
        let parsed = parse_seeds(&bundle).expect("bundle parses");
        let back = parsed.get("e2").expect("cell present");
        let rebuilt = (cell.build)(0).run_snapshot(cell.name);
        assert!(madeleine::diff(back, &rebuilt).is_zero());
        assert!(parse_seeds("{}").is_err());
    }

    /// Nightly cross-seed diff smoke (slow; run with `--ignored`): for
    /// E7, E12, E14 and E15, same-salt runs snapshot byte-identically and
    /// self-diff to zero, and cross-salt diffs keep the delta-partition
    /// invariant over the aligned set.
    #[test]
    #[ignore = "nightly cross-seed diff smoke"]
    fn cross_seed_diff_smoke_e7_e12_e14_e15() {
        for name in ["e7", "e12", "e14", "e15"] {
            let cell = cell_named(name).expect("cell exists");
            let a1 = (cell.build)(0).run_snapshot(name);
            let a2 = (cell.build)(0).run_snapshot(name);
            assert_eq!(
                a1.to_json().render(),
                a2.to_json().render(),
                "{name}: same-salt snapshots must be byte-identical"
            );
            assert!(
                madeleine::diff(&a1, &a2).is_zero(),
                "{name}: self-diff must be zero"
            );
            let b = (cell.build)(1).run_snapshot(name);
            let d = madeleine::diff(&a1, &b);
            assert_eq!(d.partition_violations, 0, "{name}");
            for m in &d.aligned {
                assert_eq!(
                    m.phase_deltas.iter().sum::<i64>(),
                    m.delta_ns,
                    "{name}: {} delta partition",
                    m.key
                );
            }
            // Reports are deterministic even across structural diffs.
            assert_eq!(d.report(10), madeleine::diff(&a1, &b).report(10));
        }
    }
}
