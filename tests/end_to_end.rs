//! End-to-end integration: messages of every shape traverse the full stack
//! (collect → optimize → transfer → wire → reassembly → ordered delivery)
//! with byte-exact payloads, on both engines and several technologies.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::{MessageBuilder, PackMode};
use madware::pattern;
use simnet::Technology;

fn cluster(engine: EngineKind, tech: Technology) -> Cluster {
    Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![tech],
            engine,
            trace: None,
            engine_trace: None,
        },
        vec![],
    )
}

fn engines() -> Vec<EngineKind> {
    vec![EngineKind::optimizing(), EngineKind::legacy()]
}

#[test]
fn single_fragment_roundtrip_all_technologies() {
    for tech in [
        Technology::MyrinetMx,
        Technology::QuadricsElan,
        Technology::InfiniBand,
        Technology::TcpEthernet,
        Technology::SharedMem,
    ] {
        for engine in engines() {
            let mut c = cluster(engine, tech);
            let h = c.handle(0).clone();
            let dst = c.nodes[1];
            let src = c.nodes[0];
            let f = h.open_flow(dst, TrafficClass::DEFAULT);
            let body = pattern(f.0, 0, 0, 777);
            c.sim.inject(src, |ctx| {
                h.send(
                    ctx,
                    f,
                    MessageBuilder::new().pack_cheaper(&body).build_parts(),
                )
            });
            c.drain();
            let got = c.handle(1).take_delivered();
            assert_eq!(got.len(), 1, "{tech:?}");
            assert_eq!(got[0].contiguous(), body, "{tech:?}");
        }
    }
}

#[test]
fn many_fragment_message_reassembles_in_pack_order() {
    for engine in engines() {
        let mut c = cluster(engine, Technology::MyrinetMx);
        let h = c.handle(0).clone();
        let (src, dst) = (c.nodes[0], c.nodes[1]);
        let f = h.open_flow(dst, TrafficClass::DEFAULT);
        let mut b = MessageBuilder::new().pack_express(b"envelope");
        let mut sizes = Vec::new();
        for i in 0..12usize {
            let n = 10 + i * 53;
            sizes.push(n);
            b = b.pack(&pattern(f.0, 0, (i + 1) as u16, n), PackMode::Cheaper);
        }
        c.sim.inject(src, |ctx| h.send(ctx, f, b.build_parts()));
        c.drain();
        let got = c.handle(1).take_delivered();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].fragments.len(), 13);
        assert_eq!(&got[0].fragments[0].1[..], b"envelope");
        for (i, &n) in sizes.iter().enumerate() {
            assert_eq!(
                &got[0].fragments[i + 1].1[..],
                &pattern(f.0, 0, (i + 1) as u16, n)[..],
                "fragment {i}"
            );
        }
    }
}

#[test]
fn per_flow_delivery_order_is_submission_order() {
    let mut c = cluster(EngineKind::optimizing(), Technology::MyrinetMx);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let fa = h.open_flow(dst, TrafficClass::DEFAULT);
    let fb = h.open_flow(dst, TrafficClass::BULK);
    c.sim.inject(src, |ctx| {
        for i in 0..40u32 {
            // Alternate small and huge so completion order would differ
            // from submission order without the receiver's ordering.
            let size = if i % 2 == 0 { 8 } else { 20_000 };
            h.send(
                ctx,
                fa,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(fa.0, i, 0, size))
                    .build_parts(),
            );
            h.send(
                ctx,
                fb,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(fb.0, i, 0, 64))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let got = c.handle(1).take_delivered();
    assert_eq!(got.len(), 80);
    for flow in [fa, fb] {
        let seqs: Vec<u32> = got
            .iter()
            .filter(|m| m.flow == flow)
            .map(|m| m.id.seq.0)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "flow {flow} out of order");
    }
}

#[test]
fn bidirectional_traffic() {
    let mut c = cluster(EngineKind::optimizing(), Technology::QuadricsElan);
    let h0 = c.handle(0).clone();
    let h1 = c.handle(1).clone();
    let (n0, n1) = (c.nodes[0], c.nodes[1]);
    let f01 = h0.open_flow(n1, TrafficClass::DEFAULT);
    let f10 = h1.open_flow(n0, TrafficClass::DEFAULT);
    c.sim.inject(n0, |ctx| {
        for i in 0..30 {
            h0.send(
                ctx,
                f01,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f01.0, i, 0, 256))
                    .build_parts(),
            );
        }
    });
    c.sim.inject(n1, |ctx| {
        for i in 0..30 {
            h1.send(
                ctx,
                f10,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f10.0, i, 0, 256))
                    .build_parts(),
            );
        }
    });
    c.drain();
    assert_eq!(c.handle(0).delivered_count(), 30);
    assert_eq!(c.handle(1).delivered_count(), 30);
}

#[test]
fn three_node_all_to_all() {
    let spec = ClusterSpec {
        nodes: 3,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![]);
    let handles: Vec<_> = (0..3).map(|i| c.handle(i).clone()).collect();
    let nodes = c.nodes.clone();
    for i in 0..3usize {
        let flows: Vec<_> = (0..3)
            .filter(|&j| j != i)
            .map(|j| (j, handles[i].open_flow(nodes[j], TrafficClass::DEFAULT)))
            .collect();
        c.sim.inject(nodes[i], |ctx| {
            for (_, f) in &flows {
                for k in 0..10 {
                    handles[i].send(
                        ctx,
                        *f,
                        MessageBuilder::new()
                            .pack_cheaper(&pattern(f.0, k, 0, 128))
                            .build_parts(),
                    );
                }
            }
        });
    }
    c.drain();
    for i in 0..3 {
        assert_eq!(c.handle(i).delivered_count(), 20, "node {i}");
        assert_eq!(c.handle(i).receiver_stats().express_violations, 0);
    }
}

#[test]
fn large_message_chunked_through_rendezvous() {
    for engine in engines() {
        let mut c = cluster(engine, Technology::MyrinetMx);
        let h = c.handle(0).clone();
        let (src, dst) = (c.nodes[0], c.nodes[1]);
        let f = h.open_flow(dst, TrafficClass::BULK);
        let body = pattern(f.0, 0, 0, 1_000_000); // >> MTU and rndv threshold
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                f,
                MessageBuilder::new().pack_cheaper(&body).build_parts(),
            )
        });
        c.drain();
        let got = c.handle(1).take_delivered();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].contiguous(), body);
        let m = c.handle(0).metrics();
        assert_eq!(m.rndv_requests, 1);
        assert_eq!(m.rndv_grants, 1);
        assert!(m.packets_sent > 10, "must be chunked into many packets");
    }
}

#[test]
fn express_fragment_large_enough_for_rendezvous() {
    // An express *header* that itself needs the rendezvous protocol: the
    // body must wait for the negotiated header, and everything still
    // reassembles in order.
    for engine in engines() {
        let mut c = cluster(engine, Technology::MyrinetMx);
        let h = c.handle(0).clone();
        let (src, dst) = (c.nodes[0], c.nodes[1]);
        let f = h.open_flow(dst, TrafficClass::DEFAULT);
        let hdr = pattern(f.0, 0, 0, 100_000); // >> 32 KiB rndv threshold
        let body = pattern(f.0, 0, 1, 5_000);
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack(&hdr, PackMode::Express)
                    .pack(&body, PackMode::Cheaper)
                    .build_parts(),
            )
        });
        c.drain();
        let got = c.handle(1).take_delivered();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].fragments[0].1[..], &hdr[..]);
        assert_eq!(&got[0].fragments[1].1[..], &body[..]);
        assert_eq!(c.handle(0).metrics().rndv_requests, 1);
        assert_eq!(c.handle(1).receiver_stats().express_violations, 0);
    }
}

#[test]
fn interleaved_rndv_and_eager_traffic() {
    // Large rendezvous transfers and small eager messages share the rail;
    // both families complete, order per flow holds.
    let mut c = cluster(EngineKind::optimizing(), Technology::MyrinetMx);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let big = h.open_flow(dst, TrafficClass::BULK);
    let small = h.open_flow(dst, TrafficClass::CONTROL);
    c.sim.inject(src, |ctx| {
        for i in 0..5u32 {
            h.send(
                ctx,
                big,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(big.0, i, 0, 200_000))
                    .build_parts(),
            );
            for k in 0..10u32 {
                h.send(
                    ctx,
                    small,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(small.0, i * 10 + k, 0, 24))
                        .build_parts(),
                );
            }
        }
    });
    c.drain();
    let m = c.handle(0).metrics();
    assert_eq!(m.rndv_requests, 5);
    assert_eq!(m.rndv_grants, 5);
    let got = c.handle(1).take_delivered();
    assert_eq!(got.len(), 55);
    for msg in &got {
        let want = if msg.flow == big { 200_000 } else { 24 };
        assert_eq!(msg.total_len(), want, "{}", msg.id);
        assert_eq!(
            msg.contiguous(),
            pattern(msg.flow.0, msg.id.seq.0, 0, want as usize)
        );
    }
}
