//! Soak test: a larger, longer, messier run than any single experiment —
//! four nodes, two heterogeneous rails, every middleware class at once,
//! tens of thousands of events — checking the global invariants hold at
//! scale: exact delivery counts, byte-exact payloads, per-flow order, no
//! express violations, no driver rejections, engines fully drained.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::TrafficClass;
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

fn node_workload(me: usize, nodes: usize, msgs: u64) -> Vec<FlowSpec> {
    let mut specs = Vec::new();
    for dst in 0..nodes {
        if dst == me {
            continue;
        }
        // A small control stream, a mixed default stream and a bulk stream
        // toward every peer.
        specs.push(FlowSpec {
            dst: NodeId(dst as u32),
            class: TrafficClass::CONTROL,
            arrival: Arrival::Poisson(SimDuration::from_micros(40)),
            sizes: SizeDist::Fixed(16),
            express_header: 4,
            stop_after: Some(msgs),
            start_after: SimDuration::ZERO,
        });
        specs.push(FlowSpec {
            dst: NodeId(dst as u32),
            class: TrafficClass::DEFAULT,
            arrival: Arrival::Burst {
                count: 5,
                period: SimDuration::from_micros(60),
            },
            sizes: SizeDist::Bimodal {
                small: 64,
                large: 4096,
                p_large: 0.2,
            },
            express_header: 8,
            stop_after: Some(msgs),
            start_after: SimDuration::ZERO,
        });
        specs.push(FlowSpec {
            dst: NodeId(dst as u32),
            class: TrafficClass::BULK,
            arrival: Arrival::Periodic(SimDuration::from_micros(120)),
            sizes: SizeDist::Fixed(16 << 10),
            express_header: 0,
            stop_after: Some(msgs / 2),
            start_after: SimDuration::from_micros(300),
        });
    }
    specs
}

fn soak(engine: EngineKind, msgs: u64) {
    let nodes = 4usize;
    let spec = ClusterSpec {
        nodes,
        rails: vec![Technology::MyrinetMx, Technology::QuadricsElan],
        engine,
        trace: None,
        engine_trace: None,
    };
    let mut apps: Vec<Option<Box<dyn madeleine::AppDriver>>> = Vec::new();
    let mut stats = Vec::new();
    for me in 0..nodes {
        let (app, h) = TrafficApp::new("soak", node_workload(me, nodes, msgs), 1717, me as u64);
        apps.push(Some(Box::new(app)));
        stats.push(h);
    }
    let mut c = Cluster::build(&spec, apps);
    c.drain();

    let per_peer = msgs + msgs + msgs / 2; // control + default + bulk
    let expected_rx = per_peer * (nodes as u64 - 1);
    for (i, st) in stats.iter().enumerate() {
        let s = st.borrow();
        assert_eq!(s.sent, expected_rx, "node {i} sent");
        assert_eq!(s.received, expected_rx, "node {i} received");
        assert!(s.integrity.all_ok(), "node {i}: {:?}", s.integrity.failures);
        let m = c.handle(i).metrics();
        assert_eq!(m.driver_rejections, 0, "node {i}");
        assert_eq!(m.proto_errors, 0, "node {i}");
        assert_eq!(
            c.handle(i).receiver_stats().express_violations,
            0,
            "node {i}"
        );
        assert_eq!(c.handle(i).backlog_bytes(), 0, "node {i} drained");
        if let NodeHandle::Opt(h) = c.handle(i) {
            assert!(h.is_drained(), "node {i} engine drained");
        }
    }
    // Cross-check: simulator-level conservation — every transmitted packet
    // was received somewhere (lossless fabrics).
    let tx: u64 = (0..nodes)
        .flat_map(|n| c.nics[n].iter())
        .map(|&nic| c.sim.nic(nic).stats.tx_packets)
        .sum();
    let rx: u64 = (0..nodes)
        .flat_map(|n| c.nics[n].iter())
        .map(|&nic| c.sim.nic(nic).stats.rx_packets)
        .sum();
    assert_eq!(tx, rx, "packet conservation");
}

#[test]
fn soak_optimizing_engine() {
    soak(EngineKind::optimizing(), 60);
}

#[test]
fn soak_legacy_engine() {
    soak(EngineKind::legacy(), 60);
}

#[test]
fn soak_adaptive_policy_with_nagle() {
    let config = madeleine::EngineConfig {
        nagle_delay: SimDuration::from_micros(3),
        adaptive_epoch: SimDuration::from_micros(500),
        ..madeleine::EngineConfig::default()
    };
    soak(
        EngineKind::Optimizing {
            config,
            policy: madeleine::PolicyKind::Adaptive,
        },
        40,
    );
}
