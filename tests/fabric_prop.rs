//! Property tests for madnet's max-min fair-share allocator
//! (`simnet::max_min_rates`): over seeded random link graphs and flow
//! sets,
//!
//! * **capacity conservation** — per-link flow rates sum to at most the
//!   link's bandwidth (modulo the ≥ 1 B/s progress clamp),
//! * **work conservation** — every backlogged flow is pinned by a
//!   genuinely exhausted bottleneck link, never throttled while every
//!   link it crosses has slack,
//! * **order independence** — permuting the flow list permutes the
//!   rates and changes nothing else (the invariant that makes fabric
//!   recomputation on flow join/leave deterministic regardless of
//!   arrival order),
//! * **unconstrained flows** — a flow crossing no links is not rated.
//!
//! Conservation and work conservation are re-derived by
//! `madcheck::verify_rates`, the same independent checker the
//! `cargo xtask analyze` netcheck rule runs over real topologies; here
//! the graphs are adversarial rather than realistic (duplicate paths,
//! 1 B/s links, empty flows).

use proptest::prelude::*;
use simnet::{max_min_rates, SplitMix64};

/// Build a seeded random allocation problem: `links` capacities spanning
/// six orders of magnitude and `nflows` flows, each crossing a random
/// subset of links (occasionally none).
fn build_problem(seed: u64, links: usize, nflows: usize) -> (Vec<u64>, Vec<Vec<usize>>) {
    let mut rng = SplitMix64::new(seed);
    let capacities: Vec<u64> = (0..links)
        .map(|_| 10u64.pow(rng.next_below(7) as u32) * (1 + rng.next_below(9)))
        .collect();
    let flows: Vec<Vec<usize>> = (0..nflows)
        .map(|_| {
            let mut path: Vec<usize> = (0..links).filter(|_| rng.next_below(3) == 0).collect();
            if rng.next_below(6) == 0 {
                path.clear(); // linkless flow: unconstrained by design
            }
            path
        })
        .collect();
    (capacities, flows)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Conservation + work conservation on seeded random problems,
    /// re-derived by the independent madcheck verifier.
    #[test]
    fn fair_share_conserves_capacity_and_work(
        seed in any::<u64>(),
        links in 1usize..12,
        nflows in 1usize..20,
    ) {
        let (capacities, flows) = build_problem(seed, links, nflows);
        let rates = max_min_rates(&capacities, &flows);
        prop_assert_eq!(rates.len(), flows.len());
        let verdict = madcheck::verify_rates(&capacities, &flows, &rates);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
        for (f, path) in flows.iter().enumerate() {
            if path.is_empty() {
                prop_assert_eq!(rates[f], u64::MAX, "linkless flow {} must be unconstrained", f);
            } else {
                prop_assert!(rates[f] >= 1, "admitted flow {} must make progress", f);
            }
        }
    }

    /// Permuting the flow list permutes the rates the same way: the
    /// allocation is a function of the flow *set*, not of join order.
    #[test]
    fn fair_share_is_order_independent(
        seed in any::<u64>(),
        links in 1usize..12,
        nflows in 2usize..20,
        rot in 1usize..19,
    ) {
        let (capacities, flows) = build_problem(seed, links, nflows);
        let rates = max_min_rates(&capacities, &flows);
        // Rotation + reversal generate enough of the symmetric group to
        // catch any order dependence a single swap would miss.
        let rot = rot % nflows;
        let mut permuted: Vec<Vec<usize>> = flows.iter().cloned().collect();
        permuted.rotate_left(rot);
        permuted.reverse();
        let back = max_min_rates(&capacities, &permuted);
        for f in 0..nflows {
            // flows[f] moved to position (nflows - 1) - ((f + nflows - rot) % nflows).
            let p = nflows - 1 - ((f + nflows - rot) % nflows);
            prop_assert_eq!(
                rates[f], back[p],
                "flow {}'s rate changed when the list was permuted", f
            );
        }
    }
}
