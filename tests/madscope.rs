//! madscope integration tests: the quantile bracket property, the
//! Prometheus export's golden shape, byte-identical deterministic
//! exports, and sampler zero-interference (enabling the sampler must not
//! change a single engine metric).

use madeleine::harness::{Cluster, ClusterSpec};
use madeleine::{flatten_registry, LogHistogram, MessageBuilder, TrafficClass};
use proptest::prelude::*;
use simnet::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// For any sample set and any q, the histogram's bucket-bound
    /// quantile must bracket the exact rank statistic: with
    /// `v = sorted[ceil(q*n).max(1) - 1]`, the report satisfies
    /// `v <= quantile(q) < 2 * max(v, 1)` — the one-power-of-two
    /// guarantee `core::hist` documents.
    #[test]
    fn quantiles_bracket_exact_percentiles(
        samples in prop::collection::vec(any::<u64>(), 1..200),
        q_milli in 0u64..=1000,
    ) {
        let q = q_milli as f64 / 1000.0;
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        let got = h.quantile(q);
        prop_assert!(
            u128::from(got) >= u128::from(exact),
            "quantile({q}) = {got} below exact rank statistic {exact}"
        );
        prop_assert!(
            u128::from(got) < 2 * u128::from(exact.max(1)),
            "quantile({q}) = {got} more than 2x the exact rank statistic {exact}"
        );
    }

    /// Merging histograms must agree with recording the union.
    #[test]
    fn merge_equals_union(
        a in prop::collection::vec(any::<u64>(), 0..60),
        b in prop::collection::vec(any::<u64>(), 0..60),
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut hu = LogHistogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.buckets(), hu.buckets());
        prop_assert_eq!(ha.count(), hu.count());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }
}

/// A small deterministic two-flow workload on an MX pair.
fn run_workload(sampler: bool) -> Cluster {
    let mut c = Cluster::build(&ClusterSpec::mx_pair(), vec![]);
    if sampler {
        c.enable_sampler(SimDuration::from_micros(5));
    }
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let f1 = h.open_flow(dst, TrafficClass::DEFAULT);
    let f2 = h.open_flow(dst, TrafficClass::BULK);
    for i in 0..16u8 {
        let flow = if i % 2 == 0 { f1 } else { f2 };
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new()
                    .pack_express(&[i; 8])
                    .pack_cheaper(&[i; 512])
                    .build_parts(),
            )
        });
    }
    c.drain();
    c
}

/// Structural golden shape of the Prometheus text export: alternating
/// HELP/TYPE headers and `family{labels} value` samples, every family
/// typed as gauge, unique sample keys, and one rendered sample per
/// flattened registry leaf.
#[test]
fn prometheus_export_golden_shape() {
    let c = run_workload(true);
    let reg = c.metrics_registry();
    let text = c.prometheus_text();

    let mut sample_keys = Vec::new();
    let mut families_typed = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE family kind");
            assert_eq!(kind, "gauge", "{line}");
            families_typed.push(family.to_string());
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        // Sample line: family{label="v",...} value
        let (key, value) = line.rsplit_once(' ').expect("sample line");
        let (family, labels) = key.split_once('{').expect("labelled sample");
        assert!(labels.ends_with('}'), "{line}");
        assert!(labels.contains("section=\""), "{line}");
        assert!(
            family
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'),
            "family must be a sanitized identifier: {line}"
        );
        assert!(family.starts_with("madeleine_"), "{line}");
        assert!(
            families_typed.iter().any(|f| f == family),
            "sample before its TYPE header: {line}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value must be numeric: {line}"
        );
        sample_keys.push(key.to_string());
    }

    let total = sample_keys.len();
    sample_keys.sort();
    sample_keys.dedup();
    assert_eq!(sample_keys.len(), total, "duplicate sample keys");
    assert_eq!(
        total,
        flatten_registry(&reg).len(),
        "one rendered sample per registry leaf"
    );

    // Spot checks: engine counters, per-class histograms, the sampler
    // section and per-vchan arrays all surface.
    assert!(
        text.contains("madeleine_delivered_msgs{section=\"node1/engine\"} 16"),
        "{text}"
    );
    assert!(text.contains("section=\"node0/sampler\""), "{text}");
    assert!(
        text.contains("madeleine_latency_by_class_us_bulk_count"),
        "{text}"
    );
    assert!(text.contains("index="), "array leaves carry an index label");
}

/// Same seed, same bytes: the sampler CSV, the metrics registry and the
/// Prometheus export must all be byte-identical across repeat runs.
#[test]
fn same_seed_exports_are_byte_identical() {
    let a = run_workload(true);
    let b = run_workload(true);
    let csv_a = a.sampler_csv(0).expect("sampler enabled");
    let csv_b = b.sampler_csv(0).expect("sampler enabled");
    assert!(csv_a.lines().count() > 1, "CSV has data rows:\n{csv_a}");
    assert_eq!(csv_a, csv_b);
    assert_eq!(a.metrics_registry().render(), b.metrics_registry().render());
    assert_eq!(a.prometheus_text(), b.prometheus_text());
}

/// Enabling the sampler must not change any engine or receiver metric:
/// its ticks are read-only observations, so the metrics sections of the
/// registry (everything except the sampler section itself) are
/// byte-identical with and without it.
#[test]
fn sampler_does_not_perturb_the_run() {
    let with = run_workload(true);
    let without = run_workload(false);
    for node in 0..2 {
        assert_eq!(
            with.handle(node).metrics().to_json().render(),
            without.handle(node).metrics().to_json().render(),
            "node {node} engine metrics must be sampler-invariant"
        );
    }
    assert_eq!(
        with.handle(1).metrics().delivered_msgs,
        16,
        "workload delivered"
    );
}
