//! Integration: eager/rendezvous protocol selection and PIO/DMA mode
//! choice, driven by driver capabilities (§1).

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madeleine::EngineConfig;
use madeleine::PolicyKind;
use madware::pattern;
use nicdrv::calib;
use simnet::Technology;

fn one_shot(engine: EngineKind, tech: Technology, size: usize) -> (Cluster, u64) {
    let mut c = Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![tech],
            engine,
            trace: None,
            engine_trace: None,
        },
        vec![],
    );
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    let body = pattern(f.0, 0, 0, size);
    c.sim.inject(src, |ctx| {
        h.send(
            ctx,
            f,
            MessageBuilder::new().pack_cheaper(&body).build_parts(),
        )
    });
    let end = c.drain();
    let got = c.handle(1).take_delivered();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].contiguous(), body);
    (c, end.as_nanos())
}

#[test]
fn rendezvous_triggers_exactly_at_driver_hint() {
    let hint = calib::capabilities(Technology::MyrinetMx).rndv_threshold_hint as usize;
    let (below, _) = one_shot(EngineKind::optimizing(), Technology::MyrinetMx, hint - 1);
    assert_eq!(below.handle(0).metrics().rndv_requests, 0);
    let (at, _) = one_shot(EngineKind::optimizing(), Technology::MyrinetMx, hint);
    assert_eq!(at.handle(0).metrics().rndv_requests, 1);
    assert_eq!(at.handle(0).metrics().rndv_grants, 1);
}

#[test]
fn config_override_beats_driver_hint() {
    let config = EngineConfig {
        rndv_threshold: Some(1024),
        ..EngineConfig::default()
    };
    let engine = EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    };
    let (c, _) = one_shot(engine, Technology::MyrinetMx, 2048);
    assert_eq!(c.handle(0).metrics().rndv_requests, 1);
}

#[test]
fn rendezvous_never_engages_on_tcp() {
    // TCP's hint is "never" (u64::MAX): eager all the way.
    let (c, _) = one_shot(EngineKind::optimizing(), Technology::TcpEthernet, 60_000);
    assert_eq!(c.handle(0).metrics().rndv_requests, 0);
}

#[test]
fn eager_latency_beats_rndv_for_medium_messages() {
    // Force rendezvous for a size where eager is better: the handshake
    // round trip must show up as extra latency.
    let eager_cfg = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    let rndv_cfg = EngineConfig {
        rndv_threshold: Some(1),
        ..EngineConfig::default()
    };
    let (_, t_eager) = one_shot(
        EngineKind::Optimizing {
            config: eager_cfg,
            policy: PolicyKind::Pooled,
        },
        Technology::MyrinetMx,
        4096,
    );
    let (_, t_rndv) = one_shot(
        EngineKind::Optimizing {
            config: rndv_cfg,
            policy: PolicyKind::Pooled,
        },
        Technology::MyrinetMx,
        4096,
    );
    assert!(
        t_rndv > t_eager + 3_000,
        "rndv {t_rndv}ns should pay a handshake over eager {t_eager}ns"
    );
}

#[test]
fn driver_mode_selection_matches_cost_model() {
    use nicdrv::Driver;
    for tech in [
        Technology::MyrinetMx,
        Technology::QuadricsElan,
        Technology::InfiniBand,
    ] {
        let d = calib::driver(tech, simnet::NicId(0));
        let caps = calib::capabilities(tech);
        // Tiny messages go PIO; messages beyond the PIO cap must go DMA.
        assert_eq!(d.select_mode(8, 1), simnet::TxMode::Pio, "{tech:?}");
        assert_eq!(
            d.select_mode(caps.pio_max_bytes + 1, 1),
            simnet::TxMode::Dma,
            "{tech:?}"
        );
    }
}

#[test]
fn mtu_chunking_is_transparent() {
    // A message larger than the rail MTU but below the rendezvous
    // threshold must be chunked eagerly and reassembled.
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    let engine = EngineKind::Optimizing {
        config,
        policy: PolicyKind::Pooled,
    };
    let (c, _) = one_shot(engine, Technology::MyrinetMx, 100_000); // MTU is 32 KiB
    let m = c.handle(0).metrics();
    assert!(
        m.packets_sent >= 4,
        "chunked into {} packets",
        m.packets_sent
    );
    assert_eq!(m.rndv_requests, 0);
}
