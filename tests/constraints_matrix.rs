//! Regression matrix: one (or more) tests per `PlanViolation` variant, so
//! every rejection path of `validate_plan` stays pinned. The strategy
//! database is checked against these same rules by `cargo xtask analyze`;
//! this file guards the checker itself.

use madeleine::collect::CollectLayer;
use madeleine::constraints::{validate_plan, PlanViolation};
use madeleine::ids::{ChannelId, FlowId, TrafficClass};
use madeleine::message::{Fragment, MessageBuilder, PackMode};
use madeleine::plan::{PlanBody, PlannedChunk, TransferPlan};
use nicdrv::DriverCapabilities;
use simnet::{NodeId, SimTime};

const MTU: u64 = 1 << 20;
const NO_RNDV: u64 = 1 << 30;

fn caps() -> DriverCapabilities {
    nicdrv::calib::synthetic_capabilities()
}

fn parts(sizes: &[(usize, PackMode)]) -> Vec<Fragment> {
    let mut b = MessageBuilder::new();
    for &(n, mode) in sizes {
        b = b.pack(&vec![7; n], mode);
    }
    b.build_parts()
}

/// One flow to node 1 holding one message with the given fragments.
fn setup(sizes: &[(usize, PackMode)]) -> (CollectLayer, FlowId) {
    let mut c = CollectLayer::new();
    let f = c.open_flow(NodeId(1), TrafficClass::DEFAULT);
    c.submit(f, parts(sizes), SimTime::ZERO, NO_RNDV);
    (c, f)
}

fn data_plan(chunks: Vec<PlannedChunk>) -> TransferPlan {
    TransferPlan {
        channel: ChannelId(0),
        dst: NodeId(1),
        body: PlanBody::Data {
            chunks,
            linearize: false,
        },
        strategy: "matrix-test",
    }
}

fn chunk(flow: FlowId, frag: u16, offset: u32, len: u32) -> PlannedChunk {
    PlannedChunk {
        flow,
        seq: 0,
        frag,
        offset,
        len,
    }
}

#[test]
fn empty_plan() {
    let (c, _) = setup(&[(64, PackMode::Cheaper)]);
    assert_eq!(
        validate_plan(&data_plan(vec![]), &c, &caps(), MTU),
        Err(PlanViolation::EmptyPlan)
    );
}

#[test]
fn zero_length_chunk() {
    let (c, f) = setup(&[(64, PackMode::Cheaper)]);
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 0, 0, 0)]), &c, &caps(), MTU),
        Err(PlanViolation::ZeroLengthChunk)
    );
}

#[test]
fn unknown_chunk_variants() {
    let (c, f) = setup(&[(64, PackMode::Cheaper)]);
    // Unknown flow.
    let bogus_flow = FlowId(99);
    assert_eq!(
        validate_plan(
            &data_plan(vec![chunk(bogus_flow, 0, 0, 8)]),
            &c,
            &caps(),
            MTU
        ),
        Err(PlanViolation::UnknownChunk)
    );
    // Known flow, unknown sequence number.
    let p = data_plan(vec![PlannedChunk {
        flow: f,
        seq: 42,
        frag: 0,
        offset: 0,
        len: 8,
    }]);
    assert_eq!(
        validate_plan(&p, &c, &caps(), MTU),
        Err(PlanViolation::UnknownChunk)
    );
    // Known message, fragment index out of range.
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 5, 0, 8)]), &c, &caps(), MTU),
        Err(PlanViolation::UnknownChunk)
    );
    // Rendezvous request for an unknown message.
    let p = TransferPlan {
        channel: ChannelId(0),
        dst: NodeId(1),
        body: PlanBody::RndvRequest {
            flow: f,
            seq: 9,
            frag: 0,
        },
        strategy: "matrix-test",
    };
    assert_eq!(
        validate_plan(&p, &c, &caps(), MTU),
        Err(PlanViolation::UnknownChunk)
    );
}

#[test]
fn mixed_destinations() {
    let mut c = CollectLayer::new();
    let f1 = c.open_flow(NodeId(1), TrafficClass::DEFAULT);
    let f2 = c.open_flow(NodeId(2), TrafficClass::DEFAULT);
    c.submit(
        f1,
        parts(&[(64, PackMode::Cheaper)]),
        SimTime::ZERO,
        NO_RNDV,
    );
    c.submit(
        f2,
        parts(&[(64, PackMode::Cheaper)]),
        SimTime::ZERO,
        NO_RNDV,
    );
    let p = data_plan(vec![chunk(f1, 0, 0, 64), chunk(f2, 0, 0, 64)]);
    assert_eq!(
        validate_plan(&p, &c, &caps(), MTU),
        Err(PlanViolation::MixedDestinations)
    );
}

#[test]
fn wrong_rail() {
    // A message whose express fragment is mid-transfer is pinned to the
    // rail it started on; scheduling the rest elsewhere must be rejected.
    let (mut c, f) = setup(&[(64, PackMode::Express), (64, PackMode::Cheaper)]);
    c.commit_chunk(&chunk(f, 0, 0, 32), ChannelId(0));
    let p = TransferPlan {
        channel: ChannelId(1),
        dst: NodeId(1),
        body: PlanBody::Data {
            chunks: vec![chunk(f, 0, 32, 32)],
            linearize: false,
        },
        strategy: "matrix-test",
    };
    assert_eq!(
        validate_plan(&p, &c, &caps(), MTU),
        Err(PlanViolation::WrongRail)
    );
    // Same chunk on the pinned rail is fine.
    let p = data_plan(vec![chunk(f, 0, 32, 32)]);
    assert_eq!(validate_plan(&p, &c, &caps(), MTU), Ok(()));
}

#[test]
fn non_contiguous() {
    let (c, f) = setup(&[(100, PackMode::Cheaper)]);
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 0, 10, 10)]), &c, &caps(), MTU),
        Err(PlanViolation::NonContiguous {
            flow: f,
            frag: 0,
            expected: 0,
            got: 10
        })
    );
}

#[test]
fn overrun() {
    let (c, f) = setup(&[(100, PackMode::Cheaper)]);
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 0, 0, 101)]), &c, &caps(), MTU),
        Err(PlanViolation::Overrun)
    );
}

#[test]
fn express_order() {
    let (c, f) = setup(&[(16, PackMode::Express), (64, PackMode::Cheaper)]);
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 1, 0, 64)]), &c, &caps(), MTU),
        Err(PlanViolation::ExpressOrder {
            flow: f,
            frag: 1,
            open_express: 0
        })
    );
    // Covering the express header earlier in the same packet unlocks it.
    let p = data_plan(vec![chunk(f, 0, 0, 16), chunk(f, 1, 0, 64)]);
    assert_eq!(validate_plan(&p, &c, &caps(), MTU), Ok(()));
}

#[test]
fn rndv_blocked() {
    // Submission threshold of 32 bytes gates the 64-byte fragment.
    let mut c = CollectLayer::new();
    let f = c.open_flow(NodeId(1), TrafficClass::DEFAULT);
    c.submit(f, parts(&[(64, PackMode::Cheaper)]), SimTime::ZERO, 32);
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 0, 0, 64)]), &c, &caps(), MTU),
        Err(PlanViolation::RndvBlocked)
    );
    // Request + grant clears the gate.
    c.mark_rndv_requested(f, 0, 0);
    c.grant_rndv(f, 0, 0);
    assert_eq!(
        validate_plan(&data_plan(vec![chunk(f, 0, 0, 64)]), &c, &caps(), MTU),
        Ok(())
    );
}

#[test]
fn oversize() {
    let (c, f) = setup(&[(2000, PackMode::Cheaper)]);
    let p = data_plan(vec![chunk(f, 0, 0, 2000)]);
    match validate_plan(&p, &c, &caps(), 1000) {
        Err(PlanViolation::OverSize { bytes, limit }) => {
            assert!(bytes > limit);
            assert_eq!(limit, 1000);
        }
        other => panic!("expected OverSize, got {other:?}"),
    }
    // The driver's own packet cap binds even when the wire MTU is huge.
    let mut tight = caps();
    tight.max_packet_bytes = 512;
    assert!(matches!(
        validate_plan(&p, &c, &tight, MTU),
        Err(PlanViolation::OverSize { limit: 512, .. })
    ));
}

#[test]
fn gather_too_wide() {
    // 12 single-fragment flows, each larger than PIO when combined, and
    // more segments than the synthetic gather limit (8).
    let mut c = CollectLayer::new();
    let mut chunks = Vec::new();
    for _ in 0..12 {
        let f = c.open_flow(NodeId(1), TrafficClass::DEFAULT);
        c.submit(
            f,
            parts(&[(1024, PackMode::Cheaper)]),
            SimTime::ZERO,
            NO_RNDV,
        );
        chunks.push(chunk(f, 0, 0, 1024));
    }
    let p = data_plan(chunks.clone());
    match validate_plan(&p, &c, &caps(), MTU) {
        Err(PlanViolation::GatherTooWide { segs, max }) => {
            assert_eq!(segs, 13); // 12 chunks + header block
            assert_eq!(max, 8);
        }
        other => panic!("expected GatherTooWide, got {other:?}"),
    }
    // Linearizing (copy into one staging buffer) escapes the gather limit.
    let p = TransferPlan {
        channel: ChannelId(0),
        dst: NodeId(1),
        body: PlanBody::Data {
            chunks,
            linearize: true,
        },
        strategy: "matrix-test",
    };
    assert_eq!(validate_plan(&p, &c, &caps(), MTU), Ok(()));
}

#[test]
fn rndv_not_needed() {
    let (c, f) = setup(&[(64, PackMode::Cheaper)]);
    let p = TransferPlan {
        channel: ChannelId(0),
        dst: NodeId(1),
        body: PlanBody::RndvRequest {
            flow: f,
            seq: 0,
            frag: 0,
        },
        strategy: "matrix-test",
    };
    assert_eq!(
        validate_plan(&p, &c, &caps(), MTU),
        Err(PlanViolation::RndvNotNeeded)
    );
}

#[test]
fn rndv_request_accepted_when_needed() {
    let mut c = CollectLayer::new();
    let f = c.open_flow(NodeId(1), TrafficClass::DEFAULT);
    c.submit(f, parts(&[(64, PackMode::Cheaper)]), SimTime::ZERO, 32);
    let p = TransferPlan {
        channel: ChannelId(0),
        dst: NodeId(1),
        body: PlanBody::RndvRequest {
            flow: f,
            seq: 0,
            frag: 0,
        },
        strategy: "matrix-test",
    };
    assert_eq!(validate_plan(&p, &c, &caps(), MTU), Ok(()));
    // Once requested, a second request is redundant.
    c.mark_rndv_requested(f, 0, 0);
    assert_eq!(
        validate_plan(&p, &c, &caps(), MTU),
        Err(PlanViolation::RndvNotNeeded)
    );
}

#[test]
fn well_formed_plans_pass() {
    let (c, f) = setup(&[(100, PackMode::Cheaper), (50, PackMode::Cheaper)]);
    // Split chunks of one fragment plus a second fragment, in order.
    let p = data_plan(vec![
        chunk(f, 0, 0, 40),
        chunk(f, 0, 40, 60),
        chunk(f, 1, 0, 50),
    ]);
    assert_eq!(validate_plan(&p, &c, &caps(), MTU), Ok(()));
}
