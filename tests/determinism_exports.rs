//! Same seed, same bytes — for every export surface the engine owns.
//!
//! The madlint sweep converted the engine's hash-ordered state
//! (`EngineCore::inflight`, `Receiver::flows`) to ordered containers and
//! put every float comparison on `f64::total_cmp`. These tests pin the
//! behavior that conversion buys: two *independent* clusters built from
//! the same spec must produce byte-identical Chrome traces, metric
//! registries, Prometheus documents and debug reports. (madscope.rs
//! covers the sampler CSV; this file covers the trace/report surfaces
//! and a multi-flow workload that actually populates the converted
//! containers.)

use madeleine::coll::{CollApp, CollConfig, CollHub, CollOp};
use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::{EngineConfig, MessageBuilder, PolicyKind, ReliabilityMode, TrafficClass};
use proptest::prelude::*;
use simnet::{FaultPlan, SimDuration, SimTime, Technology};

/// A traced two-node cluster pushing three flows of mixed classes and
/// sizes — enough concurrency that `inflight` and `flows` hold several
/// entries at once, so iteration order would leak if either were hashed.
fn traced_workload() -> Cluster {
    let mut c = Cluster::build(&ClusterSpec::mx_pair().with_tracing(8192), vec![]);
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let flows = [
        h.open_flow(dst, TrafficClass::DEFAULT),
        h.open_flow(dst, TrafficClass::PUT_GET),
        h.open_flow(dst, TrafficClass::BULK),
    ];
    for round in 0..6u8 {
        for (fi, &flow) in flows.iter().enumerate() {
            let len = 40 + 64 * fi + 8 * round as usize;
            let h = h.clone();
            c.sim.inject(src, move |ctx| {
                h.send(
                    ctx,
                    flow,
                    MessageBuilder::new()
                        .pack_cheaper(&vec![round ^ fi as u8; len])
                        .build_parts(),
                )
            });
        }
        c.run_for(SimDuration::from_micros(30));
    }
    c.drain();
    c
}

/// The Chrome trace merges the simulator trace with every node's engine
/// sink — the widest export surface. Two independent same-spec runs must
/// agree byte for byte.
#[test]
fn chrome_trace_is_byte_identical_across_runs() {
    let a = traced_workload().export_chrome_trace();
    let b = traced_workload().export_chrome_trace();
    assert!(a.events > 0, "workload produced trace events");
    assert_eq!(a.events, b.events);
    assert_eq!(
        a.json, b.json,
        "Chrome export must not depend on run identity"
    );
}

/// Metrics registry and Prometheus renderings agree across runs.
#[test]
fn metric_exports_are_byte_identical_across_runs() {
    let a = traced_workload();
    let b = traced_workload();
    let reg_a = a.metrics_registry().render();
    let reg_b = b.metrics_registry().render();
    assert!(!reg_a.is_empty());
    assert_eq!(reg_a, reg_b);
    assert_eq!(a.prometheus_text(), b.prometheus_text());
}

/// The per-node debug report walks engine state directly (backlog,
/// in-flight cookies, rail health) — exactly where a hashed container
/// would leak order. Same seed, same report.
#[test]
fn debug_reports_are_byte_identical_across_runs() {
    let a = traced_workload();
    let b = traced_workload();
    for node in 0..2 {
        let ra = a.handle(node).opt().expect("optimizing").debug_report();
        let rb = b.handle(node).opt().expect("optimizing").debug_report();
        assert!(!ra.is_empty());
        assert_eq!(ra, rb, "node {node} debug report must be run-invariant");
    }
    // The workload really delivered across all three flows.
    let m = a.handle(1).metrics();
    assert_eq!(m.delivered_msgs, 18, "6 rounds x 3 flows");
}

/// The madprof surfaces ride the same ordered state: two independent
/// same-spec runs must produce byte-identical attribution CSVs, folded
/// stacks and profile documents.
#[test]
fn profile_exports_are_byte_identical_across_runs() {
    let a = traced_workload().profile();
    let b = traced_workload().profile();
    assert_eq!(a.flows.len(), 18, "every delivery attributed");
    assert_eq!(a.partition_violations, 0);
    assert_eq!(a.attribution_csv(), b.attribution_csv());
    assert_eq!(a.folded_stacks(), b.folded_stacks());
    assert_eq!(a.to_json().render(), b.to_json().render());
}

/// A traced 16-node cluster on a k=4 fat-tree: cross-pod flows take
/// multi-hop ECMP routes through shared core links, so fabric
/// contention, switch queues and ECN marks all participate in the trace.
fn fat_tree_workload() -> Cluster {
    let profile = nicdrv::calib::params(Technology::MyrinetMx).link_profile();
    let spec = ClusterSpec {
        nodes: 16,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config: EngineConfig {
                reliability: ReliabilityMode::Recover,
                ..EngineConfig::default()
            },
            policy: PolicyKind::Pooled,
        },
        trace: Some(1 << 14),
        engine_trace: Some(1 << 14),
    };
    let mut c = Cluster::build_with_topologies(
        &spec,
        vec![Some(simnet::Topology::fat_tree(4, profile))],
        vec![],
    );
    // Cross-pod pairs (pods are groups of 4 hosts on a k=4 fat-tree),
    // plus one intra-pod pair that shares an edge switch.
    for (round, &(src_i, dst_i)) in [(0usize, 15usize), (3, 12), (5, 10), (1, 2)]
        .iter()
        .enumerate()
        .cycle()
        .take(12)
    {
        let src = c.nodes[src_i];
        let dst = c.nodes[dst_i];
        let h = c.handles[src_i].clone();
        let flow = h.open_flow(dst, TrafficClass::DEFAULT);
        c.sim.inject(src, move |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new()
                    .pack_cheaper(&vec![round as u8; 1024 + 512 * round])
                    .build_parts(),
            )
        });
        c.run_for(SimDuration::from_micros(5));
    }
    c.drain();
    c
}

/// The determinism contract extends to switched fabrics: two independent
/// same-spec runs over a k=4 fat-tree — ECMP routing, fair-share
/// contention, queue marks and all — produce byte-identical traces,
/// registries and reports, with the topology metadata included.
#[test]
fn fat_tree_exports_are_byte_identical_across_runs() {
    let a = fat_tree_workload();
    let b = fat_tree_workload();
    let ea = a.export_chrome_trace();
    let eb = b.export_chrome_trace();
    assert!(ea.events > 0, "fabric workload produced trace events");
    assert_eq!(
        ea.json, eb.json,
        "fat-tree Chrome export must be run-invariant"
    );
    assert!(
        ea.json.contains("fat-tree"),
        "export carries the topology metadata"
    );
    assert_eq!(a.prometheus_text(), b.prometheus_text());
    assert_eq!(a.metrics_registry().render(), b.metrics_registry().render());
    // The workload really crossed the fabric.
    let delivered: u64 = (0..16).map(|n| a.handle(n).metrics().delivered_msgs).sum();
    assert_eq!(delivered, 12, "every cross-fabric message delivered");
}

/// Messages pushed through each faulted madrel cell below.
const FAULTED_MSGS: u32 = 24;

/// A drained two-node madrel `Recover` cell under seeded
/// loss + duplication + reordering — the corpus shape shared by the
/// madprof partition proptest and the maddiff comparison proptests.
/// `nagle_us` > 0 arms a Nagle delay (a pure-config perturbation that
/// changes latencies without changing message identity).
fn faulted_cell_nagle(seed: u64, loss_pm: u32, dup_pm: u32, nagle_us: u64) -> Cluster {
    let mut c = Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx],
            engine: EngineKind::Optimizing {
                config: EngineConfig {
                    reliability: ReliabilityMode::Recover,
                    nagle_delay: SimDuration::from_micros(nagle_us),
                    ..EngineConfig::default()
                },
                policy: PolicyKind::Pooled,
            },
            trace: Some(1 << 14),
            engine_trace: Some(1 << 14),
        },
        vec![],
    );
    c.set_fault_plan(
        0,
        FaultPlan::new(seed)
            .with_loss(f64::from(loss_pm) / 1000.0)
            .with_dup(f64::from(dup_pm) / 1000.0)
            .with_reorder(0.15, SimDuration::from_micros(2)),
    );
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    c.sim.inject(src, |ctx| {
        for i in 0..FAULTED_MSGS {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&vec![i as u8; 200])
                    .build_parts(),
            );
        }
    });
    c.drain();
    c
}

fn faulted_cell(seed: u64, loss_pm: u32, dup_pm: u32) -> Cluster {
    faulted_cell_nagle(seed, loss_pm, dup_pm, 0)
}

/// Comparing two runs is itself an export surface: building both sides
/// fresh and diffing them twice must reproduce the human report and the
/// JSON byte-for-byte, even when the diff is structurally non-trivial
/// (a Nagle-delay perturbation → real latency deltas).
#[test]
fn diff_report_is_byte_identical_across_runs() {
    let render = || {
        let a = faulted_cell_nagle(11, 100, 50, 0).run_snapshot("base");
        let b = faulted_cell_nagle(11, 100, 50, 2).run_snapshot("fresh");
        let d = madeleine::diff(&a, &b);
        (d.report(8), d.to_json().render(), d.is_zero())
    };
    let (report1, json1, zero1) = render();
    let (report2, json2, _) = render();
    assert!(!zero1, "the Nagle perturbation must produce real deltas");
    assert_eq!(report1, report2, "diff report must be run-invariant");
    assert_eq!(json1, json2, "diff JSON must be run-invariant");
}

/// Ranks in the faulted collective cell below.
const COLL_MEMBERS: u32 = 6;
/// Allreduce iterations per run.
const COLL_ITERS: u32 = 3;

/// A drained 6-member madcoll allreduce over **two** MX rails with
/// madrel `Recover`, where rail 0 carries seeded loss + duplication +
/// reordering and then dies outright mid-run — the engine must detect
/// the death via exhausted retries and fail the round-gated collective
/// over to the clean second rail.
fn faulted_allreduce(seed: u64, loss_pm: u32, dup_pm: u32) -> (Cluster, CollHub) {
    let cfg = CollConfig::for_tech(Technology::MyrinetMx);
    let (apps, hub) = CollApp::ranks(CollOp::Allreduce, 256, COLL_MEMBERS, COLL_ITERS, &cfg);
    let spec = ClusterSpec {
        nodes: COLL_MEMBERS as usize,
        rails: vec![Technology::MyrinetMx; 2],
        engine: EngineKind::Optimizing {
            config: EngineConfig {
                reliability: ReliabilityMode::Recover,
                ..EngineConfig::default()
            },
            policy: PolicyKind::Pooled,
        },
        trace: Some(1 << 15),
        engine_trace: Some(1 << 15),
    };
    let mut c = Cluster::build(&spec, apps);
    c.set_fault_plan(
        0,
        FaultPlan::new(seed)
            .with_loss(f64::from(loss_pm) / 1000.0)
            .with_dup(f64::from(dup_pm) / 1000.0)
            .with_reorder(0.10, SimDuration::from_micros(2))
            .with_death(SimTime::from_nanos(30_000)),
    );
    c.drain();
    (c, hub)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// madcoll under the full madrel gauntlet: every allreduce completes
    /// with the identical (closed-form-verified) reduced value at every
    /// member despite loss + duplication + reordering + rail death, and
    /// two independent same-seed runs export byte-identical Chrome
    /// traces and metric registries — recovery and failover included.
    #[test]
    fn faulted_allreduce_completes_and_exports_identically(
        seed in any::<u64>(),
        loss_pm in 0u32..100, // per-mille; the shim has no f64 ranges
        dup_pm in 0u32..100,
    ) {
        let (a, hub) = faulted_allreduce(seed, loss_pm, dup_pm);
        {
            let stats = hub.borrow();
            prop_assert_eq!(stats.started, u64::from(COLL_ITERS));
            prop_assert_eq!(
                stats.completed, stats.started,
                "every collective must complete despite the dead rail"
            );
            prop_assert_eq!(
                stats.member_completions,
                u64::from(COLL_MEMBERS * COLL_ITERS),
                "every member must see every completion"
            );
            prop_assert_eq!(
                stats.wrong_results, 0,
                "reduced values must be identical (and right) everywhere"
            );
        }
        // The dead rail was really noticed by at least one engine.
        let rails_dead: u64 = (0..COLL_MEMBERS as usize)
            .map(|n| a.handle(n).metrics().rails_dead)
            .sum();
        prop_assert!(rails_dead >= 1, "rail death must be detected");
        // Same seed, same bytes — with retransmission, dedup and
        // failover traffic in the trace.
        let (b, _hub_b) = faulted_allreduce(seed, loss_pm, dup_pm);
        let ea = a.export_chrome_trace();
        let eb = b.export_chrome_trace();
        prop_assert!(ea.events > 0, "collective produced trace events");
        prop_assert_eq!(ea.json, eb.json, "faulted coll trace must be run-invariant");
        prop_assert_eq!(a.metrics_registry().render(), b.metrics_registry().render());
        prop_assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    /// The attribution exactness invariant survives faults: under seeded
    /// loss + duplication + reordering with madrel `Recover`, every
    /// delivered message's phase durations still partition its lifetime
    /// exactly — retransmission time is attributed, never lost.
    #[test]
    fn profile_partition_holds_under_faults(
        seed in any::<u64>(),
        loss_pm in 0u32..200, // per-mille; the shim has no f64 ranges
        dup_pm in 0u32..200,
    ) {
        const MSGS: u32 = FAULTED_MSGS;
        let c = faulted_cell(seed, loss_pm, dup_pm);
        let prof = c.profile();
        prop_assert_eq!(prof.flows.len(), MSGS as usize, "every delivery attributed");
        prop_assert_eq!(prof.partition_violations, 0);
        prop_assert!(!prof.truncated(), "ring must hold the whole run");
        for span in &prof.flows {
            let lifetime = span.delivered_ns - span.submit_ns;
            let total: u64 = span.phases.iter().sum();
            prop_assert_eq!(
                total, lifetime,
                "{} phases must partition its lifetime", span.key
            );
        }
    }

    /// maddiff's zero-baseline: a run diffed against an independently
    /// built, identically seeded run must be exactly zero in every
    /// field — under the same loss + duplication + reordering faults
    /// with `Recover`. Any nonzero field here is differ noise that
    /// would surface as a phantom regression.
    #[test]
    fn self_diff_is_all_zero_under_faults(
        seed in any::<u64>(),
        loss_pm in 0u32..200,
        dup_pm in 0u32..200,
    ) {
        let a = faulted_cell(seed, loss_pm, dup_pm).run_snapshot("run");
        let b = faulted_cell(seed, loss_pm, dup_pm).run_snapshot("run");
        let d = madeleine::diff(&a, &b);
        prop_assert!(d.is_zero(), "self-diff must be zero:\n{}", d.report(5));
        prop_assert_eq!(d.aligned.len(), FAULTED_MSGS as usize);
    }

    /// maddiff's delta partition across a genuine perturbation: shifting
    /// the fault seed changes retransmission timing but not message
    /// identity, so every message aligns and each aligned pair's six
    /// per-phase deltas must sum exactly to its latency delta.
    #[test]
    fn diff_delta_partition_holds_across_seed_perturbation(
        seed in any::<u64>(),
        loss_pm in 0u32..200,
        dup_pm in 0u32..200,
    ) {
        let a = faulted_cell(seed, loss_pm, dup_pm).run_snapshot("a");
        let b = faulted_cell(seed ^ 1, loss_pm, dup_pm).run_snapshot("b");
        let d = madeleine::diff(&a, &b);
        prop_assert_eq!(d.partition_violations, 0);
        prop_assert_eq!(
            d.aligned.len(), FAULTED_MSGS as usize,
            "identity (node, flow, seq) must align fully across seeds"
        );
        prop_assert!(d.unmatched.is_empty());
        for m in &d.aligned {
            let sum: i64 = m.phase_deltas.iter().sum();
            prop_assert_eq!(
                sum, m.delta_ns,
                "{} phase deltas must partition its latency delta", m.key
            );
        }
    }
}
