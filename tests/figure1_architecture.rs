//! Integration: the behavioural content of **Figure 1** — the three-layer
//! architecture and its activation discipline.
//!
//! * the application layer only enqueues (submission never transmits by
//!   itself while the NIC is busy);
//! * the optimizing layer runs on NIC-idle events and keeps the NIC
//!   "adequately busy with adequately scheduled communication requests";
//! * the transfer layer is the only place packets are produced.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madware::pattern;
use simnet::{SimDuration, Technology};

fn spec() -> ClusterSpec {
    ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: Some(1 << 14),
        engine_trace: None,
    }
}

#[test]
fn submissions_during_busy_periods_only_extend_the_backlog() {
    let mut c = Cluster::build(&spec(), vec![]);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    // First submission: NIC idle -> submit-time activation transmits.
    c.sim.inject(src, |ctx| {
        h.send(
            ctx,
            f,
            MessageBuilder::new()
                .pack_cheaper(&pattern(f.0, 0, 0, 4096))
                .build_parts(),
        );
    });
    let busy_packets = c.handle(0).metrics().packets_sent;
    assert!(busy_packets >= 1);
    // While the NIC is busy (no events processed yet beyond submission),
    // more submissions must not produce more packets.
    c.sim.inject(src, |ctx| {
        for i in 1..10u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 64))
                    .build_parts(),
            );
        }
    });
    let before_run = c.handle(0).metrics();
    // Queue depth is 8; the first burst may have filled hardware slots at
    // submit-activations, but backlog must remain.
    assert!(before_run.packets_sent < 10);
    assert!(h.backlog_bytes() > 0, "backlog should be accumulating");
    c.drain();
    assert_eq!(c.handle(1).delivered_count(), 10);
}

#[test]
fn nic_idle_activations_produce_the_work() {
    let mut c = Cluster::build(&spec(), vec![]);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let flows: Vec<_> = (0..4)
        .map(|_| h.open_flow(dst, TrafficClass::DEFAULT))
        .collect();
    c.sim.inject(src, |ctx| {
        for i in 0..50u32 {
            for f in &flows {
                h.send(
                    ctx,
                    *f,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(f.0, i, 0, 96))
                        .build_parts(),
                );
            }
        }
    });
    c.drain();
    let m = c.handle(0).metrics();
    // One submit-time activation (the first send found an idle NIC); all
    // further optimization is idle-driven, and each idle activation
    // refills the whole hardware queue with aggregated packets — a few
    // activations move the entire 200-message burst.
    assert!(
        m.activations_idle >= 2,
        "idle activations {}",
        m.activations_idle
    );
    assert!(
        m.activations_idle >= m.activations_submit,
        "idle {} vs submit {}",
        m.activations_idle,
        m.activations_submit
    );
    assert!(
        m.packets_sent as f64 / m.activations_idle as f64 > 2.0,
        "each idle activation should produce several packets"
    );
    // And the NIC was kept "adequately busy": its busy fraction during the
    // transfer is high.
    let nic = c.nics[0][0];
    let busy = c.sim.nic(nic).tx_busy_fraction(c.sim.now());
    assert!(busy > 0.65, "NIC busy fraction {busy}");
}

#[test]
fn layers_are_observable_in_metrics() {
    let mut c = Cluster::build(&spec(), vec![]);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    c.sim.inject(src, |ctx| {
        for i in 0..20u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 128))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let m = c.handle(0).metrics();
    // Collect layer accepted everything...
    assert_eq!(m.submitted_msgs, 20);
    // ...the optimizing layer evaluated candidate plans...
    assert!(m.plans_evaluated > 0);
    assert!(m.plans_submitted > 0);
    // ...and the transfer layer shipped them.
    assert!(m.packets_sent > 0);
    assert_eq!(c.handle(1).metrics().delivered_msgs, 20);
    let _ = SimDuration::ZERO;
}
