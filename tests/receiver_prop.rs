//! Property tests on the receiver and the wire protocol in isolation:
//! arbitrary chunkings arriving in arbitrary (per-rail-plausible) orders
//! must reassemble byte-exactly, and the codec must round-trip anything.

use bytes::Bytes;
use madeleine::ids::{FlowId, TrafficClass};
use madeleine::proto::{decode_packet, encode_packet, ChunkHeader, DecodedChunk, WireChunk};
use madeleine::receiver::Receiver;
use madware::pattern;
use proptest::prelude::*;
use simnet::{NicId, NodeId, SimTime, WirePacket};

/// An arbitrary message: fragment sizes + express flags.
fn message() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((1usize..3000, any::<bool>()), 1..5)
}

#[allow(clippy::too_many_arguments)]
fn header(
    flow: u32,
    seq: u32,
    frag: u16,
    frag_count: u16,
    express: bool,
    frag_len: usize,
    offset: usize,
    chunk_len: usize,
) -> ChunkHeader {
    ChunkHeader {
        flow: FlowId(flow),
        msg_seq: seq,
        frag_index: frag,
        frag_count,
        express,
        class: TrafficClass::DEFAULT,
        frag_len: frag_len as u32,
        offset: offset as u32,
        chunk_len: chunk_len as u32,
        submit_ns: 42,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_chunk_orders_reassemble(
        msg in message(),
        order_seed in any::<u64>(),
    ) {
        // Build every chunk of every fragment, then ingest in a seeded
        // pseudo-random order (models multi-rail arrival).
        let mut rng = simnet::SplitMix64::new(order_seed);
        let mut chunks: Vec<DecodedChunk> = Vec::new();
        let frag_count = msg.len() as u16;
        for (fi, &(len, express)) in msg.iter().enumerate() {
            let data = pattern(3, 0, fi as u16, len);
            // Deterministic-ish cuts derived from the seed.
            let n_cuts = (rng.next_below(3) + 1) as usize;
            let mut points: Vec<usize> =
                (0..n_cuts).map(|_| 1 + rng.next_below(len as u64) as usize).collect();
            points.push(len);
            points.sort_unstable();
            points.dedup();
            let mut start = 0;
            for p in points {
                if p > start {
                    chunks.push(DecodedChunk {
                        header: header(3, 0, fi as u16, frag_count, express, len, start, p - start),
                        data: Bytes::copy_from_slice(&data[start..p]),
                    });
                    start = p;
                }
            }
        }
        // Shuffle (Fisher–Yates with the deterministic RNG).
        for i in (1..chunks.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            chunks.swap(i, j);
        }
        let mut r = Receiver::new();
        let mut delivered = Vec::new();
        for c in &chunks {
            delivered.extend(r.on_chunk(NodeId(0), c, SimTime::from_nanos(1000)));
        }
        prop_assert_eq!(delivered.len(), 1, "exactly one message");
        let m = &delivered[0];
        prop_assert_eq!(m.fragments.len(), msg.len());
        for (fi, &(len, _)) in msg.iter().enumerate() {
            prop_assert_eq!(&m.fragments[fi].1[..], &pattern(3, 0, fi as u16, len)[..]);
        }
        prop_assert_eq!(r.stats.overlaps, 0);
    }

    #[test]
    fn codec_roundtrips_arbitrary_packets(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..500), 1..10),
        linearize in any::<bool>(),
    ) {
        let chunks: Vec<WireChunk> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| WireChunk {
                header: header(i as u32, 0, 0, 1, false, p.len(), 0, p.len()),
                data: Bytes::copy_from_slice(p),
            })
            .collect();
        let segs = encode_packet(&chunks, linearize);
        let pkt = WirePacket {
            src: NodeId(0),
            dst: NodeId(1),
            src_nic: NicId(0),
            dst_nic: NicId(1),
            vchan: 0,
            kind: 1,
            cookie: 0,
            seq: 0,
            ecn: false,
            payload: segs,
        };
        let back = decode_packet(&pkt).unwrap();
        prop_assert_eq!(back.len(), chunks.len());
        for (a, b) in chunks.iter().zip(&back) {
            prop_assert_eq!(a.header, b.header);
            prop_assert_eq!(&a.data[..], &b.data[..]);
        }
    }

    #[test]
    fn truncation_anywhere_is_detected_or_roundtrips(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..100), 1..5),
        cut in any::<prop::sample::Index>(),
    ) {
        let chunks: Vec<WireChunk> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| WireChunk {
                header: header(i as u32, 0, 0, 1, false, p.len(), 0, p.len()),
                data: Bytes::copy_from_slice(p),
            })
            .collect();
        let segs = encode_packet(&chunks, true);
        let full = segs[0].clone();
        let cut_at = cut.index(full.len());
        let truncated = full.slice(..cut_at);
        let pkt = WirePacket {
            src: NodeId(0),
            dst: NodeId(1),
            src_nic: NicId(0),
            dst_nic: NicId(1),
            vchan: 0,
            kind: 1,
            cookie: 0,
            seq: 0,
            ecn: false,
            payload: vec![truncated],
        };
        // Any strict prefix must fail to decode (never mis-decode).
        if cut_at < full.len() {
            prop_assert!(decode_packet(&pkt).is_err());
        }
    }
}
