//! Integration: traffic classes, channel assignment and policy dynamics
//! (§2 of the paper).

use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madeleine::{EngineConfig, PolicyKind};
use madware::pattern;
use simnet::Technology;

fn two_rail_cluster(policy: PolicyKind) -> Cluster {
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx; 2],
            engine: EngineKind::Optimizing { config, policy },
            trace: None,
            engine_trace: None,
        },
        vec![],
    )
}

#[test]
fn control_class_rides_its_own_vchan() {
    let mut c = two_rail_cluster(PolicyKind::Pooled);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let bulk = h.open_flow(dst, TrafficClass::BULK);
    let ctrl = h.open_flow(dst, TrafficClass::CONTROL);
    c.sim.inject(src, |ctx| {
        for i in 0..20u32 {
            h.send(
                ctx,
                bulk,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(bulk.0, i, 0, 4096))
                    .build_parts(),
            );
            h.send(
                ctx,
                ctrl,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(ctrl.0, i, 0, 16))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let stats = c.handle(1).receiver_stats();
    // Packets arrived on at least two distinct data channels (plus maybe
    // the control channel for library traffic).
    let used: Vec<usize> = stats
        .per_vchan_packets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, _)| i)
        .collect();
    assert!(used.len() >= 2, "expected class separation, got {used:?}");
}

#[test]
fn class_pinning_keeps_traffic_on_assigned_rails() {
    let mut c = two_rail_cluster(PolicyKind::ClassPinned);
    let h = c.handle(0).clone();
    let NodeHandle::Opt(oh) = h.clone() else {
        unreachable!()
    };
    oh.pin_class(TrafficClass::CONTROL, &[0]);
    oh.pin_class(TrafficClass::BULK, &[1]);
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let bulk = h.open_flow(dst, TrafficClass::BULK);
    let ctrl = h.open_flow(dst, TrafficClass::CONTROL);
    c.sim.inject(src, |ctx| {
        for i in 0..30u32 {
            h.send(
                ctx,
                bulk,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(bulk.0, i, 0, 8192))
                    .build_parts(),
            );
            h.send(
                ctx,
                ctrl,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(ctrl.0, i, 0, 16))
                    .build_parts(),
            );
        }
    });
    c.drain();
    // Rail 0 carried only the tiny control messages; rail 1 the bulk.
    let r0 = c.sim.nic(c.nics[0][0]).stats.tx_payload_bytes;
    let r1 = c.sim.nic(c.nics[0][1]).stats.tx_payload_bytes;
    assert!(
        r0 < 10_000,
        "rail 0 carried {r0} bytes (control only expected)"
    );
    assert!(r1 > 200_000, "rail 1 carried {r1} bytes (bulk expected)");
    assert_eq!(c.handle(1).delivered_count(), 60);
}

#[test]
fn class_vchan_reassignment_at_runtime() {
    let mut c = two_rail_cluster(PolicyKind::Pooled);
    let h = c.handle(0).clone();
    let NodeHandle::Opt(oh) = h.clone() else {
        unreachable!()
    };
    // Move BULK onto an unusual channel on rail 0.
    assert!(oh.set_class_vchan(0, TrafficClass::BULK, 5));
    // Reject invalid reassignments.
    assert!(
        !oh.set_class_vchan(0, TrafficClass::BULK, 0),
        "control channel reserved"
    );
    assert!(
        !oh.set_class_vchan(0, TrafficClass::BULK, 200),
        "out of range"
    );
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    // Pin bulk to rail 0 via the policy so the assignment is observable.
    oh.switch_policy(PolicyKind::ClassPinned);
    oh.pin_class(TrafficClass::BULK, &[0]);
    let bulk = h.open_flow(dst, TrafficClass::BULK);
    c.sim.inject(src, |ctx| {
        for i in 0..10u32 {
            h.send(
                ctx,
                bulk,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(bulk.0, i, 0, 1024))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let stats = c.handle(1).receiver_stats();
    assert!(stats.per_vchan_packets.len() > 5);
    assert!(
        stats.per_vchan_packets[5] > 0,
        "{:?}",
        stats.per_vchan_packets
    );
}

#[test]
fn adaptive_policy_rebalances_under_shifting_load() {
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        adaptive_epoch: simnet::SimDuration::from_micros(100),
        ..EngineConfig::default()
    };
    let mut c = Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx; 3],
            engine: EngineKind::Optimizing {
                config,
                policy: PolicyKind::Adaptive,
            },
            trace: None,
            engine_trace: None,
        },
        vec![],
    );
    let h = c.handle(0).clone();
    let NodeHandle::Opt(oh) = h.clone() else {
        unreachable!()
    };
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let bulk = h.open_flow(dst, TrafficClass::BULK);
    c.sim.inject(src, |ctx| {
        for i in 0..100u32 {
            h.send(
                ctx,
                bulk,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(bulk.0, i, 0, 16 << 10))
                    .build_parts(),
            );
        }
    });
    c.drain();
    assert!(oh.rebalances() > 0, "adaptive policy must have rebalanced");
    assert_eq!(c.handle(1).delivered_count(), 100);
}

#[test]
fn urgency_lets_aged_control_jump_bulk_queues() {
    // Single rail, saturating bulk + one control message submitted into
    // the middle of the backlog: the control message must not be delivered
    // last.
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    let mut c = Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx],
            engine: EngineKind::Optimizing {
                config,
                policy: PolicyKind::Pooled,
            },
            trace: None,
            engine_trace: None,
        },
        vec![],
    );
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let bulk = h.open_flow(dst, TrafficClass::BULK);
    let ctrl = h.open_flow(dst, TrafficClass::CONTROL);
    c.sim.inject(src, |ctx| {
        for i in 0..40u32 {
            h.send(
                ctx,
                bulk,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(bulk.0, i, 0, 16 << 10))
                    .build_parts(),
            );
            if i == 20 {
                h.send(
                    ctx,
                    ctrl,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(ctrl.0, 0, 0, 16))
                        .build_parts(),
                );
            }
        }
    });
    c.drain();
    let got = c.handle(1).take_delivered();
    let pos = got
        .iter()
        .position(|m| m.flow == ctrl)
        .expect("control delivered");
    assert!(
        pos < got.len() - 5,
        "control delivered at {pos} of {}",
        got.len()
    );
}
