//! Integration: engine API contract — flush, send-completion callbacks,
//! drain queries, robustness against rogue user strategies, and incast.

use madeleine::api::{AppDriver, CommApi};
use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::{FlowId, MsgId, TrafficClass};
use madeleine::message::MessageBuilder;
use madeleine::plan::{PlanBody, PlannedChunk, TransferPlan};
use madeleine::strategy::{OptContext, Strategy};
use madeleine::{EngineConfig, MadEngine, PolicyKind};
use madware::pattern;
use simnet::{NodeId, SimDuration, SimTime, Technology};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn flush_overrides_nagle_delay() {
    struct FlushApp {
        flow: Option<FlowId>,
        dst: NodeId,
    }
    impl AppDriver for FlushApp {
        fn on_start(&mut self, api: &mut dyn CommApi) {
            let f = api.open_flow(self.dst, TrafficClass::DEFAULT);
            self.flow = Some(f);
            api.send(
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, 0, 0, 32))
                    .build_parts(),
            );
            // Nagle would hold this for 500µs; flush pushes it now.
            api.flush();
        }
    }
    let config = EngineConfig::default().with_nagle(SimDuration::from_micros(500));
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::Optimizing {
            config,
            policy: PolicyKind::Pooled,
        },
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(
        &spec,
        vec![
            Some(Box::new(FlushApp {
                flow: None,
                dst: NodeId(1),
            })),
            None,
        ],
    );
    let end = c.drain();
    assert_eq!(c.handle(1).delivered_count(), 1);
    // Delivered in microseconds, not after the 500µs Nagle window.
    assert!(
        end.as_nanos() < 100_000,
        "flush did not bypass Nagle: {end}"
    );
}

#[test]
fn on_sent_fires_once_per_message_after_transmission() {
    struct SentApp {
        dst: NodeId,
        sent_ids: Rc<RefCell<Vec<MsgId>>>,
        submitted: Rc<RefCell<Vec<MsgId>>>,
    }
    impl AppDriver for SentApp {
        fn on_start(&mut self, api: &mut dyn CommApi) {
            let f = api.open_flow(self.dst, TrafficClass::DEFAULT);
            for i in 0..10u32 {
                let id = api.send(
                    f,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(f.0, i, 0, 2048))
                        .build_parts(),
                );
                self.submitted.borrow_mut().push(id);
            }
        }
        fn on_sent(&mut self, _api: &mut dyn CommApi, msg: MsgId) {
            self.sent_ids.borrow_mut().push(msg);
        }
    }
    let sent = Rc::new(RefCell::new(Vec::new()));
    let submitted = Rc::new(RefCell::new(Vec::new()));
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(
        &spec,
        vec![
            Some(Box::new(SentApp {
                dst: NodeId(1),
                sent_ids: sent.clone(),
                submitted: submitted.clone(),
            })),
            None,
        ],
    );
    c.drain();
    let mut sent = sent.borrow().clone();
    let mut submitted = submitted.borrow().clone();
    sent.sort();
    submitted.sort();
    assert_eq!(sent, submitted, "every message completes exactly once");
}

#[test]
fn is_drained_tracks_engine_state() {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![]);
    let NodeHandle::Opt(h) = c.handle(0).clone() else {
        unreachable!()
    };
    assert!(h.is_drained());
    let f = h.open_flow(c.nodes[1], TrafficClass::DEFAULT);
    let src = c.nodes[0];
    c.sim.inject(src, |ctx| {
        for i in 0..20u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 4096))
                    .build_parts(),
            );
        }
    });
    assert!(!h.is_drained(), "work in flight");
    c.drain();
    assert!(h.is_drained());
}

/// A hostile strategy: proposes plans that violate every rule it can.
struct RogueStrategy;
impl Strategy for RogueStrategy {
    fn name(&self) -> &'static str {
        "rogue"
    }
    fn propose(&self, ctx: &OptContext<'_>, out: &mut Vec<TransferPlan>) {
        for g in ctx.groups {
            for c in &g.candidates {
                // Wrong offset (skips bytes).
                out.push(TransferPlan {
                    channel: ctx.channel,
                    dst: g.dst,
                    body: PlanBody::Data {
                        chunks: vec![PlannedChunk {
                            flow: c.flow,
                            seq: c.seq,
                            frag: c.frag,
                            offset: c.offset + 1,
                            len: c.remaining.saturating_sub(1).max(1),
                        }],
                        linearize: false,
                    },
                    strategy: "rogue",
                });
                // Unknown message.
                out.push(TransferPlan {
                    channel: ctx.channel,
                    dst: g.dst,
                    body: PlanBody::Data {
                        chunks: vec![PlannedChunk {
                            flow: FlowId(9999),
                            seq: 12345,
                            frag: 0,
                            offset: 0,
                            len: 64,
                        }],
                        linearize: false,
                    },
                    strategy: "rogue",
                });
                // Oversized packet.
                out.push(TransferPlan {
                    channel: ctx.channel,
                    dst: g.dst,
                    body: PlanBody::Data {
                        chunks: vec![PlannedChunk {
                            flow: c.flow,
                            seq: c.seq,
                            frag: c.frag,
                            offset: c.offset,
                            len: u32::MAX / 2,
                        }],
                        linearize: false,
                    },
                    strategy: "rogue",
                });
            }
        }
    }
}

#[test]
fn rogue_user_strategy_cannot_corrupt_traffic() {
    // Build the cluster manually so we can register the rogue strategy.
    let mut sim = simnet::Simulation::new();
    let net = sim.add_network(nicdrv::calib::params(Technology::MyrinetMx));
    let a = sim.add_node();
    let b = sim.add_node();
    let na = sim.add_nic(a, net);
    let nb = sim.add_nic(b, net);
    let build = |node, nic, peer, peer_nic: simnet::NicId, rogue: bool| {
        let mut bld = MadEngine::builder(node)
            .rail_tech(Technology::MyrinetMx, nic)
            .peer(peer, vec![peer_nic]);
        if rogue {
            bld = bld.strategy(Box::new(RogueStrategy));
        }
        bld.build().unwrap()
    };
    let (ea, ha) = build(a, na, b, nb, true);
    let (eb, hb) = build(b, nb, a, na, false);
    sim.set_endpoint(a, Box::new(ea));
    sim.set_endpoint(b, Box::new(eb));
    let f = ha.open_flow(b, TrafficClass::DEFAULT);
    sim.inject(a, |ctx| {
        for i in 0..50u32 {
            ha.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 300))
                    .build_parts(),
            );
        }
    });
    sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
    // All rogue proposals were rejected by validation; traffic is intact.
    assert_eq!(hb.delivered_count(), 50);
    for m in hb.take_delivered() {
        assert_eq!(m.contiguous(), pattern(m.flow.0, m.id.seq.0, 0, 300));
    }
    assert_eq!(ha.metrics().driver_rejections, 0);
}

#[test]
fn debug_report_and_strategy_wins_reflect_activity() {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![]);
    let NodeHandle::Opt(h) = c.handle(0).clone() else {
        unreachable!()
    };
    let f = h.open_flow(c.nodes[1], TrafficClass::DEFAULT);
    let src = c.nodes[0];
    c.sim.inject(src, |ctx| {
        for i in 0..30u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 64))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let report = h.debug_report();
    assert!(report.contains("submitted 30 msgs"), "{report}");
    assert!(report.contains("strategy wins:"), "{report}");
    let m = h.metrics();
    let total_wins: u64 = m.strategy_wins.values().sum();
    assert_eq!(total_wins, m.plans_submitted);
    // The aggregation strategy family must have won at least once on a
    // 30-message burst.
    let agg_wins: u64 = m
        .strategy_wins
        .iter()
        .filter(|(k, _)| k.starts_with("aggregate") || *k == &"copy-agg")
        .map(|(_, v)| *v)
        .sum();
    assert!(agg_wins > 0, "{:?}", m.strategy_wins);
}

#[test]
fn incast_many_senders_one_receiver() {
    // 7 senders blast one receiver simultaneously: the receiver's rx engine
    // serializes, nothing is lost, per-flow order holds.
    let spec = ClusterSpec {
        nodes: 8,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![]);
    let sink = c.nodes[0];
    let handles: Vec<_> = (1..8).map(|i| c.handle(i).clone()).collect();
    let mut flows = Vec::new();
    for (i, h) in handles.iter().enumerate() {
        let f = h.open_flow(sink, TrafficClass::DEFAULT);
        let src = c.nodes[i + 1];
        c.sim.inject(src, |ctx| {
            for k in 0..40u32 {
                h.send(
                    ctx,
                    f,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(f.0, k, 0, 512))
                        .build_parts(),
                );
            }
        });
        flows.push(f);
    }
    c.drain();
    assert_eq!(c.handle(0).delivered_count(), 7 * 40);
    let got = c.handle(0).take_delivered();
    // Per (src, flow) order strictly increasing.
    for src_idx in 1..8u32 {
        let seqs: Vec<u32> = got
            .iter()
            .filter(|m| m.src == NodeId(src_idx))
            .map(|m| m.id.seq.0)
            .collect();
        assert_eq!(seqs.len(), 40);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "src {src_idx}");
    }
    assert_eq!(c.handle(0).receiver_stats().express_violations, 0);
}
