//! madrel end-to-end: ack/retransmit recovery under seeded wire faults.
//!
//! * Property: any mix of drops and duplicates drawn from a seeded
//!   [`FaultPlan`] yields exactly-once, byte-exact delivery per
//!   `(flow, seq)` when recovery is on.
//! * Integration: the E2-style eager-flow workload completes fully under
//!   loss with madrel on; with recovery off (Detect), the loss trips the
//!   flight recorder instead of silently vanishing.
//! * Determinism: two same-seed lossy runs export byte-identical traces.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madeleine::trace::FlightTrigger;
use madeleine::{EngineConfig, PolicyKind, ReliabilityMode};
use madware::pattern;
use madware::scenario::eager_flows;
use proptest::prelude::*;
use simnet::{FaultPlan, SimDuration, Technology};

fn engine(mode: ReliabilityMode) -> EngineKind {
    EngineKind::Optimizing {
        config: EngineConfig {
            reliability: mode,
            ..EngineConfig::default()
        },
        policy: PolicyKind::Pooled,
    }
}

fn lossy_cluster(mode: ReliabilityMode, plan: FaultPlan) -> Cluster {
    let mut c = Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx],
            engine: engine(mode),
            trace: None,
            engine_trace: None,
        },
        vec![],
    );
    c.set_fault_plan(0, plan);
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Retransmit idempotence: drops force retransmissions, duplicates
    /// replay both data and acks, reordering shuffles arrivals — and every
    /// message is still delivered exactly once, byte-exact.
    #[test]
    fn drops_and_dups_yield_exactly_once_delivery(
        seed in any::<u64>(),
        loss_pm in 0u32..300, // per-mille; the shim has no f64 ranges
        dup_pm in 0u32..300,
    ) {
        const MSGS: u32 = 30;
        let plan = FaultPlan::new(seed)
            .with_loss(f64::from(loss_pm) / 1000.0)
            .with_dup(f64::from(dup_pm) / 1000.0)
            .with_reorder(0.15, SimDuration::from_micros(2));
        let mut c = lossy_cluster(ReliabilityMode::Recover, plan);
        let h = c.handle(0).clone();
        let (src, dst) = (c.nodes[0], c.nodes[1]);
        let f = h.open_flow(dst, TrafficClass::DEFAULT);
        c.sim.inject(src, |ctx| {
            for i in 0..MSGS {
                h.send(
                    ctx,
                    f,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(f.0, i, 0, 200))
                        .build_parts(),
                );
            }
        });
        c.drain();
        let got = c.handle(1).take_delivered();
        prop_assert_eq!(got.len(), MSGS as usize, "exactly-once: no loss, no dup");
        let mut seen = vec![false; MSGS as usize];
        for m in &got {
            let seq = m.id.seq.0;
            prop_assert!(!seen[seq as usize], "seq {} delivered twice", seq);
            seen[seq as usize] = true;
            prop_assert_eq!(m.contiguous(), pattern(m.flow.0, seq, 0, 200));
        }
        prop_assert_eq!(c.handle(0).metrics().lost_msgs, 0);
    }
}

#[test]
fn eager_flows_complete_under_loss_with_madrel() {
    // The E2-style scenario, but on a 2%-lossy wire: recovery must make it
    // indistinguishable (in delivery terms) from a lossless run.
    let (mut cluster, tx, rx) = eager_flows(
        engine(ReliabilityMode::Recover),
        Technology::MyrinetMx,
        4,
        64,
        SimDuration::from_micros(10),
        100,
        5,
    );
    cluster.set_fault_plan(0, FaultPlan::new(5).with_loss(0.02));
    cluster.drain();
    let sent = tx.borrow().sent;
    assert_eq!(sent, 400);
    assert_eq!(rx.borrow().received, sent, "every flow completes");
    assert!(rx.borrow().integrity.all_ok(), "payloads byte-exact");
    let m = cluster.handle(0).metrics();
    assert!(m.retransmits > 0, "completion was earned, not lucky");
    assert_eq!(m.lost_msgs, 0);
}

#[test]
fn loss_without_recovery_trips_the_flight_recorder() {
    // Same wire, recovery off (Detect): messages go missing, and the
    // first ack timeout captures a flight dump instead of hanging drain.
    let plan = FaultPlan::new(11).with_loss(0.25);
    let mut c = lossy_cluster(ReliabilityMode::Detect, plan);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    c.sim.inject(src, |ctx| {
        for i in 0..200u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 96))
                    .build_parts(),
            );
        }
    });
    c.drain(); // Detect mode must not hang on lost packets
    let opt = c.handle(0).opt().expect("optimizing engine").clone();
    assert!(c.handle(1).delivered_count() < 200, "losses stay lost");
    assert!(opt.metrics().timeouts > 0, "loss detected via ack timeouts");
    let dump = opt
        .flight_dump()
        .expect("first timeout captures a flight dump");
    assert_eq!(dump.trigger, FlightTrigger::Timeout);
    assert!(opt.fault_counts()[3] > 0, "timeout fault counter advanced");
}

#[test]
fn same_seed_lossy_runs_export_identical_traces() {
    let run = || {
        let mut c = Cluster::build(
            &ClusterSpec {
                nodes: 2,
                rails: vec![Technology::MyrinetMx],
                engine: engine(ReliabilityMode::Recover),
                trace: Some(1 << 14),
                engine_trace: Some(1 << 14),
            },
            vec![],
        );
        c.set_fault_plan(0, FaultPlan::new(21).with_loss(0.03).with_dup(0.05));
        let h = c.handle(0).clone();
        let (src, dst) = (c.nodes[0], c.nodes[1]);
        let f = h.open_flow(dst, TrafficClass::DEFAULT);
        c.sim.inject(src, |ctx| {
            for i in 0..60u32 {
                h.send(
                    ctx,
                    f,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(f.0, i, 0, 128))
                        .build_parts(),
                );
            }
        });
        c.drain();
        let drops: u64 = c
            .nics
            .iter()
            .flatten()
            .map(|&n| c.sim.nic(n).stats.wire_drops)
            .sum();
        assert!(drops > 0, "the plan must actually injure the wire");
        assert_eq!(c.handle(1).delivered_count(), 60);
        c.export_chrome_trace().json
    };
    assert_eq!(run(), run(), "same seed, byte-identical export");
}
