//! Integration tests for madtrace: the engine event sink, the decision
//! log, the metrics recording paths it rides along with
//! (`strategy_wins`, `backlog_depth`), the shape of `debug_report()`,
//! and the flight recorder (triggered deterministically by injecting a
//! malformed wire packet).

use madeleine::harness::{Cluster, ClusterSpec};
use madeleine::trace::{EngineEvent, FlightTrigger};
use madeleine::{Json, MessageBuilder, TrafficClass};
use simnet::{NodeId, WirePacket};

/// A traced two-node MX cluster with `msgs` eager messages submitted
/// back-to-back on one flow (backlog forms, so activations see depth > 0).
fn traced_run(msgs: usize) -> Cluster {
    let mut c = Cluster::build(&ClusterSpec::mx_pair().with_tracing(4096), vec![]);
    let src = c.nodes[0];
    let dst = c.nodes[1];
    let h = c.handles[0].clone();
    let flow = h.open_flow(dst, TrafficClass::DEFAULT);
    for i in 0..msgs {
        c.sim.inject(src, |ctx| {
            h.send(
                ctx,
                flow,
                MessageBuilder::new()
                    .pack_cheaper(&[i as u8; 48])
                    .build_parts(),
            )
        });
    }
    c.drain();
    c
}

#[test]
fn strategy_wins_matches_plan_won_events() {
    let c = traced_run(12);
    let m = c.handle(0).metrics();
    let sink = c
        .handle(0)
        .opt()
        .expect("optimizing engine")
        .trace_snapshot();

    let total_wins: u64 = m.strategy_wins.values().sum();
    assert!(total_wins > 0, "some strategy must have won");
    let plan_won = sink.count_matching(|e| matches!(e, EngineEvent::PlanWon { .. }));
    assert_eq!(
        total_wins as usize, plan_won,
        "every strategy_wins increment must have a PlanWon event"
    );

    // Each winner named in the decision log is tallied in the metrics.
    for rec in sink.iter() {
        if let EngineEvent::PlanWon { strategy, .. } = rec.event {
            assert!(
                m.strategy_wins.contains_key(strategy),
                "winner {strategy} missing from strategy_wins"
            );
        }
    }
}

#[test]
fn backlog_depth_matches_activation_start_events() {
    let c = traced_run(12);
    let m = c.handle(0).metrics();
    let sink = c
        .handle(0)
        .opt()
        .expect("optimizing engine")
        .trace_snapshot();

    let starts: Vec<u32> = sink
        .iter()
        .filter_map(|r| match r.event {
            EngineEvent::ActivationStart { backlog_depth, .. } => Some(backlog_depth),
            _ => None,
        })
        .collect();
    assert!(!starts.is_empty(), "activations must be traced");
    assert_eq!(
        m.backlog_depth.count() as usize,
        starts.len(),
        "one backlog sample per ActivationStart"
    );
    // Back-to-back submissions at t=0 must build a visible backlog.
    let max_traced = *starts.iter().max().expect("nonempty") as f64;
    assert!(max_traced >= 2.0, "backlog never formed: {starts:?}");
    assert_eq!(m.backlog_depth.max(), max_traced, "metrics and trace agree");
}

#[test]
fn debug_report_has_the_golden_shape() {
    let c = traced_run(4);
    let report = c.handle(0).opt().expect("optimizing engine").debug_report();
    // Satellite guarantees: the retained/dropped trace line and the
    // health line (flight recorder armed on a clean run).
    assert!(
        report.contains("events retained, 0 dropped"),
        "missing trace status line:\n{report}"
    );
    assert!(
        report.contains(
            "health: proto_errors=0 driver_rejections=0 express_violations=0 class_clamped=0; \
             flight recorder armed"
        ),
        "missing health line:\n{report}"
    );
    assert!(report.contains("strategy wins:"), "missing wins:\n{report}");

    // Disabled tracing is reported as such.
    let c2 = Cluster::build(&ClusterSpec::mx_pair(), vec![]);
    let report2 = c2
        .handle(0)
        .opt()
        .expect("optimizing engine")
        .debug_report();
    assert!(
        report2.contains("trace: disabled"),
        "missing disabled marker:\n{report2}"
    );
}

/// A wire packet whose payload cannot possibly decode (shorter than the
/// packet prefix), addressed to node 1's first NIC.
fn malformed_packet(c: &Cluster) -> WirePacket {
    WirePacket {
        src: c.nodes[0],
        dst: c.nodes[1],
        src_nic: c.nics[0][0],
        dst_nic: c.nics[1][0],
        vchan: 0,
        kind: madeleine::proto::KIND_DATA,
        cookie: 0,
        seq: 0,
        ecn: false,
        payload: vec![bytes::Bytes::from_static(&[0xff])],
    }
}

#[test]
fn flight_recorder_fires_once_on_proto_error() {
    let mut c = traced_run(4);
    let h1 = c.handle(1).opt().expect("optimizing engine").clone();
    assert!(h1.flight_dump().is_none(), "clean run must not fire");

    let pkt = malformed_packet(&c);
    let nic = c.nics[1][0];
    let receiver = c.nodes[1];
    let h = h1.clone();
    c.sim
        .inject(receiver, move |ctx| h.inject_packet(ctx, nic, pkt));
    c.drain();

    let dump = h1.flight_dump().expect("flight recorder must fire");
    assert_eq!(dump.trigger, FlightTrigger::ProtoError);
    assert_eq!(dump.trigger.label(), "proto_errors");
    assert_eq!(dump.node, NodeId(1));

    // A second fault must not re-arm: the artifact keeps the first state.
    let pkt2 = malformed_packet(&c);
    let h = h1.clone();
    c.sim
        .inject(receiver, move |ctx| h.inject_packet(ctx, nic, pkt2));
    c.drain();
    let again = h1.flight_dump().expect("dump is sticky");
    assert_eq!(again.at, dump.at, "recorder fired twice");

    // The engine's own report now says so.
    let report = h1.debug_report();
    assert!(
        report.contains("flight recorder fired(proto_errors @"),
        "report must show the trigger:\n{report}"
    );
}

#[test]
fn flight_dump_artifact_has_the_golden_shape() {
    let mut c = traced_run(4);
    let h1 = c.handle(1).opt().expect("optimizing engine").clone();
    let pkt = malformed_packet(&c);
    let nic = c.nics[1][0];
    let receiver = c.nodes[1];
    let h = h1.clone();
    c.sim
        .inject(receiver, move |ctx| h.inject_packet(ctx, nic, pkt));
    c.drain();

    let dump = h1.flight_dump().expect("fired");
    let text = dump.render();
    assert_eq!(text, dump.render(), "rendering must be deterministic");

    let doc = Json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(
        doc.get("artifact").and_then(|v| v.as_str()),
        Some("madtrace-flight-dump")
    );
    assert_eq!(
        doc.get("trigger").and_then(|v| v.as_str()),
        Some("proto_errors")
    );
    assert_eq!(doc.get("node").and_then(|v| v.as_u64()), Some(1));
    assert!(doc.get("at_ns").and_then(|v| v.as_u64()).is_some());
    assert!(doc
        .get("report")
        .and_then(|v| v.as_str())
        .is_some_and(|r| r.contains("health:")));
    // The embedded metrics document is the full registry walk.
    let metrics = doc.get("metrics").expect("metrics section");
    assert_eq!(
        metrics.get("artifact").and_then(|v| v.as_str()),
        Some("madtrace-metrics")
    );
    assert_eq!(
        metrics
            .get("sections")
            .and_then(|s| s.get("engine"))
            .and_then(|e| e.get("proto_errors"))
            .and_then(|v| v.as_u64()),
        Some(1),
        "registry must show the fault that fired the recorder"
    );
    // Trailing events, each with the (ts, name, args) record shape.
    let events = doc
        .get("events")
        .and_then(|v| v.as_array())
        .expect("events");
    assert!(!events.is_empty(), "the receiving engine traced deliveries");
    for ev in events {
        assert!(ev.get("ts_ns").is_some());
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        assert!(ev.get("args").is_some());
    }
}
