//! Failure injection: the engine's behaviour under hostile conditions —
//! hardware queue exhaustion, capability rejections, lossy wires and
//! undecodable packets. High-speed networks are lossless, so loss is a
//! *diagnostic* scenario: the engine must degrade loudly (counters), never
//! silently corrupt.

use bytes::Bytes;
use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madware::pattern;
use nicdrv::{calib, CostModel, Driver, DriverError, ModeSel, SimDriver, TransferRequest};
use simnet::{NetworkParams, SimTime, Simulation, SubmitError, Technology};

#[test]
fn hardware_queue_exhaustion_backpressures_cleanly() {
    let mut sim = Simulation::new();
    let mut params = NetworkParams::synthetic();
    params.tx_queue_depth = 2;
    let net = sim.add_network(params);
    let a = sim.add_node();
    let b = sim.add_node();
    let na = sim.add_nic(a, net);
    let nb = sim.add_nic(b, net);
    let mut caps = calib::synthetic_capabilities();
    caps.tx_queue_depth = 2;
    let cost = CostModel::from_params(sim.network_params(net));
    let drv = SimDriver::new(na, caps, cost);
    let results: Vec<_> = sim.inject(a, |ctx| {
        (0..5)
            .map(|i| {
                drv.submit(
                    ctx,
                    TransferRequest {
                        dst_nic: nb,
                        vchan: 0,
                        kind: 1,
                        cookie: i,
                        mode: ModeSel::Auto,
                        host_prep: simnet::SimDuration::ZERO,
                        segments: vec![Bytes::from_static(b"data")],
                    },
                )
            })
            .collect()
    });
    assert!(results[0].is_ok() && results[1].is_ok());
    for r in &results[2..] {
        assert_eq!(*r, Err(DriverError::Nic(SubmitError::QueueFull)));
    }
    sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
    assert_eq!(sim.nic(nb).stats.rx_packets, 2);
}

#[test]
fn engine_absorbs_queue_pressure_without_loss() {
    // Tiny hardware queues + a large burst: the collect layer buffers, the
    // engine never drops, every message arrives.
    let mut c = Cluster::build(
        &ClusterSpec {
            nodes: 2,
            rails: vec![Technology::MyrinetMx],
            engine: EngineKind::optimizing(),
            trace: None,
            engine_trace: None,
        },
        vec![],
    );
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    c.sim.inject(src, |ctx| {
        for i in 0..500u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 700))
                    .build_parts(),
            );
        }
    });
    c.drain();
    assert_eq!(c.handle(1).delivered_count(), 500);
    assert_eq!(c.handle(0).metrics().driver_rejections, 0);
}

#[test]
fn lossy_wire_is_detected_not_corrupting() {
    // A drop rate on the fabric: messages go missing (counted by the NIC),
    // but whatever is delivered is byte-exact and in order, and reassembly
    // state reports the stuck messages.
    // The harness uses calibrated (lossless) fabrics, so build a dedicated
    // simulation with a lossy variant of the MX parameters.
    let mut params = calib::params(Technology::MyrinetMx);
    params.drop_rate = 0.3;
    let mut sim = Simulation::new();
    let net = sim.add_network(params);
    let a = sim.add_node();
    let b = sim.add_node();
    let na = sim.add_nic(a, net);
    let nb = sim.add_nic(b, net);
    let build = |node, nic, peer, peer_nic: simnet::NicId| {
        madeleine::MadEngine::builder(node)
            .rail(calib::driver(Technology::MyrinetMx, nic), 32 << 10)
            .peer(peer, vec![peer_nic])
            .build()
            .unwrap()
    };
    let (ea, ha) = build(a, na, b, nb);
    let (eb, hb) = build(b, nb, a, na);
    sim.set_endpoint(a, Box::new(ea));
    sim.set_endpoint(b, Box::new(eb));
    let f = ha.open_flow(b, TrafficClass::DEFAULT);
    sim.inject(a, |ctx| {
        for i in 0..100u32 {
            ha.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 96))
                    .build_parts(),
            );
        }
    });
    sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
    let drops = sim.nic(na).stats.wire_drops;
    // Aggregation packs the 100 messages into few packets, so the absolute
    // drop count is small — but it must be nonzero and visible.
    assert!(drops >= 1, "expected drops, got {drops}");
    assert!(
        sim.nic(na).stats.tx_packets > drops,
        "some packets must still get through"
    );
    let got = hb.take_delivered();
    assert!(got.len() < 100, "some messages must be missing");
    // Whatever arrived is intact and strictly in order.
    let mut last = None;
    for m in &got {
        assert_eq!(m.contiguous(), pattern(m.flow.0, m.id.seq.0, 0, 96));
        if let Some(prev) = last {
            assert!(m.id.seq.0 > prev);
        }
        last = Some(m.id.seq.0);
    }
}

#[test]
fn undecodable_packet_counted_not_fatal() {
    // Hand-craft a malformed DATA packet via a raw NIC and aim it at an
    // engine node: the engine counts a protocol error and keeps running.
    let mut sim = Simulation::new();
    let net = sim.add_network(calib::params(Technology::MyrinetMx));
    let a = sim.add_node(); // raw attacker node (no endpoint logic needed)
    let b = sim.add_node();
    let na = sim.add_nic(a, net);
    let nb = sim.add_nic(b, net);
    let (eb, hb) = madeleine::MadEngine::builder(b)
        .rail(calib::driver(Technology::MyrinetMx, nb), 32 << 10)
        .peer(a, vec![na])
        .build()
        .unwrap();
    sim.set_endpoint(b, Box::new(eb));
    sim.inject(a, |ctx| {
        ctx.submit(
            na,
            simnet::TxRequest {
                dst_nic: nb,
                vchan: 1,
                kind: madeleine::proto::KIND_DATA,
                cookie: 0,
                mode: simnet::TxMode::Pio,
                host_prep: simnet::SimDuration::ZERO,
                payload: vec![Bytes::from_static(b"\xFF\xFFgarbage-that-is-not-a-packet")],
            },
        )
        .unwrap();
    });
    sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
    assert_eq!(hb.metrics().proto_errors, 1);
    assert_eq!(hb.metrics().delivered_msgs, 0);
}

#[test]
fn capability_violations_rejected_with_precise_errors() {
    let mut sim = Simulation::new();
    let net = sim.add_network(calib::params(Technology::InfiniBand));
    let a = sim.add_node();
    let b = sim.add_node();
    let na = sim.add_nic(a, net);
    let nb = sim.add_nic(b, net);
    let drv = calib::driver(Technology::InfiniBand, na);
    sim.inject(a, |ctx| {
        // Over the inline (PIO) limit.
        let r = drv.submit(
            ctx,
            TransferRequest {
                dst_nic: nb,
                vchan: 0,
                kind: 1,
                cookie: 0,
                mode: ModeSel::Pio,
                host_prep: simnet::SimDuration::ZERO,
                segments: vec![Bytes::from(vec![0u8; 300])],
            },
        );
        assert_eq!(r, Err(DriverError::PioTooLarge { len: 300, max: 256 }));
        // Over the gather width.
        let r = drv.submit(
            ctx,
            TransferRequest {
                dst_nic: nb,
                vchan: 0,
                kind: 1,
                cookie: 0,
                mode: ModeSel::Dma,
                host_prep: simnet::SimDuration::ZERO,
                segments: (0..6).map(|_| Bytes::from_static(b"xx")).collect(),
            },
        );
        assert_eq!(r, Err(DriverError::TooManySegments { got: 6, max: 4 }));
        // Bad virtual channel.
        let r = drv.submit(
            ctx,
            TransferRequest {
                dst_nic: nb,
                vchan: 99,
                kind: 1,
                cookie: 0,
                mode: ModeSel::Auto,
                host_prep: simnet::SimDuration::ZERO,
                segments: vec![Bytes::from_static(b"xx")],
            },
        );
        assert_eq!(r, Err(DriverError::VChannelOutOfRange { got: 99, max: 8 }));
    });
}
