//! Integration: multi-rail scheduling — load balancing, heterogeneity,
//! policy effects, and correctness of chunk reassembly across rails.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madeleine::{EngineConfig, PolicyKind};
use madware::pattern;
use simnet::Technology;

fn bulk_spec(engine: EngineKind, rails: Vec<Technology>) -> ClusterSpec {
    ClusterSpec {
        nodes: 2,
        rails,
        engine,
        trace: None,
        engine_trace: None,
    }
}

fn eager_cfg() -> EngineConfig {
    EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    }
}

/// Stream a single large logical transfer; return (makespan ns, per-rail bytes).
fn stream(engine: EngineKind, rails: Vec<Technology>, msgs: u32) -> (u64, Vec<u64>, Cluster) {
    let mut c = Cluster::build(&bulk_spec(engine, rails), vec![]);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::BULK);
    c.sim.inject(src, |ctx| {
        for i in 0..msgs {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 24 << 10))
                    .build_parts(),
            );
        }
    });
    let end = c.drain();
    let bytes = c.nics[0]
        .iter()
        .map(|&n| c.sim.nic(n).stats.tx_payload_bytes)
        .collect();
    (end.as_nanos(), bytes, c)
}

#[test]
fn two_rails_nearly_double_throughput() {
    let opt1 = EngineKind::Optimizing {
        config: eager_cfg(),
        policy: PolicyKind::Pooled,
    };
    let opt2 = opt1.clone();
    let (t1, _, c1) = stream(opt1, vec![Technology::MyrinetMx], 60);
    let (t2, bytes, c2) = stream(opt2, vec![Technology::MyrinetMx; 2], 60);
    assert!(t2 * 18 < t1 * 10, "2 rails {t2}ns vs 1 rail {t1}ns");
    assert!(
        bytes[0] > 0 && bytes[1] > 0,
        "both rails carried data: {bytes:?}"
    );
    // Shares are roughly even on identical rails.
    let ratio = bytes[0] as f64 / bytes[1] as f64;
    assert!((0.6..1.7).contains(&ratio), "share ratio {ratio}");
    // Everything delivered intact.
    for c in [&c1, &c2] {
        let got = c.handle(1).take_delivered();
        assert_eq!(got.len(), 60);
        for m in &got {
            assert_eq!(m.contiguous(), pattern(m.flow.0, m.id.seq.0, 0, 24 << 10));
        }
    }
}

#[test]
fn heterogeneous_rails_split_by_speed() {
    let opt = EngineKind::Optimizing {
        config: eager_cfg(),
        policy: PolicyKind::Pooled,
    };
    let (_, bytes, c) = stream(
        opt,
        vec![Technology::MyrinetMx, Technology::QuadricsElan],
        80,
    );
    let (mx, elan) = (bytes[0], bytes[1]);
    assert!(mx > 0 && elan > 0);
    assert!(elan as f64 > 1.5 * mx as f64, "elan {elan} vs mx {mx}");
    assert_eq!(c.handle(1).delivered_count(), 80);
}

#[test]
fn one_to_one_policy_reproduces_legacy_mapping() {
    let opt = EngineKind::Optimizing {
        config: eager_cfg(),
        policy: PolicyKind::OneToOne,
    };
    let (_, bytes, c) = stream(opt, vec![Technology::MyrinetMx; 2], 40);
    // Single flow -> pinned to rail (flow 0 % 2 == 0).
    assert!(bytes[0] > 0);
    assert_eq!(bytes[1], 0, "one-to-one must not spill to the second rail");
    assert_eq!(c.handle(1).delivered_count(), 40);
}

#[test]
fn express_messages_stay_on_one_rail_until_resolved() {
    // Messages with express headers are pinned while the header is in
    // flight; the body may then split. Correctness: delivery intact and no
    // express violations on the receiver.
    let opt = EngineKind::Optimizing {
        config: eager_cfg(),
        policy: PolicyKind::Pooled,
    };
    let mut c = Cluster::build(
        &bulk_spec(opt, vec![Technology::MyrinetMx, Technology::MyrinetMx]),
        vec![],
    );
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::DEFAULT);
    c.sim.inject(src, |ctx| {
        for i in 0..30u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_express(&i.to_le_bytes())
                    .pack_cheaper(&pattern(f.0, i, 1, 8 << 10))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let got = c.handle(1).take_delivered();
    assert_eq!(got.len(), 30);
    for m in &got {
        assert_eq!(
            &m.fragments[1].1[..],
            &pattern(m.flow.0, m.id.seq.0, 1, 8 << 10)[..]
        );
    }
}

#[test]
fn runtime_policy_switch_takes_effect() {
    let opt = EngineKind::Optimizing {
        config: eager_cfg(),
        policy: PolicyKind::Pooled,
    };
    let mut c = Cluster::build(&bulk_spec(opt, vec![Technology::MyrinetMx; 2]), vec![]);
    let h = c.handle(0).clone();
    let NodeHandle::Opt(oh) = h.clone() else {
        unreachable!()
    };
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let f = h.open_flow(dst, TrafficClass::BULK);
    // Phase 1: pooled, both rails used.
    c.sim.inject(src, |ctx| {
        for i in 0..20u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 24 << 10))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let phase1: Vec<u64> = c.nics[0]
        .iter()
        .map(|&n| c.sim.nic(n).stats.tx_payload_bytes)
        .collect();
    assert!(phase1[1] > 0);
    // Switch to one-to-one at runtime (§2: select different policies).
    oh.switch_policy(PolicyKind::OneToOne);
    c.sim.inject(src, |ctx| {
        for i in 20..40u32 {
            h.send(
                ctx,
                f,
                MessageBuilder::new()
                    .pack_cheaper(&pattern(f.0, i, 0, 24 << 10))
                    .build_parts(),
            );
        }
    });
    c.drain();
    let phase2: Vec<u64> = c.nics[0]
        .iter()
        .map(|&n| c.sim.nic(n).stats.tx_payload_bytes)
        .collect();
    assert_eq!(
        phase2[1], phase1[1],
        "rail 1 idle after switching to one-to-one"
    );
    assert!(phase2[0] > phase1[0]);
    assert_eq!(c.handle(1).delivered_count(), 40);
}
