//! Property-based tests: the engine's core invariants under arbitrary
//! message structures and traffic shapes.
//!
//! * every submitted message is delivered exactly once, byte-exact, in
//!   per-flow order, whatever the optimizer does;
//! * express fragments are never observed out of order on a single rail;
//! * plan validation accepts exactly the plans the collect-layer state
//!   allows (checked via the optimizer's own selection loop: no driver
//!   rejections ever).

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::{MessageBuilder, PackMode};
use madware::pattern;
use proptest::prelude::*;
use simnet::Technology;

/// A randomly-shaped message: per-fragment (size, express?).
#[derive(Clone, Debug)]
struct MsgShape {
    frags: Vec<(usize, bool)>,
    flow_idx: usize,
}

fn msg_shape(max_flows: usize) -> impl Strategy<Value = MsgShape> {
    (
        prop::collection::vec((1usize..5000, any::<bool>()), 1..6),
        0..max_flows,
    )
        .prop_map(|(frags, flow_idx)| MsgShape { frags, flow_idx })
}

fn run_workload(shapes: &[MsgShape], engine: EngineKind, classes: &[TrafficClass]) {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine,
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![]);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let flows: Vec<_> = classes.iter().map(|&cl| h.open_flow(dst, cl)).collect();
    type Expected = Vec<(u32, u32, Vec<(usize, bool)>)>;
    let mut per_flow_seq = vec![0u32; flows.len()];
    let mut expected: Expected = Vec::new();
    c.sim.inject(src, |ctx| {
        for shape in shapes {
            let fl = flows[shape.flow_idx % flows.len()];
            let idx = shape.flow_idx % flows.len();
            let seq = per_flow_seq[idx];
            per_flow_seq[idx] += 1;
            let mut b = MessageBuilder::new();
            for (i, &(n, express)) in shape.frags.iter().enumerate() {
                let mode = if express {
                    PackMode::Express
                } else {
                    PackMode::Cheaper
                };
                b = b.pack(&pattern(fl.0, seq, i as u16, n), mode);
            }
            h.send(ctx, fl, b.build_parts());
            expected.push((fl.0, seq, shape.frags.clone()));
        }
    });
    c.drain();

    // No plan the optimizer produced was rejected by a driver.
    assert_eq!(c.handle(0).metrics().driver_rejections, 0);
    // Single rail: the express ordering invariant is strict.
    assert_eq!(c.handle(1).receiver_stats().express_violations, 0);

    let got = c.handle(1).take_delivered();
    assert_eq!(
        got.len(),
        expected.len(),
        "every message delivered exactly once"
    );
    // Byte-exact content, correct modes, per-flow order.
    use std::collections::HashMap;
    let mut next_seq: HashMap<u32, u32> = HashMap::new();
    for m in &got {
        let seq_counter = next_seq.entry(m.flow.0).or_insert(0);
        assert_eq!(m.id.seq.0, *seq_counter, "flow {} order", m.flow.0);
        *seq_counter += 1;
        let (_, _, frags) = expected
            .iter()
            .find(|(f, s, _)| *f == m.flow.0 && *s == m.id.seq.0)
            .expect("delivered message was submitted");
        assert_eq!(m.fragments.len(), frags.len());
        for (i, ((mode, data), &(n, express))) in m.fragments.iter().zip(frags.iter()).enumerate() {
            assert_eq!(data.len(), n);
            assert_eq!(*mode == PackMode::Express, express);
            assert_eq!(&data[..], &pattern(m.flow.0, m.id.seq.0, i as u16, n)[..]);
        }
    }
}

// ---------------------------------------------------------------------------
// validate_plan robustness and analyzer agreement
// ---------------------------------------------------------------------------

/// Arbitrary backlog snapshots, expressed as madcheck specs so the same
/// builder serves the analyzer and these properties.
fn backlog_spec() -> impl Strategy<Value = madcheck::BacklogSpec> {
    use madcheck::{BacklogSpec, FragSpec, MsgSpec, RndvPhase};
    let frag = (1u32..4096, any::<bool>()).prop_map(|(len, express)| FragSpec { len, express });
    let msg = (
        0u8..3,
        0u8..4,
        prop::collection::vec(frag, 1..5),
        0u32..64,
        0u8..3,
    )
        .prop_map(|(dst, class, frags, precommit, phase)| MsgSpec {
            dst,
            class,
            frags,
            precommit,
            rndv_phase: match phase {
                0 => RndvPhase::Pending,
                1 => RndvPhase::Requested,
                _ => RndvPhase::Granted,
            },
        });
    (prop::collection::vec(msg, 1..5), any::<bool>()).prop_map(|(msgs, small_thr)| BacklogSpec {
        msgs,
        rndv_threshold: if small_thr { 512 } else { 1 << 30 },
    })
}

/// Arbitrary well-typed plans: the fields have the right types and point
/// at plausible indices, but nothing else is guaranteed — offsets and
/// lengths range over all of `u32`.
fn arbitrary_plan() -> impl Strategy<Value = madeleine::plan::TransferPlan> {
    use madeleine::ids::{ChannelId, FlowId};
    use madeleine::plan::{PlanBody, PlannedChunk, TransferPlan};
    use simnet::NodeId;
    let chunk = (0u32..6, 0u32..3, 0u16..6, any::<u32>(), any::<u32>()).prop_map(
        |(flow, seq, frag, offset, len)| PlannedChunk {
            flow: FlowId(flow),
            seq,
            frag,
            offset,
            len,
        },
    );
    let body = (
        prop::collection::vec(chunk, 0..6),
        any::<bool>(),
        (0u32..6, 0u32..3, 0u16..6),
        any::<bool>(),
    )
        .prop_map(|(chunks, linearize, (rf, rs, rg), is_data)| {
            if is_data {
                PlanBody::Data { chunks, linearize }
            } else {
                PlanBody::RndvRequest {
                    flow: FlowId(rf),
                    seq: rs,
                    frag: rg,
                }
            }
        });
    (0u16..2, 1u32..4, body).prop_map(|(rail, dst, body)| TransferPlan {
        channel: ChannelId(rail),
        dst: NodeId(dst),
        body,
        strategy: "prop-test",
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `validate_plan` is total: any well-typed plan against any backlog
    /// yields a verdict, never a panic or overflow.
    #[test]
    fn validate_plan_never_panics(
        spec in backlog_spec(),
        plans in prop::collection::vec(arbitrary_plan(), 1..8),
    ) {
        let collect = spec.build();
        let caps = nicdrv::calib::synthetic_capabilities();
        for plan in &plans {
            let _ = madeleine::constraints::validate_plan(plan, &collect, &caps, 1 << 16);
        }
    }

    /// The analyzer's `check_plan` agrees with `validate_plan` on every
    /// backlog × plan pair: identical validation verdicts, with the
    /// capability pass only ever *adding* strictness on accepted plans.
    #[test]
    fn analyzer_agrees_with_validate_plan(
        spec in backlog_spec(),
        plans in prop::collection::vec(arbitrary_plan(), 1..8),
    ) {
        use madcheck::Defect;
        let collect = spec.build();
        let caps = nicdrv::calib::synthetic_capabilities();
        let (mtu, threshold) = (1u64 << 16, spec.rndv_threshold);
        for plan in &plans {
            let verdict = madeleine::constraints::validate_plan(plan, &collect, &caps, mtu);
            let defect = madcheck::check_plan(plan, &collect, &caps, mtu, threshold);
            match (verdict, defect) {
                (Err(v), Some(Defect::Validation(d))) => prop_assert_eq!(v, d),
                (Err(v), other) => {
                    panic!("validate_plan rejected with {v:?} but check_plan said {other:?}")
                }
                (Ok(()), Some(Defect::Validation(d))) => {
                    panic!("check_plan invented validation defect {d:?}")
                }
                // None, or a capability defect on a plan validation accepts:
                // the capability pass is allowed to be stricter.
                (Ok(()), _) => {}
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn optimizer_preserves_message_semantics(
        shapes in prop::collection::vec(msg_shape(3), 1..40)
    ) {
        run_workload(
            &shapes,
            EngineKind::optimizing(),
            &[TrafficClass::DEFAULT, TrafficClass::BULK, TrafficClass::CONTROL],
        );
    }

    #[test]
    fn legacy_engine_preserves_message_semantics(
        shapes in prop::collection::vec(msg_shape(2), 1..30)
    ) {
        run_workload(
            &shapes,
            EngineKind::legacy(),
            &[TrafficClass::DEFAULT, TrafficClass::CONTROL],
        );
    }

    #[test]
    fn tiny_window_and_budget_still_correct(
        shapes in prop::collection::vec(msg_shape(2), 1..25),
        window in 1usize..8,
        budget in 1usize..4,
    ) {
        use madeleine::{EngineConfig, PolicyKind};
        let config = EngineConfig::default().with_window(window).with_budget(budget);
        run_workload(
            &shapes,
            EngineKind::Optimizing { config, policy: PolicyKind::Pooled },
            &[TrafficClass::DEFAULT, TrafficClass::BULK],
        );
    }
}
