//! Integration: the headline optimization — cross-flow aggregation —
//! observed at the wire level and compared against the legacy engine.

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madware::pattern;
use simnet::{SimTime, Technology, TraceEvent};

fn burst_cluster(engine: EngineKind, flows: usize, msgs: u32, size: usize) -> (Cluster, u64) {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine,
        trace: Some(1 << 16),
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![]);
    let h = c.handle(0).clone();
    let (src, dst) = (c.nodes[0], c.nodes[1]);
    let fl: Vec<_> = (0..flows)
        .map(|_| h.open_flow(dst, TrafficClass::DEFAULT))
        .collect();
    c.sim.inject(src, |ctx| {
        for i in 0..msgs {
            for f in &fl {
                h.send(
                    ctx,
                    *f,
                    MessageBuilder::new()
                        .pack_cheaper(&pattern(f.0, i, 0, size))
                        .build_parts(),
                );
            }
        }
    });
    let end = c.drain();
    (c, end.as_nanos())
}

#[test]
fn packets_carry_chunks_from_multiple_flows() {
    let (c, _) = burst_cluster(EngineKind::optimizing(), 6, 20, 48);
    let m = c.handle(0).metrics();
    assert!(
        m.aggregation_ratio() > 3.0,
        "ratio {}",
        m.aggregation_ratio()
    );
    // Multi-chunk packets dominate the histogram.
    let multi: u64 = m.agg_histogram[2..].iter().sum();
    assert!(
        multi > m.agg_histogram[1],
        "histogram {:?}",
        m.agg_histogram
    );
    // All delivered intact and complete.
    assert_eq!(c.handle(1).delivered_count(), 120);
}

#[test]
fn legacy_never_crosses_flows() {
    let (c, _) = burst_cluster(EngineKind::legacy(), 6, 20, 48);
    let m = c.handle(0).metrics();
    assert!((m.aggregation_ratio() - 1.0).abs() < 1e-9);
    assert_eq!(m.packets_sent, 120);
}

#[test]
fn optimizer_beats_legacy_on_makespan_and_packets() {
    let (copt, t_opt) = burst_cluster(EngineKind::optimizing(), 8, 25, 32);
    let (cleg, t_leg) = burst_cluster(EngineKind::legacy(), 8, 25, 32);
    assert!(
        t_leg as f64 > 1.8 * t_opt as f64,
        "legacy {}ns vs optimizer {}ns",
        t_leg,
        t_opt
    );
    assert!(copt.handle(0).metrics().packets_sent * 3 < cleg.handle(0).metrics().packets_sent);
}

#[test]
fn wire_trace_shows_nic_idle_driven_sends() {
    let (c, _) = burst_cluster(EngineKind::optimizing(), 4, 25, 64);
    let trace = c.sim.trace();
    let submits = trace.count_matching(|e| matches!(e, TraceEvent::TxSubmitted { .. }));
    let idles = trace.count_matching(|e| matches!(e, TraceEvent::NicIdle { .. }));
    assert!(submits > 0 && idles > 0);
    // Far fewer wire submissions than the 100 application messages.
    assert!(submits < 60, "submits {submits}");
}

#[test]
fn aggregated_payloads_survive_byte_exact() {
    let (c, _) = burst_cluster(EngineKind::optimizing(), 5, 30, 97);
    let got = c.handle(1).take_delivered();
    assert_eq!(got.len(), 150);
    for msg in &got {
        assert_eq!(
            msg.contiguous(),
            pattern(msg.flow.0, msg.id.seq.0, 0, 97),
            "corrupt payload in {}",
            msg.id
        );
    }
    assert_eq!(c.handle(1).receiver_stats().express_violations, 0);
    let _ = SimTime::ZERO;
}
