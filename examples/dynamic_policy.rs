//! Dynamic policy switching (§2): "the scheduler may also choose to
//! dynamically change the assignment of networking resources to traffic
//! classes ... as the needs of the application evolve during the
//! execution."
//!
//! A two-phase application over four rails — put/get-heavy, then
//! default-class-heavy — run under (a) a static class→rail assignment
//! tuned for phase 1 and (b) the adaptive policy that re-assigns rails
//! from observed traffic every epoch.
//!
//! ```text
//! cargo run --release -p madeleine --example dynamic_policy
//! ```

use madeleine::harness::{Cluster, ClusterSpec, EngineKind, NodeHandle};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, PolicyKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

fn workload(phase2_at: SimDuration) -> Vec<FlowSpec> {
    let stream = |class, start| FlowSpec {
        dst: NodeId(1),
        class,
        arrival: Arrival::Periodic(SimDuration::from_micros(25)),
        sizes: SizeDist::Fixed(8 << 10),
        express_header: 0,
        stop_after: Some(100),
        start_after: start,
    };
    vec![
        stream(TrafficClass::PUT_GET, SimDuration::ZERO),
        stream(TrafficClass::PUT_GET, SimDuration::ZERO),
        stream(TrafficClass::PUT_GET, SimDuration::ZERO),
        stream(TrafficClass::DEFAULT, phase2_at),
        stream(TrafficClass::DEFAULT, phase2_at),
        stream(TrafficClass::DEFAULT, phase2_at),
    ]
}

fn run(adaptive: bool) -> (f64, u64) {
    let phase2_at = SimDuration::from_millis(4);
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        adaptive_epoch: SimDuration::from_micros(200),
        ..EngineConfig::default()
    };
    let policy = if adaptive {
        PolicyKind::Adaptive
    } else {
        PolicyKind::ClassPinned
    };
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx; 4],
        engine: EngineKind::Optimizing { config, policy },
        trace: None,
        engine_trace: None,
    };
    let (app, _) = TrafficApp::new("phased", workload(phase2_at), 5, 0);
    let (sink, rx) = TrafficApp::new("sink", vec![], 5, 1);
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    let NodeHandle::Opt(h) = cluster.handle(0).clone() else {
        unreachable!()
    };
    if !adaptive {
        // Hand-tuned for phase 1: put/get owns three rails.
        h.pin_class(TrafficClass::PUT_GET, &[0, 1, 2]);
        h.pin_class(TrafficClass::DEFAULT, &[3]);
    }
    let end = cluster.drain();
    assert!(rx.borrow().integrity.all_ok());
    (
        end.as_micros_f64() - phase2_at.as_micros_f64(),
        h.rebalances(),
    )
}

fn main() {
    let (static_phase2, _) = run(false);
    let (adaptive_phase2, rebalances) = run(true);
    println!("phase-2 completion, static assignment tuned for phase 1: {static_phase2:.0} us");
    println!("phase-2 completion, adaptive reassignment ({rebalances} rebalances): {adaptive_phase2:.0} us");
    println!(
        "adaptive recovers the stranded rails: {:.2}x faster phase 2",
        static_phase2 / adaptive_phase2
    );
}
