//! Multi-rail load balancing (§2): one bulk flow over a heterogeneous node
//! with a Myrinet rail *and* a Quadrics rail. The pooled optimizer lets
//! each idle NIC pull the next chunk, so bandwidth aggregates across
//! technologies with shares proportional to rail speed — no ratios are
//! configured anywhere. The legacy one-to-one mapping chains the flow to a
//! single NIC.
//!
//! ```text
//! cargo run --release -p madeleine --example multirail_loadbalance
//! ```

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madeleine::{EngineConfig, PolicyKind};
use madware::apps::{FlowSpec, TrafficApp};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

fn run(engine: EngineKind, label: &str) {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx, Technology::QuadricsElan],
        engine,
        trace: None,
        engine_trace: None,
    };
    let msgs = 400u64;
    let flow = FlowSpec {
        dst: NodeId(1),
        class: TrafficClass::BULK,
        arrival: Arrival::Periodic(SimDuration::from_micros(4)),
        sizes: SizeDist::Fixed(24 << 10),
        express_header: 0,
        stop_after: Some(msgs),
        start_after: SimDuration::ZERO,
    };
    let (app, _) = TrafficApp::new("bulk", vec![flow], 1, 0);
    let (sink, rx) = TrafficApp::new("sink", vec![], 1, 1);
    let mut cluster = Cluster::build(&spec, vec![Some(Box::new(app)), Some(Box::new(sink))]);
    let end = cluster.drain();
    let bytes = msgs * (24 << 10);
    let mbps = bytes as f64 / 1e6 / end.as_secs_f64();
    let mx = cluster.sim.nic(cluster.nics[0][0]).stats.tx_payload_bytes;
    let elan = cluster.sim.nic(cluster.nics[0][1]).stats.tx_payload_bytes;
    assert!(rx.borrow().integrity.all_ok(), "payload corruption");
    println!("--- {label}");
    println!("  {:.0} MB/s aggregate ({} in virtual time)", mbps, end);
    println!(
        "  bytes via Myrinet: {:>9}  ({:.0}%)",
        mx,
        100.0 * mx as f64 / bytes as f64
    );
    println!(
        "  bytes via Quadrics:{:>9}  ({:.0}%)",
        elan,
        100.0 * elan as f64 / bytes as f64
    );
}

fn main() {
    // Rendezvous off: a continuous eager chunk stream shows pure balancing.
    let config = EngineConfig {
        rndv_threshold: Some(u64::MAX),
        ..EngineConfig::default()
    };
    run(
        EngineKind::Optimizing {
            config: config.clone(),
            policy: PolicyKind::Pooled,
        },
        "optimizer, pooled rails (work-stealing balance)",
    );
    run(
        EngineKind::Legacy { config },
        "legacy, one-to-one flow->NIC mapping",
    );
    println!("\nThe pooled scheduler discovers the ~250:900 MB/s rail ratio by itself:");
    println!("each rail pulls the next chunk whenever it goes idle.");
}
