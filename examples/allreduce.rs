//! MPI-style collectives over the engine: iterated tree allreduce across a
//! growing cluster, on both engines.
//!
//! Collectives are waves of small, latency-coupled messages — several per
//! node per round, flowing up and down a binary tree. Every rank verifies
//! the reduced sums each iteration, so this doubles as an N-node
//! correctness demonstration.
//!
//! ```text
//! cargo run --release -p madeleine --example allreduce
//! ```

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madware::coll::allreduce_ranks;
use simnet::Technology;

fn run(size: u32, engine: EngineKind) -> (f64, u64) {
    let iterations = 20;
    let (apps, handles) = allreduce_ranks(size, 256, iterations);
    let spec = ClusterSpec {
        nodes: size as usize,
        rails: vec![Technology::MyrinetMx],
        engine,
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, apps);
    c.drain();
    let mut packets = 0;
    for (i, h) in handles.iter().enumerate() {
        let s = h.borrow();
        assert_eq!(s.iterations_done, iterations, "rank {i}");
        assert_eq!(s.wrong_results, 0, "rank {i} produced wrong sums");
        packets += c.handle(i).metrics().packets_sent;
    }
    let mean = handles[0].borrow().iteration_us.mean();
    (mean, packets)
}

fn main() {
    println!("iterated allreduce of 256 x u64 (20 iterations), binary tree, MX rail");
    println!(
        "{:>6} {:>22} {:>22}",
        "ranks", "optimizer mean(us)", "legacy mean(us)"
    );
    for size in [2u32, 4, 8, 16] {
        let (opt_us, _) = run(size, EngineKind::optimizing());
        let (leg_us, _) = run(size, EngineKind::legacy());
        println!("{size:>6} {opt_us:>22.1} {leg_us:>22.1}");
    }
    println!("\nevery rank verified every iteration's element-wise sums — all correct.");
}
