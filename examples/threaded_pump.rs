//! A real-thread progression pump.
//!
//! §4 calls the engine "portable, multithreaded": in the real NewMadeleine
//! a progression thread polls the NICs while application threads merely
//! enqueue. This example reproduces that split with OS threads: the
//! virtual cluster (and its optimizer) lives on a dedicated pump thread;
//! application threads hand it submissions through a lock-free channel and
//! read results from shared state — they never touch the network layer.
//!
//! ```text
//! cargo run --release -p madeleine --example threaded_pump
//! ```

use crossbeam::channel;
use madeleine::harness::{Cluster, ClusterSpec};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// A submission from an application thread.
struct Submission {
    flow_idx: usize,
    payload: Vec<u8>,
}

fn main() {
    let (tx, rx) = channel::unbounded::<Submission>();
    let delivered_log = Arc::new(Mutex::new(Vec::<(u32, usize)>::new()));
    let log_for_pump = delivered_log.clone();

    // The pump thread owns the whole simulated cluster (it is not Send-able
    // piecemeal — engines hold node-local state — so it is built here).
    let pump = thread::spawn(move || {
        let mut cluster = Cluster::build(&ClusterSpec::mx_pair(), vec![]);
        let dst = cluster.nodes[1];
        let src = cluster.nodes[0];
        let sender = cluster.handle(0).clone();
        let flows: Vec<_> = (0..4)
            .map(|_| sender.open_flow(dst, TrafficClass::DEFAULT))
            .collect();

        // Pump loop: drain the submission channel, advance the engine.
        let mut total = 0usize;
        while let Ok(sub) = rx.recv() {
            // Batch whatever else is already queued — exactly the backlog
            // accumulation the paper's scheduler exploits.
            let mut batch = vec![sub];
            while let Ok(next) = rx.try_recv() {
                batch.push(next);
            }
            total += batch.len();
            cluster.sim.inject(src, |ctx| {
                for s in &batch {
                    let parts = MessageBuilder::new()
                        .pack_express(&(s.flow_idx as u32).to_le_bytes())
                        .pack_cheaper(&s.payload)
                        .build_parts();
                    sender.send(ctx, flows[s.flow_idx], parts);
                }
            });
            cluster.drain();
            for msg in cluster.handle(1).take_delivered() {
                log_for_pump
                    .lock()
                    .push((msg.flow.0, msg.total_len() as usize));
            }
        }
        let m = sender.metrics();
        (total, m.packets_sent, m.aggregation_ratio())
    });

    // Four "application" threads enqueue concurrently and return to work.
    let apps: Vec<_> = (0..4)
        .map(|flow_idx| {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..25usize {
                    tx.send(Submission {
                        flow_idx,
                        payload: vec![(flow_idx * 37 + i) as u8; 64 + 16 * (i % 5)],
                    })
                    .expect("pump alive");
                }
            })
        })
        .collect();
    for a in apps {
        a.join().expect("app thread");
    }
    drop(tx); // closing the channel stops the pump

    let (submitted, packets, agg) = pump.join().expect("pump thread");
    let delivered = delivered_log.lock();
    println!("4 application threads submitted {submitted} messages");
    println!(
        "pump delivered {} messages in {packets} wire packets",
        delivered.len()
    );
    println!("aggregation ratio {agg:.2} (batches formed whenever apps outpaced the pump)");
    assert_eq!(delivered.len(), 100);
    println!("all messages accounted for — the pump owns all network state.");
}
