//! Quickstart: two nodes on a simulated Myrinet/MX rail, a handful of
//! messages through the optimizing engine, and a look at what the
//! scheduler did.
//!
//! ```text
//! cargo run --release -p madeleine --example quickstart
//! ```

use madeleine::harness::{Cluster, ClusterSpec};
use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;

fn main() {
    // A ready-made two-node MX cluster running the optimizing engine.
    let mut cluster = Cluster::build(&ClusterSpec::mx_pair(), vec![]);
    let (src, dst) = (cluster.nodes[0], cluster.nodes[1]);
    let sender = cluster.handle(0).clone();

    // Open three independent flows (imagine three middlewares) and submit
    // a burst of structured messages: an express header the receiver needs
    // first, then a payload the engine is free to reorder and merge.
    let flows: Vec<_> = (0..3)
        .map(|_| sender.open_flow(dst, TrafficClass::DEFAULT))
        .collect();
    cluster.sim.inject(src, |ctx| {
        for round in 0u8..10 {
            for (i, &flow) in flows.iter().enumerate() {
                let parts = MessageBuilder::new()
                    .pack_express(&[i as u8, round]) // header: who/what
                    .pack_cheaper(&[round; 200]) // the data
                    .build_parts();
                sender.send(ctx, flow, parts);
            }
        }
    });

    // Run the virtual cluster until all traffic drains.
    let end = cluster.drain();

    let tx = cluster.handle(0).metrics();
    let rx = cluster.handle(1).metrics();
    println!(
        "delivered {} messages in {} (virtual time)",
        rx.delivered_msgs, end
    );
    println!(
        "the optimizer sent {} wire packets for {} submitted messages",
        tx.packets_sent, tx.submitted_msgs
    );
    println!(
        "cross-flow aggregation: {:.1} chunks per packet on average",
        tx.aggregation_ratio()
    );
    println!(
        "optimizer activations: {} on NIC-idle, {} at submit time",
        tx.activations_idle, tx.activations_submit
    );

    // Messages arrive whole, in per-flow order, headers first.
    let delivered = cluster.handle(1).take_delivered();
    assert_eq!(delivered.len(), 30);
    for msg in &delivered {
        assert_eq!(msg.fragments.len(), 2);
        assert_eq!(msg.fragments[1].1.len(), 200);
    }
    println!("all 30 messages reassembled intact — done.");
}
