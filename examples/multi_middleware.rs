//! The paper's motivating scenario (§1): several middlewares — RPC, DSM
//! and a CORBA-like ORB — stacked on the same pair of nodes, each with its
//! own flows, all mixed by the engine. Runs the workload twice: once on
//! the optimizing engine and once on the legacy per-flow engine, and
//! compares what each middleware experienced.
//!
//! ```text
//! cargo run --release -p madeleine --example multi_middleware
//! ```

use madeleine::harness::EngineKind;
use madware::scenario::{multi_middleware, Load};
use simnet::Technology;

fn run(kind: EngineKind, load: Load, label: &str) {
    let (mut cluster, h) = multi_middleware(kind, Technology::MyrinetMx, 200, load, 2026);
    let end = cluster.drain();
    let tx = cluster.handle(0).metrics();

    println!("--- {label}");
    println!("  finished in {end} (virtual)");
    println!(
        "  sender packets: {} for {} messages ({:.1} chunks/packet)",
        tx.packets_sent,
        tx.submitted_msgs,
        tx.aggregation_ratio()
    );
    let rpc = h.rpc_client.borrow();
    println!(
        "  RPC   : {} calls, mean RTT {:.1}us (max {:.1}us)",
        rpc.rtt_us.count(),
        rpc.rtt_us.mean(),
        rpc.rtt_us.max()
    );
    let dsm = h.dsm_client.borrow();
    println!(
        "  DSM   : {} faults, mean page RTT {:.1}us",
        dsm.sent,
        dsm.rtt_us.mean()
    );
    let corba = h.servant.borrow();
    println!(
        "  CORBA : {} invocations delivered, payloads intact: {}",
        corba.received,
        corba.integrity.all_ok()
    );
    for (name, stats) in [
        ("rpc", &h.rpc_client),
        ("dsm", &h.dsm_client),
        ("corba", &h.servant),
    ] {
        assert!(
            stats.borrow().integrity.all_ok(),
            "{name} payload corruption: {:?}",
            stats.borrow().integrity.failures
        );
    }
}

fn main() {
    println!("### light load: NICs mostly idle, both engines send as available");
    run(EngineKind::optimizing(), Load::Light, "optimizing engine");
    run(EngineKind::legacy(), Load::Light, "legacy engine");
    println!("\n### heavy load: backlogs form while NICs are busy — the optimizer");
    println!("### mixes eager segments from RPC, DSM and CORBA into shared packets");
    run(EngineKind::optimizing(), Load::Heavy, "optimizing engine");
    run(EngineKind::legacy(), Load::Heavy, "legacy engine");
}
