//! Extending the strategy database (abstract: "The database of predefined
//! strategies can be easily extended").
//!
//! We register a custom `Strategy` that recognises a deadline-style user
//! traffic class and always proposes flushing it first, alone — an
//! application-specific policy the engine's scoring then weighs against
//! the built-in strategies.
//!
//! ```text
//! cargo run --release -p madeleine --example custom_strategy
//! ```

use madeleine::ids::TrafficClass;
use madeleine::message::MessageBuilder;
use madeleine::plan::{PlanBody, PlannedChunk, TransferPlan};
use madeleine::strategy::{OptContext, Strategy};
use madeleine::EngineBuilder;
use simnet::{NicId, NodeId, SimTime, Simulation, Technology};

/// A user-defined traffic class for deadline-critical telemetry.
const TELEMETRY: TrafficClass = TrafficClass(9);

/// Always propose sending the oldest telemetry chunk alone, immediately.
struct TelemetryFirst;

impl Strategy for TelemetryFirst {
    fn name(&self) -> &'static str {
        "telemetry-first"
    }

    fn propose(&self, ctx: &OptContext<'_>, out: &mut Vec<TransferPlan>) {
        for g in ctx.groups {
            let telemetry = g
                .candidates
                .iter()
                .filter(|c| c.class == TELEMETRY)
                .min_by_key(|c| (c.submitted_at, c.flow, c.seq));
            if let Some(c) = telemetry {
                out.push(TransferPlan {
                    channel: ctx.channel,
                    dst: g.dst,
                    body: PlanBody::Data {
                        chunks: vec![PlannedChunk {
                            flow: c.flow,
                            seq: c.seq,
                            frag: c.frag,
                            offset: c.offset,
                            len: c.remaining,
                        }],
                        linearize: false,
                    },
                    strategy: self.name(),
                });
            }
        }
    }
}

fn main() {
    // Build the cluster by hand this time, to show the full builder API.
    let mut sim = Simulation::new();
    let net = sim.add_network(nicdrv::calib::params(Technology::MyrinetMx));
    let a = sim.add_node();
    let b = sim.add_node();
    let na = sim.add_nic(a, net);
    let nb = sim.add_nic(b, net);

    let build = |node: NodeId, nic: NicId, peer: NodeId, peer_nic: NicId| {
        EngineBuilder::new(node)
            .rail_tech(Technology::MyrinetMx, nic)
            .peer(peer, vec![peer_nic])
            .strategy(Box::new(TelemetryFirst))
            .build()
            .expect("valid engine")
    };
    let (ea, ha) = build(a, na, b, nb);
    let (eb, _hb) = build(b, nb, a, na);
    println!("strategy database: {:?}", ha.strategy_names());
    sim.set_endpoint(a, Box::new(ea));
    sim.set_endpoint(b, Box::new(eb));

    // Mixed backlog: bulk traffic plus telemetry beacons.
    let bulk = ha.open_flow(b, TrafficClass::BULK);
    let beacon = ha.open_flow(b, TELEMETRY);
    sim.inject(a, |ctx| {
        for i in 0..20u8 {
            ha.send(
                ctx,
                bulk,
                MessageBuilder::new()
                    .pack_cheaper(&vec![i; 8 << 10])
                    .build_parts(),
            );
            ha.send(
                ctx,
                beacon,
                MessageBuilder::new().pack_cheaper(&[i; 16]).build_parts(),
            );
        }
    });
    sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));

    let m = ha.metrics();
    println!(
        "sent {} packets for {} messages; telemetry rides its own strategy",
        m.packets_sent, m.submitted_msgs
    );
    println!("done — custom strategies compete in the same scoring loop.");
}
