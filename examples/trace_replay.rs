//! Trace record & replay: the apples-to-apples methodology.
//!
//! Record the multi-middleware workload once (flows, timings, fragment
//! shapes), serialize it to text, then replay the *identical* submission
//! sequence on the optimizing engine and on the legacy engine, comparing
//! what each did with the same input.
//!
//! ```text
//! cargo run --release -p madeleine --example trace_replay
//! ```

use madeleine::harness::{Cluster, ClusterSpec, EngineKind};
use madeleine::ids::TrafficClass;
use madware::apps::{FlowSpec, TrafficApp};
use madware::trace::{Recorder, ReplayApp, Trace};
use madware::workload::{Arrival, SizeDist};
use simnet::{NodeId, SimDuration, Technology};

fn record() -> Trace {
    // A bursty mixed workload to record.
    let specs: Vec<FlowSpec> = (0..5)
        .map(|i| FlowSpec {
            dst: NodeId(1),
            class: if i == 0 {
                TrafficClass::CONTROL
            } else {
                TrafficClass::DEFAULT
            },
            arrival: Arrival::Burst {
                count: 4,
                period: SimDuration::from_micros(25),
            },
            sizes: SizeDist::Uniform(16, 800),
            express_header: 8,
            stop_after: Some(60),
            start_after: SimDuration::ZERO,
        })
        .collect();
    let (app, _) = TrafficApp::new("recorded", specs, 1234, 0);
    let (recorder, trace) = Recorder::new(Box::new(app));
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine: EngineKind::optimizing(),
        trace: None,
        engine_trace: None,
    };
    let mut c = Cluster::build(&spec, vec![Some(Box::new(recorder)), None]);
    c.drain();
    let t = trace.borrow().clone();
    t
}

fn replay(trace: Trace, engine: EngineKind, label: &str) {
    let spec = ClusterSpec {
        nodes: 2,
        rails: vec![Technology::MyrinetMx],
        engine,
        trace: None,
        engine_trace: None,
    };
    let n = trace.len() as u64;
    let mut c = Cluster::build(&spec, vec![Some(Box::new(ReplayApp::new(trace))), None]);
    let end = c.drain();
    let tx = c.handle(0).metrics();
    assert_eq!(c.handle(1).delivered_count(), n);
    println!(
        "  {label:<20} finished {end}, {} packets, {:.1} chunks/pkt, mean lat {:.1}us",
        tx.packets_sent,
        tx.aggregation_ratio(),
        c.handle(1).metrics().latency.summary().mean(),
    );
}

fn main() {
    let trace = record();
    let text = trace.to_text();
    println!(
        "recorded {} messages / {} bytes across {} flows ({} bytes of trace text)",
        trace.len(),
        trace.total_bytes(),
        trace.flows.len(),
        text.len()
    );
    // Round-trip through the text format, as a tool would.
    let parsed = Trace::from_text(&text).expect("own output parses");
    assert_eq!(parsed, trace);

    println!("replaying the identical submission sequence on both engines:");
    replay(
        parsed.clone(),
        EngineKind::optimizing(),
        "optimizing engine",
    );
    replay(parsed, EngineKind::legacy(), "legacy engine");
    println!("same input, different schedulers — the only fair comparison.");
}
