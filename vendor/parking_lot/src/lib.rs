//! Offline shim of the `parking_lot` lock API over `std::sync` primitives.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal stand-in (see the workspace `Cargo.toml`): `parking_lot`'s
//! non-poisoning `lock()`/`read()`/`write()` signatures implemented on the
//! standard library locks (poison is unwrapped into the inner guard, which
//! matches `parking_lot`'s behaviour of never poisoning).

use std::sync::{self, PoisonError};

/// Mutual-exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
