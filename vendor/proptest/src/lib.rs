//! Offline shim of the part of the `proptest` crate this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, API-compatible property-testing harness (see the workspace
//! `Cargo.toml`). Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via `prop_assert!`/`assert!`), but is not
//!   minimized.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (FNV-1a of the test's module path and name) rather than OS entropy,
//!   so runs are bit-reproducible — which this repository's determinism
//!   policy prefers anyway.
//! * Only the strategy combinators used by the workspace exist: integer
//!   ranges, tuples, [`any`], [`collection::vec`], [`sample::select`] and
//!   [`sample::Index`], plus [`Strategy::prop_map`].

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Stable seed for a test, derived from its fully-qualified name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner configuration (subset of the real struct).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` of `element`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies: picking from fixed sets and index selection.

    use super::{Arbitrary, Strategy, TestRng};

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly pick one of `options` (cloned).
    pub fn select<T: Clone>(options: &[T]) -> Select<T> {
        assert!(!options.is_empty(), "select from empty slice");
        Select {
            options: options.to_vec(),
        }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// An index into a collection whose size is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! The `prop::` module alias exposed by the real prelude.
        pub use crate::{collection, sample};
    }
}

/// Assert a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let s = prop::collection::vec((1usize..10, any::<bool>()), 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&(n, _)| (1..10).contains(&n)));
        }
    }

    #[test]
    fn select_and_index_work() {
        let mut rng = crate::TestRng::from_seed(2);
        let s = prop::sample::select(&[10, 20, 30][..]);
        for _ in 0..50 {
            assert!([10, 20, 30].contains(&s.sample(&mut rng)));
            let ix = prop::sample::Index::arbitrary(&mut rng);
            assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = crate::TestRng::from_seed(3);
        let s = (1u32..5).prop_map(|n| n * 2);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_declares_running_tests(
            xs in prop::collection::vec(0u8..255, 1..8),
            flip in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(flip, flip);
        }
    }
}
