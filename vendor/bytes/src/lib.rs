//! Offline shim of the tiny part of the `bytes` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible stand-ins for its external
//! dependencies (see the workspace `Cargo.toml`). [`Bytes`] is a
//! cheaply-cloneable, sliceable, reference-counted byte buffer;
//! [`BytesMut`] is an append-only builder that freezes into one.
//!
//! Only the methods the workspace actually calls are provided. Semantics
//! match the real crate for those methods (shared storage, O(1) clone and
//! slice).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer borrowing a static slice (copied here; the real crate keeps
    /// the reference, which only matters for allocation volume).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::copy_from_slice(b)
    }

    /// Buffer owning a copy of `b`.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(b);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-slice sharing the same storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Shorten to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from_static(b)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// Append-only byte builder that freezes into a [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Append-side buffer operations (the subset of the real `BufMut` trait
/// this workspace uses; all writes are little-endian where applicable).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, b: &[u8]);

    /// Append anything byte-slice-viewable (e.g. another buffer).
    fn put(&mut self, b: impl AsRef<[u8]>) {
        self.put_slice(b.as_ref());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_bounds_check() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2), Bytes::copy_from_slice(&[2, 3]));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn truncate_shortens() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        b.truncate(2);
        assert_eq!(&b[..], &[1, 2]);
        b.truncate(10);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn builder_roundtrip_little_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16_le(0x1234);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(1);
        let other = BytesMut::with_capacity(1);
        m.put(other);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b[0], 7);
        assert_eq!(u16::from_le_bytes([b[1], b[2]]), 0x1234);
        assert_eq!(&b[b.len() - 2..], b"xy");
    }
}
