//! Offline shim of the part of the `criterion` crate this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, API-compatible harness (see the workspace `Cargo.toml`). It
//! measures with a fixed-iteration warm-up plus a timed run and prints one
//! mean-per-iteration line per benchmark — enough to compare hot paths
//! locally, with none of the real crate's statistics, plotting, or
//! adaptive sampling.

use std::time::Instant;

/// Re-export matching `criterion::black_box` (the workspace's benches use
/// `std::hint::black_box` directly, but the name is part of the API).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 100;
const MEASURE_ITERS: u64 = 2_000;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Throughput annotation for a group (reported alongside the timing).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name and throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark of the group against `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        let label = format!("{}/{}", self.name, id.label);
        match self.throughput {
            Some(Throughput::Bytes(n)) => b.report_with_rate(&label, n, "B"),
            Some(Throughput::Elements(n)) => b.report_with_rate(&label, n, "elem"),
            None => b.report(&label),
        }
        self
    }

    /// Close the group (separator line in the output).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Timing executor handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }

    /// Time `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        // Setup cost is included here (unlike real criterion); the shim
        // uses far fewer iterations, so keep the loop simple and honest
        // about it in the label below.
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut total_ns = 0u128;
        for _ in 0..MEASURE_ITERS {
            let s = setup();
            let start = Instant::now();
            black_box(routine(s));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / MEASURE_ITERS as f64;
    }

    fn report(&self, label: &str) {
        eprintln!("{label:<50} {:>12.1} ns/iter", self.mean_ns);
    }

    fn report_with_rate(&self, label: &str, per_iter: u64, unit: &str) {
        let rate = per_iter as f64 / (self.mean_ns / 1e9);
        eprintln!(
            "{label:<50} {:>12.1} ns/iter {:>12.1} M{unit}/s",
            self.mean_ns,
            rate / 1e6
        );
    }
}

/// Declare a benchmark group function (same shape as the real macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        quick(&mut c);
    }
}
