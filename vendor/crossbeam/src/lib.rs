//! Offline shim of the `crossbeam::channel` API over `std::sync::mpsc`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal stand-in (see the workspace `Cargo.toml`). Only the unbounded
//! MPSC channel the examples use is provided; error types mirror the real
//! crate's names so call sites are source-compatible.

pub mod channel {
    //! Multi-producer channels (unbounded only).

    use std::sync::mpsc;

    /// Sending half of an unbounded channel; cloneable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// The receiver disconnected before the message could be delivered.
    pub type SendError<T> = mpsc::SendError<T>;
    /// All senders disconnected and the channel is empty.
    pub type RecvError = mpsc::RecvError;
    /// Non-blocking receive found the channel empty or disconnected.
    pub type TryRecvError = mpsc::TryRecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn channel_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
            drop((tx, tx2));
            assert!(rx.recv().is_err());
        }
    }
}
