//! Offline shim of the small part of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so deterministic
//! stand-ins are vendored (see the workspace `Cargo.toml`). [`rngs::StdRng`]
//! is a splitmix64/xoshiro-style generator: high-quality enough for the
//! workload models here, seeded explicitly everywhere (the workspace bans
//! `thread_rng` for determinism — enforced by `cargo xtask analyze`).

pub mod rngs {
    //! Concrete generator types.

    /// Deterministic 64-bit PRNG (splitmix64 core), the only generator the
    /// workspace uses.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types a generator can produce uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut StdRng) -> Self {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64_impl() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64_impl() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn draw(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn draw(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64_impl() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn draw(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range.
                    return Standard::draw(rng);
                }
                lo + (rng.next_u64_impl() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn draw(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Drawing methods (subset of the real `Rng` trait).
pub trait Rng {
    /// Uniform value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T;

    /// Uniform value inside `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.draw(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..=20);
            assert!((10..=20).contains(&x));
            let y = r.gen_range(3u32..9);
            assert!((3..9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
